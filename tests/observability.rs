//! End-to-end observability determinism: the event log and metric
//! expositions written by `run_experiments` must be byte-identical at any
//! `--jobs` count, parse back through the public `crowd-obs` read API, and
//! reconcile with the manifest's comparison tallies.

use crowd_obs::{Event, EventLog};
use std::path::Path;

fn read(dir: &Path, name: &str) -> String {
    std::fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn observability_outputs_are_byte_identical_and_reconcile() {
    use crowd_experiments::{engine, run_experiments, Scale};

    // fig3 exercises the nested trial fan-out through `ObservedOracle`;
    // fault_sweep exercises the platform's fault/retry event emitters.
    let names = vec!["fig3".to_string(), "fault_sweep".to_string()];
    let scale = Scale::quick();
    let base = std::env::temp_dir().join(format!("crowd_obs_det_{}", std::process::id()));
    let serial_dir = base.join("jobs1");
    let parallel_dir = base.join("jobs4");

    engine::set_jobs(1);
    run_experiments(&names, &scale, &serial_dir).expect("serial run succeeds");
    engine::set_jobs(4);
    run_experiments(&names, &scale, &parallel_dir).expect("parallel run succeeds");
    engine::set_jobs(0);

    for file in ["events.jsonl", "metrics.prom", "metrics.json"] {
        assert_eq!(
            read(&serial_dir, file),
            read(&parallel_dir, file),
            "{file} differs between --jobs 1 and --jobs 4"
        );
    }

    // The log parses back through the public read API, in seq order, and
    // brackets the experiments in selection order.
    let log = EventLog::from_jsonl(&read(&serial_dir, "events.jsonl")).expect("log parses");
    assert!(log
        .records
        .iter()
        .enumerate()
        .all(|(i, r)| r.seq == i as u64));
    let started: Vec<&str> = log
        .events()
        .filter_map(|e| match e {
            Event::RunStarted { name } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(started, ["fig3", "fault_sweep"]);

    // fig3's trials run through `ObservedOracle`, so per-round survivor
    // counts must be present and shrinking within each filter phase.
    let rounds: Vec<(u32, u64)> = log
        .events()
        .filter_map(|e| match e {
            Event::RoundCompleted {
                round, survivors, ..
            } => Some((*round, *survivors)),
            _ => None,
        })
        .collect();
    assert!(!rounds.is_empty(), "RoundCompleted events expected");

    // Each RunFinished must reconcile exactly with the manifest's tally for
    // the same experiment — two independently serialized views of one
    // `TallySink`.
    let manifest = serde_json::from_str_value(&read(&serial_dir, "manifest.json")).unwrap();
    let experiments: Vec<serde::Value> = serde::field(&manifest, "experiments").unwrap();
    for entry in &experiments {
        let name: String = serde::field(entry, "name").unwrap();
        let comparisons: serde::Value = serde::field(entry, "comparisons").unwrap();
        let naive: u64 = serde::field(&comparisons, "naive").unwrap();
        let expert: u64 = serde::field(&comparisons, "expert").unwrap();
        let finished = log
            .events()
            .find_map(|e| match e {
                Event::RunFinished {
                    name: n,
                    comparisons_by_class,
                    ..
                } if *n == name => Some(*comparisons_by_class),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no RunFinished for {name}"));
        assert_eq!((finished.naive, finished.expert), (naive, expert), "{name}");
    }

    // The exposition carries the same totals: crowd_comparisons_total
    // summed over classes and experiments equals the manifest's grand total.
    let metrics = read(&serial_dir, "metrics.prom");
    assert!(metrics.contains("# TYPE crowd_comparisons_total counter"));
    let counter_sum: u64 = metrics
        .lines()
        .filter(|l| l.starts_with("crowd_comparisons_total{"))
        .map(|l| {
            l.rsplit(' ')
                .next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("unparsable sample line: {l}"))
        })
        .sum();
    let manifest_sum: u64 = experiments
        .iter()
        .map(|e| {
            let c: serde::Value = serde::field(e, "comparisons").unwrap();
            let naive: u64 = serde::field(&c, "naive").unwrap();
            let expert: u64 = serde::field(&c, "expert").unwrap();
            naive + expert
        })
        .sum();
    assert_eq!(counter_sum, manifest_sum);
    // fault_sweep must have fed the fault counter through the same pipe.
    assert!(metrics.contains("crowd_faults_total{"), "{metrics}");

    std::fs::remove_dir_all(&base).unwrap();
}
