//! Cross-crate integration tests: full pipelines spanning `crowd-core`,
//! `crowd-platform`, `crowd-datasets` and `crowd-experiments`.

use crowd_core::algorithms::{expert_max_find, two_max_find_expert, ExpertMaxConfig};
use crowd_core::cost::CostModel;
use crowd_core::element::Instance;
use crowd_core::estimation::{estimate_un, EstimationConfig, TrainingSet};
use crowd_core::model::{ExpertModel, TiePolicy, WorkerClass};
use crowd_core::oracle::{ComparisonOracle, SimulatedOracle};
use crowd_datasets::synthetic::planted_instance;
use crowd_platform::{Behavior, Platform, PlatformConfig, PlatformOracle, WorkerPool};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The whole paper workflow in one test: estimate `un(n)` from gold data,
/// run the two-phase algorithm with the estimate, verify the accuracy
/// guarantee, and verify the cost advantage over the expert-only baseline
/// at the paper's price ratios.
#[test]
fn full_paper_workflow() {
    let mut rng = StdRng::seed_from_u64(2015);

    // Ground truth: a planted instance with un = 30, ue = 6.
    let planted = planted_instance(1500, 30, 6, &mut rng);
    let instance = &planted.instance;
    let model = ExpertModel::exact(planted.delta_n, planted.delta_e, TiePolicy::UniformRandom);

    // Gold data: a smaller instance with the same statistics.
    let training_planted = planted_instance(150, 3, 1, &mut rng);
    let training = TrainingSet::new(training_planted.instance.clone());
    let mut training_oracle = SimulatedOracle::new(
        training_planted.instance.clone(),
        ExpertModel::exact(
            training_planted.delta_n,
            training_planted.delta_e,
            TiePolicy::UniformRandom,
        ),
        StdRng::seed_from_u64(1),
    );
    let est = estimate_un(
        &mut training_oracle,
        &training,
        &EstimationConfig::new(0.5, 1.0),
        instance.n(),
    );
    assert!(est.un >= 1);

    // Run Algorithm 1 with the (over-)estimate: correctness is unaffected
    // by overestimation (Section 4.4) — only the bill grows.
    let un_used = est.un.max(planted.un);
    let mut oracle =
        SimulatedOracle::new(instance.clone(), model.clone(), StdRng::seed_from_u64(2));
    let est_out = expert_max_find(
        &mut oracle,
        &instance.ids(),
        &ExpertMaxConfig::new(un_used),
        &mut rng,
    );
    let gap = instance.max_value() - instance.value(est_out.winner);
    assert!(
        gap <= 2.0 * planted.delta_e,
        "gap {gap} > 2δe under the un estimate"
    );

    // Cost comparison at the true un(n), against the expert-only baseline.
    let mut exact_oracle = SimulatedOracle::new(instance.clone(), model, StdRng::seed_from_u64(2));
    let exact_out = expert_max_find(
        &mut exact_oracle,
        &instance.ids(),
        &ExpertMaxConfig::new(planted.un),
        &mut rng,
    );
    let model2 = ExpertModel::exact(planted.delta_n, planted.delta_e, TiePolicy::UniformRandom);
    let mut baseline_oracle =
        SimulatedOracle::new(instance.clone(), model2, StdRng::seed_from_u64(3));
    let baseline = two_max_find_expert(&mut baseline_oracle, &instance.ids());

    // At the paper's top price ratio the two-phase algorithm must win; the
    // overestimated run must cost at least as much as the exact one.
    let prices = CostModel::with_ratio(50.0);
    let alg1_cost = prices.cost(exact_out.total_comparisons);
    let baseline_cost = prices.cost(baseline.comparisons);
    assert!(
        alg1_cost < baseline_cost,
        "at ce/cn = 50 Alg 1 ({alg1_cost}) should beat expert-only ({baseline_cost})"
    );
    assert!(
        prices.cost(est_out.total_comparisons) >= alg1_cost,
        "overestimating un must not make the run cheaper"
    );
}

/// The two-phase algorithm on the full platform stack agrees with the
/// guarantee and the ledger agrees with the oracle tally and the price
/// sheet, end to end.
#[test]
fn platform_pipeline_is_consistent() {
    let instance = Instance::new((0..120).map(|i| (i as f64) * 7.0).collect());
    let mut pool = WorkerPool::new();
    pool.hire_many(
        12,
        WorkerClass::Naive,
        "crowd",
        Behavior::Threshold {
            delta: 30.0,
            epsilon: 0.0,
            tie: TiePolicy::UniformRandom,
        },
    );
    pool.hire_many(
        3,
        WorkerClass::Expert,
        "panel",
        Behavior::Threshold {
            delta: 3.0,
            epsilon: 0.0,
            tie: TiePolicy::UniformRandom,
        },
    );
    let prices = CostModel::new(1.0, 30.0);
    let config = PlatformConfig::paper_default()
        .without_gold()
        .with_payment(prices);
    let platform = Platform::new(instance.clone(), pool, config, StdRng::seed_from_u64(4));
    let mut oracle = PlatformOracle::new(platform);

    let un = instance.indistinguishable_from_max(30.0);
    let mut rng = StdRng::seed_from_u64(5);
    let out = expert_max_find(
        &mut oracle,
        &instance.ids(),
        &ExpertMaxConfig::new(un),
        &mut rng,
    );

    let gap = instance.max_value() - instance.value(out.winner);
    assert!(gap <= 2.0 * 3.0, "gap {gap} > 2δe on the platform");

    let counts = oracle.counts();
    let platform = oracle.into_platform();
    assert_eq!(platform.ledger().judgments(), counts.total());
    let expected = counts.naive as f64 + 30.0 * counts.expert as f64;
    assert!((platform.ledger().total() - expected).abs() < 1e-6);
    assert_eq!(
        platform.logical_steps(),
        counts.total(),
        "1 judgment/unit => 1 job per comparison"
    );
}

/// Decorator stack: memoization on top of the platform oracle still
/// produces valid answers and only reduces spending.
#[test]
fn memoized_platform_costs_less() {
    use crowd_core::oracle::MemoOracle;
    let instance = Instance::new((0..80).map(|i| (i as f64) * 5.0).collect());
    let build = |seed: u64| {
        let mut pool = WorkerPool::new();
        pool.hire_naive_crowd(8, 10.0, 0.0);
        pool.hire_expert_panel(2, 1.0, 0.0);
        let platform = Platform::new(
            instance.clone(),
            pool,
            PlatformConfig::paper_default().without_gold(),
            StdRng::seed_from_u64(seed),
        );
        PlatformOracle::new(platform)
    };
    let un = instance.indistinguishable_from_max(10.0);
    let mut rng = StdRng::seed_from_u64(6);

    let mut plain = build(7);
    let plain_out = expert_max_find(
        &mut plain,
        &instance.ids(),
        &ExpertMaxConfig::new(un),
        &mut rng,
    );
    let plain_cost = plain.platform().ledger().total();

    let mut memo = MemoOracle::new(build(7));
    let memo_out = expert_max_find(
        &mut memo,
        &instance.ids(),
        &ExpertMaxConfig::new(un),
        &mut rng,
    );
    let memo_cost = memo.into_inner().into_platform().ledger().total();

    assert!(
        memo_cost <= plain_cost,
        "memoization increased cost: {memo_cost} > {plain_cost}"
    );
    // Both runs still find a near-max element.
    for out in [&plain_out, &memo_out] {
        assert!(instance.max_value() - instance.value(out.winner) <= 2.0);
    }
}

/// The experiment runner produces files for a mixed selection of
/// experiments, exercising every crate from one entry point.
#[test]
fn runner_end_to_end() {
    use crowd_experiments::{run_experiments, Scale};
    let dir = std::env::temp_dir().join(format!("crowd_e2e_{}", std::process::id()));
    let names = vec!["table1".to_string(), "search_eval".to_string()];
    let tables = run_experiments(&names, &Scale::quick(), &dir).unwrap();
    assert_eq!(tables.len(), 2);
    for t in &tables {
        assert!(dir.join(format!("{}.md", t.id)).exists());
        assert!(dir.join(format!("{}.csv", t.id)).exists());
        assert!(!t.rows.is_empty());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
