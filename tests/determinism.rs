//! Parallel determinism: the experiment engine must produce byte-identical
//! tables, CSVs and summaries at any `--jobs` count. Only the manifest's
//! wall-clock fields may differ between runs.

use crowd_experiments::{engine, run_experiments, Scale};
use std::collections::BTreeMap;
use std::path::Path;

/// Reads every deterministic output file (markdown + CSV) under `dir`.
fn deterministic_outputs(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("output dir exists") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if name.ends_with(".csv") || name.ends_with(".md") {
            files.insert(name, std::fs::read(&path).expect("readable output"));
        }
    }
    files
}

#[test]
fn serial_and_parallel_runs_are_byte_identical() {
    // fig3 exercises the nested fan-out (experiments over threads, trials
    // over threads inside each); table1 adds a platform-driven experiment.
    let names = vec!["fig3".to_string(), "table1".to_string()];
    let scale = Scale::quick();
    let base = std::env::temp_dir().join(format!("crowd_determinism_{}", std::process::id()));
    let serial_dir = base.join("jobs1");
    let parallel_dir = base.join("jobs4");

    engine::set_jobs(1);
    run_experiments(&names, &scale, &serial_dir).expect("serial run succeeds");
    engine::set_jobs(4);
    run_experiments(&names, &scale, &parallel_dir).expect("parallel run succeeds");
    engine::set_jobs(0);

    let serial = deterministic_outputs(&serial_dir);
    let parallel = deterministic_outputs(&parallel_dir);
    assert!(
        serial.keys().any(|k| k.ends_with(".csv")),
        "the run must produce CSV files"
    );
    assert_eq!(
        serial.keys().collect::<Vec<_>>(),
        parallel.keys().collect::<Vec<_>>(),
        "both runs must produce the same set of files"
    );
    for (name, bytes) in &serial {
        assert_eq!(
            Some(bytes),
            parallel.get(name),
            "{name} differs between --jobs 1 and --jobs 4"
        );
    }

    // The manifest exists in both runs and records the job count; its
    // deterministic fields (comparisons) must also agree.
    for (dir, jobs) in [(&serial_dir, 1u64), (&parallel_dir, 4u64)] {
        let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        let parsed = serde_json::from_str_value(&manifest).unwrap();
        let recorded: u64 = serde::field(&parsed, "jobs").unwrap();
        assert_eq!(recorded, jobs);
    }
    let comparisons = |dir: &Path| -> Vec<(String, u64, u64)> {
        let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        let parsed = serde_json::from_str_value(&manifest).unwrap();
        let experiments: Vec<serde::Value> = serde::field(&parsed, "experiments").unwrap();
        experiments
            .iter()
            .map(|e| {
                let c: serde::Value = serde::field(e, "comparisons").unwrap();
                (
                    serde::field(e, "name").unwrap(),
                    serde::field(&c, "naive").unwrap(),
                    serde::field(&c, "expert").unwrap(),
                )
            })
            .collect()
    };
    assert_eq!(comparisons(&serial_dir), comparisons(&parallel_dir));

    std::fs::remove_dir_all(&base).unwrap();
}

/// Reads the per-experiment fault tallies out of a run's `manifest.json`.
fn manifest_faults(dir: &Path) -> Vec<(String, String)> {
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
    let parsed = serde_json::from_str_value(&manifest).unwrap();
    let experiments: Vec<serde::Value> = serde::field(&parsed, "experiments").unwrap();
    experiments
        .iter()
        .map(|e| {
            let faults: serde::Value = serde::field(e, "faults").unwrap();
            (
                serde::field(e, "name").unwrap(),
                serde_json::to_string(&faults).unwrap(),
            )
        })
        .collect()
}

#[test]
fn fault_sweep_replays_byte_identically_at_any_job_count() {
    // The fault path adds new nondeterminism hazards: fault fates, retry
    // ordering, dead-letter bookkeeping. A fixed FaultPlan seed must make
    // all of it replayable — identical CSVs *and* identical fault tallies
    // in the manifest, retries included, at --jobs 1 and --jobs 4.
    let names = vec!["fault_sweep".to_string()];
    let scale = Scale::quick();
    let base = std::env::temp_dir().join(format!("crowd_fault_det_{}", std::process::id()));
    let serial_dir = base.join("jobs1");
    let parallel_dir = base.join("jobs4");

    engine::set_jobs(1);
    run_experiments(&names, &scale, &serial_dir).expect("serial fault sweep succeeds");
    engine::set_jobs(4);
    run_experiments(&names, &scale, &parallel_dir).expect("parallel fault sweep succeeds");
    engine::set_jobs(0);

    let serial = deterministic_outputs(&serial_dir);
    let parallel = deterministic_outputs(&parallel_dir);
    assert!(
        serial.contains_key("fault_sweep.csv"),
        "the sweep must write its CSV: {:?}",
        serial.keys().collect::<Vec<_>>()
    );
    for (name, bytes) in &serial {
        assert_eq!(
            Some(bytes),
            parallel.get(name),
            "{name} differs between --jobs 1 and --jobs 4"
        );
    }

    let serial_faults = manifest_faults(&serial_dir);
    assert_eq!(
        serial_faults,
        manifest_faults(&parallel_dir),
        "fault tallies must replay identically at any job count"
    );
    // The sweep's nonzero rates must actually exercise the fault machinery.
    let manifest = std::fs::read_to_string(serial_dir.join("manifest.json")).unwrap();
    let parsed = serde_json::from_str_value(&manifest).unwrap();
    let experiments: Vec<serde::Value> = serde::field(&parsed, "experiments").unwrap();
    let faults: serde::Value = serde::field(&experiments[0], "faults").unwrap();
    let naive: serde::Value = serde::field(&faults, "naive").unwrap();
    let retries: u64 = serde::field(&naive, "retries").unwrap();
    assert!(retries > 0, "the sweep should record naive retries");

    std::fs::remove_dir_all(&base).unwrap();
}
