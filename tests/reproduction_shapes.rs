//! Shape tests: the qualitative claims of the paper's evaluation section,
//! asserted against the reproduction harness at quick scale. These are the
//! "who wins, by roughly what factor, where crossovers fall" checks that a
//! successful reproduction must satisfy.

use crowd_experiments::harness::{average_rank, Approach};
use crowd_experiments::{fig2, fig5, phase1_survival, Scale};

fn scale() -> Scale {
    Scale::quick()
}

/// Figure 2's headline: DOTS converges with more workers, CARS plateaus.
#[test]
fn fig2_shape_dots_converges_cars_plateaus() {
    let dots = fig2::run_dots(&scale());
    let cars = fig2::run_cars(&scale());

    // DOTS hardest bucket: accuracy at 21 workers clearly above accuracy
    // at 1 worker.
    let d_first: f64 = dots.rows[0][1].parse().unwrap();
    let d_last: f64 = dots.rows.last().unwrap()[1].parse().unwrap();
    assert!(
        d_last >= d_first + 0.1,
        "DOTS hardest bucket should improve with voting: {d_first} -> {d_last}"
    );

    // CARS hardest bucket: no such improvement (the plateau).
    let c_first: f64 = cars.rows[0][1].parse().unwrap();
    let c_last: f64 = cars.rows.last().unwrap()[1].parse().unwrap();
    assert!(
        c_last <= c_first + 0.2 && c_last < 0.9,
        "CARS hardest bucket should plateau: {c_first} -> {c_last}"
    );
    // With the calibrated prior the plateau sits near 0.52-0.6; at quick
    // scale (8 pairs per bucket) the sampling noise is ±0.2, so only bound
    // it away from both coin-flipping and convergence.
    assert!(
        (0.25..0.9).contains(&c_last),
        "the CARS plateau is implausible: {c_last}"
    );
}

/// Figure 3's headline ordering: expert <= Alg 1 < naive in returned rank,
/// with naive degrading as un grows.
#[test]
fn fig3_shape_accuracy_ordering() {
    let s = scale();
    let n = *s.n_grid.last().unwrap();
    let (expert_small, _) =
        average_rank(Approach::TwoMaxFindExpert, n, 10, 5, 1.0, s.trials, s.seed);
    let (alg1_small, _) = average_rank(Approach::Alg1, n, 10, 5, 1.0, s.trials, s.seed);
    let (naive_small, _) = average_rank(Approach::TwoMaxFindNaive, n, 10, 5, 1.0, s.trials, s.seed);
    let (naive_large, _) =
        average_rank(Approach::TwoMaxFindNaive, n, 50, 10, 1.0, s.trials, s.seed);

    assert!(
        expert_small <= alg1_small + 1.5,
        "expert {expert_small} vs alg1 {alg1_small}"
    );
    assert!(
        alg1_small < naive_small,
        "alg1 {alg1_small} vs naive {naive_small}"
    );
    assert!(
        naive_large > naive_small,
        "naive should degrade with un: un=10 gives {naive_small}, un=50 gives {naive_large}"
    );
}

/// Figure 4's headline: Alg 1's expert comparisons are flat in n while the
/// expert-only baseline's grow.
#[test]
fn fig4_shape_expert_comparisons_flat_for_alg1() {
    let s = scale();
    let (n_small, n_large) = (s.n_grid[0], *s.n_grid.last().unwrap());
    let (_, alg1_small) = average_rank(Approach::Alg1, n_small, 10, 5, 1.0, s.trials, s.seed);
    let (_, alg1_large) = average_rank(Approach::Alg1, n_large, 10, 5, 1.0, s.trials, s.seed);
    let (_, base_small) = average_rank(
        Approach::TwoMaxFindExpert,
        n_small,
        10,
        5,
        1.0,
        s.trials,
        s.seed,
    );
    let (_, base_large) = average_rank(
        Approach::TwoMaxFindExpert,
        n_large,
        10,
        5,
        1.0,
        s.trials,
        s.seed,
    );

    let alg1_growth = alg1_large.expert as f64 / alg1_small.expert.max(1) as f64;
    let base_growth = base_large.expert as f64 / base_small.expert.max(1) as f64;
    assert!(
        alg1_growth < 2.0,
        "Alg 1 expert comparisons grew {alg1_growth}x with n"
    );
    assert!(
        base_growth > alg1_growth,
        "baseline expert comparisons should grow faster: {base_growth} vs {alg1_growth}"
    );
    // Alg 1's naive comparisons, in contrast, grow with n.
    assert!(alg1_large.naive > alg1_small.naive);
}

/// Figure 5's headline: the cost crossover. At ce/cn = 50, Alg 1 beats the
/// expert-only baseline; the naive baseline is always cheapest.
#[test]
fn fig5_shape_cost_crossover() {
    let s = scale();
    let counts = fig5::average_counts(&s, 10, 5);
    let t50 = fig5::panel_from_counts("x", 10, 5, 50.0, &counts);
    let last = t50.rows.last().unwrap();
    let expert: f64 = last[1].parse().unwrap();
    let alg1: f64 = last[2].parse().unwrap();
    let naive: f64 = last[3].parse().unwrap();
    assert!(
        alg1 < expert,
        "at ce=50, Alg 1 ({alg1}) must undercut expert-only ({expert})"
    );
    assert!(
        naive < alg1,
        "naive-only ({naive}) is always cheapest (but inaccurate)"
    );
}

/// Section 5.2's survival claim: the maximum survives Phase 1 always at
/// factor 1, usually at 0.8, and substantially less often at 0.2.
#[test]
fn phase1_survival_shape() {
    let trials = 40;
    let r10 = phase1_survival::survival_rate(600, 40, 8, 1.0, trials, 11);
    let r08 = phase1_survival::survival_rate(600, 40, 8, 0.8, trials, 11);
    let r02 = phase1_survival::survival_rate(600, 40, 8, 0.2, trials, 11);
    assert_eq!(r10, 1.0, "factor 1 is guaranteed");
    assert!(r08 >= 0.8, "factor 0.8 should be near-reliable: {r08}");
    assert!(
        r02 < r08,
        "factor 0.2 ({r02}) should lose the max more often than 0.8 ({r08})"
    );
}
