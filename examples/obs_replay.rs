//! Replay a structured event log: read an `events.jsonl` produced by a
//! `repro` run (or record one in-process when no path is given) and print a
//! per-round cost/survivor table — post-hoc run analysis from the log
//! alone, no re-execution.
//!
//! ```text
//! cargo run --release --example obs_replay [-- results/events.jsonl]
//! ```

use crowd_core::algorithms::{expert_max_find, ExpertMaxConfig};
use crowd_core::element::Instance;
use crowd_core::oracle::{ComparisonOracle, PerfectOracle};
use crowd_obs::{Event, EventLog, ObservedOracle, Recorder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Records a small in-process run so the example works standalone.
fn record_demo_log() -> String {
    let instance = Instance::new((0..240).map(|i| (i * 83 % 997) as f64).collect());
    let rec = Arc::new(Recorder::new());
    {
        let _guard = crowd_obs::install_recorder(rec.clone());
        crowd_obs::emit(Event::RunStarted {
            name: "obs_replay_demo".to_string(),
        });
        let mut oracle = ObservedOracle::new(PerfectOracle::new(instance.clone()));
        let mut rng = StdRng::seed_from_u64(11);
        let out = expert_max_find(
            &mut oracle,
            &instance.ids(),
            &ExpertMaxConfig::new(6),
            &mut rng,
        );
        let counts = oracle.counts();
        println!(
            "recorded demo run: winner {} (true rank {})",
            out.winner,
            instance.rank(out.winner)
        );
        crowd_obs::emit(Event::RunFinished {
            name: "obs_replay_demo".to_string(),
            comparisons_by_class: counts,
            faults: 0,
        });
    }
    rec.log().to_jsonl()
}

fn main() {
    let jsonl = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => record_demo_log(),
    };

    let log = EventLog::from_jsonl(&jsonl).expect("well-formed event log");
    println!("{} records in the log\n", log.len());

    // ----- Per-round cost/survivor table, straight from the log. -----
    println!("| seq | round | groups | survivors | naive cmp | expert cmp |");
    println!("|----:|------:|-------:|----------:|----------:|-----------:|");
    let mut rounds = 0u64;
    for record in &log.records {
        if let Event::RoundCompleted {
            round,
            groups,
            survivors,
            comparisons_by_class,
        } = &record.event
        {
            rounds += 1;
            println!(
                "| {} | {round} | {groups} | {survivors} | {} | {} |",
                record.seq, comparisons_by_class.naive, comparisons_by_class.expert
            );
        }
    }

    // ----- Run-level summary from the bracketing events. -----
    for event in log.events() {
        match event {
            Event::RunStarted { name } => println!("\nrun started: {name}"),
            Event::RunFinished {
                name,
                comparisons_by_class,
                faults,
            } => println!(
                "run finished: {name} — {} naive + {} expert comparisons, {faults} faults",
                comparisons_by_class.naive, comparisons_by_class.expert
            ),
            Event::BudgetExhausted { cap, spent } => {
                println!("budget exhausted: spent {spent:.2} against cap {cap:.2}");
            }
            _ => {}
        }
    }
    let faults = log
        .events()
        .filter(|e| matches!(e, Event::FaultObserved { .. }))
        .count();
    println!("\n{rounds} filter rounds, {faults} fault events");
}
