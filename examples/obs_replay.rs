//! Replay a structured event log: read an `events.jsonl` produced by a
//! `repro` run (or record one in-process when no path is given) and print a
//! per-round cost/survivor table — post-hoc run analysis from the log
//! alone, no re-execution. Given a `spans.jsonl` too (written next to
//! `events.jsonl`), it also prints where the serve jobs' latency ticks
//! went, stage by stage.
//!
//! ```text
//! cargo run --release --example obs_replay [-- results/events.jsonl [results/spans.jsonl]]
//! ```

use crowd_core::algorithms::{expert_max_find, ExpertMaxConfig};
use crowd_core::element::Instance;
use crowd_core::oracle::{ComparisonOracle, PerfectOracle};
use crowd_obs::{
    stage_label, Event, EventLog, ObservedOracle, Recorder, SpanLog, Stage, StageAccum,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Records a small in-process run so the example works standalone,
/// returning the event log and span log as JSONL.
fn record_demo_log() -> (String, String) {
    let instance = Instance::new((0..240).map(|i| (i * 83 % 997) as f64).collect());
    let rec = Arc::new(Recorder::new());
    {
        let _guard = crowd_obs::install_recorder(rec.clone());
        crowd_obs::emit(Event::RunStarted {
            name: "obs_replay_demo".to_string(),
        });
        let mut oracle = ObservedOracle::new(PerfectOracle::new(instance.clone()));
        let mut rng = StdRng::seed_from_u64(11);
        let out = expert_max_find(
            &mut oracle,
            &instance.ids(),
            &ExpertMaxConfig::new(6),
            &mut rng,
        );
        let counts = oracle.counts();
        println!(
            "recorded demo run: winner {} (true rank {})",
            out.winner,
            instance.rank(out.winner)
        );
        crowd_obs::emit(Event::RunFinished {
            name: "obs_replay_demo".to_string(),
            comparisons_by_class: counts,
            faults: 0,
        });
        // A hand-built span tree, so the standalone demo exercises the
        // span path too: one job that queued two ticks, executed three,
        // and retried one.
        let mut stages = StageAccum::new();
        for tick in 2..5 {
            stages.record(Stage::ShardExec, tick);
        }
        stages.record(Stage::Retry, 5);
        for span in stages.job_spans(0, 0, 0, 2, 6) {
            crowd_obs::emit_span(span);
        }
    }
    (rec.log().to_jsonl(), rec.span_log().to_jsonl())
}

fn main() {
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        })
    };
    let (jsonl, spans_jsonl) = match std::env::args().nth(1) {
        Some(path) => (
            read(&path),
            std::env::args()
                .nth(2)
                .map(|p| read(&p))
                .unwrap_or_default(),
        ),
        None => record_demo_log(),
    };

    let log = EventLog::from_jsonl(&jsonl).expect("well-formed event log");
    println!("{} records in the log\n", log.len());

    // ----- Per-round cost/survivor table, straight from the log. -----
    println!("| seq | round | groups | survivors | naive cmp | expert cmp |");
    println!("|----:|------:|-------:|----------:|----------:|-----------:|");
    let mut rounds = 0u64;
    for record in &log.records {
        if let Event::RoundCompleted {
            round,
            groups,
            survivors,
            comparisons_by_class,
        } = &record.event
        {
            rounds += 1;
            println!(
                "| {} | {round} | {groups} | {survivors} | {} | {} |",
                record.seq, comparisons_by_class.naive, comparisons_by_class.expert
            );
        }
    }

    // ----- Run-level summary from the bracketing events. -----
    for event in log.events() {
        match event {
            Event::RunStarted { name } => println!("\nrun started: {name}"),
            Event::RunFinished {
                name,
                comparisons_by_class,
                faults,
            } => println!(
                "run finished: {name} — {} naive + {} expert comparisons, {faults} faults",
                comparisons_by_class.naive, comparisons_by_class.expert
            ),
            Event::BudgetExhausted { cap, spent } => {
                println!("budget exhausted: spent {spent:.2} against cap {cap:.2}");
            }
            _ => {}
        }
    }
    let faults = log
        .events()
        .filter(|e| matches!(e, Event::FaultObserved { .. }))
        .count();
    println!("\n{rounds} filter rounds, {faults} fault events");

    // ----- Stage-level latency attribution from the span log. -----
    let spans = SpanLog::from_jsonl(&spans_jsonl).expect("well-formed span log");
    if spans.is_empty() {
        println!("no spans (the run completed no serve jobs)");
        return;
    }
    match spans.reconcile() {
        Ok(()) => println!("\n{} spans, books balance:", spans.len()),
        Err(bad) => println!("\n{} spans, {} jobs UNBALANCED:", spans.len(), bad.len()),
    }
    let mut ticks_by_stage: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut jobs = 0u64;
    for span in &spans.spans {
        match span.stage {
            Stage::Admission => jobs += 1,
            Stage::Completion => {}
            stage => *ticks_by_stage.entry(stage_label(stage)).or_insert(0) += span.ticks,
        }
    }
    println!("| stage | ticks |");
    println!("|-------|------:|");
    for (stage, ticks) in &ticks_by_stage {
        println!("| {stage} | {ticks} |");
    }
    println!(
        "{jobs} traced jobs, {} latency ticks attributed",
        ticks_by_stage.values().sum::<u64>()
    );
}
