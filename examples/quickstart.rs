//! Quickstart: find (an approximation of) the maximum of 2000 elements
//! with cheap naïve workers plus a handful of expensive expert judgments.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use crowd_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // ----- 1. A problem instance: 2000 elements with hidden values. -----
    let mut rng = StdRng::seed_from_u64(42);
    let values: Vec<f64> = (0..2000).map(|_| rng.gen_range(0.0..1_000_000.0)).collect();
    let instance = Instance::new(values);
    println!(
        "instance: n = {}, true maximum = {}",
        instance.n(),
        instance.max_element()
    );

    // ----- 2. A workforce: naïve workers discern differences above δn =
    // 10_000; experts discern down to δe = 500. Nobody errs above their
    // threshold (the paper's analysis model). -----
    let (delta_n, delta_e) = (10_000.0, 500.0);
    let model = ExpertModel::exact(delta_n, delta_e, TiePolicy::UniformRandom);
    let mut oracle = SimulatedOracle::new(instance.clone(), model, StdRng::seed_from_u64(7));

    // The only parameter the algorithm needs: how many elements are
    // naïve-indistinguishable from the maximum. Here we read it off the
    // ground truth; `crowd_core::estimation` shows how to estimate it from
    // gold data when you cannot.
    let un = instance.indistinguishable_from_max(delta_n);
    println!("un(n) = {un} elements within δn of the maximum");

    // ----- 3. Run the two-phase algorithm (Algorithm 1). -----
    let outcome = expert_max_find(
        &mut oracle,
        &instance.ids(),
        &ExpertMaxConfig::new(un),
        &mut rng,
    );

    let winner = outcome.winner;
    println!(
        "returned element {winner} (true rank {}), gap to maximum: {:.1} (guarantee: <= 2·δe = {})",
        instance.rank(winner),
        instance.max_value() - instance.value(winner),
        2.0 * delta_e,
    );
    println!(
        "phase 1 kept {} of {} elements in {} rounds",
        outcome.candidates.len(),
        instance.n(),
        outcome.phase1.rounds,
    );
    println!(
        "comparisons: {} naive + {} expert",
        outcome.total_comparisons.naive, outcome.total_comparisons.expert,
    );

    // ----- 4. Bill the run under the paper's cost model. -----
    for prices in CostModel::paper_settings() {
        println!(
            "  at ce/cn = {:>2}: Alg 1 cost = {:>9.0}  (expert-only 2-MaxFind worst case: {:.0})",
            prices.ratio(),
            prices.cost(outcome.total_comparisons),
            crowd_core::bounds::two_maxfind_expert_cost_upper_bound(instance.n(), &prices),
        );
    }
}
