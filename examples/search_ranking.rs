//! The Section 5.3 application end to end, including parameter estimation:
//! find the best search result for a query when you do *not* know `un(n)`,
//! by estimating it from a training query with Algorithm 4, then running
//! the two-phase algorithm on the platform.
//!
//! ```text
//! cargo run --release --example search_ranking
//! ```

use crowd_core::algorithms::{filter_candidates, two_max_find, FilterConfig};
use crowd_core::estimation::{estimate_perr, estimate_un, EstimationConfig, TrainingSet};
use crowd_core::model::{ThresholdModel, TiePolicy, WorkerClass};
use crowd_core::oracle::{ComparisonOracle, ModelOracle};
use crowd_datasets::search::SearchResultSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn naive_oracle(
    set: &SearchResultSet,
    seed: u64,
) -> ModelOracle<ThresholdModel, ThresholdModel, StdRng> {
    ModelOracle::new(
        set.to_instance(),
        ThresholdModel::exact(set.naive_delta(), TiePolicy::UniformRandom),
        ThresholdModel::exact(set.expert_delta(), TiePolicy::UniformRandom),
        StdRng::seed_from_u64(seed),
    )
}

fn main() {
    let mut rng = StdRng::seed_from_u64(53);

    // ----- 1. A training query with known best result (gold data). -----
    let training_set =
        SearchResultSet::synthesize("minimum vertex cover best approximation", 50, 8, &mut rng);
    let training = TrainingSet::new(training_set.to_instance());
    println!(
        "training query: {:?} (true un = {})",
        training_set.query(),
        training_set.true_un()
    );

    // ----- 2. Estimate perr, then un(n), from the training query. -----
    let mut oracle = naive_oracle(&training_set, 1);
    let ids = training.instance().ids();
    let pairs: Vec<_> = ids
        .iter()
        .flat_map(|&a| ids.iter().map(move |&b| (a, b)))
        .filter(|&(a, b)| a < b)
        .take(120)
        .collect();
    let perr = estimate_perr(&mut oracle, &training, &pairs, 9);
    println!(
        "estimated perr = {:?} from {} contested / {} consensus pairs",
        perr.perr.map(|p| (p * 100.0).round() / 100.0),
        perr.contested_pairs,
        perr.consensus_pairs
    );

    let cfg = EstimationConfig::new(perr.perr.unwrap_or(0.4), 1.0);
    let est = estimate_un(&mut oracle, &training, &cfg, 50);
    println!(
        "Algorithm 4: un(50) <= {} ({} errors over {} training comparisons)\n",
        est.un, est.errors, est.comparisons
    );

    // ----- 3. Run the two-phase algorithm on the two evaluation queries
    // with the estimated un. -----
    let queries = SearchResultSet::paper_queries(&mut rng);
    for q in &queries {
        let instance = q.to_instance();
        let mut oracle = naive_oracle(q, 7);
        let phase1 = filter_candidates(&mut oracle, &instance.ids(), &FilterConfig::new(est.un));
        let promoted = phase1.survivors.contains(&instance.max_element());
        let phase2 = two_max_find(&mut oracle, WorkerClass::Expert, &phase1.survivors);
        let best = q.result_of(phase2.winner);
        println!("query: {:?}", q.query());
        println!(
            "  promoted the true best: {promoted}; experts picked (rank {}): {:?}",
            instance.rank(phase2.winner),
            best.title
        );
        println!(
            "  {} naive + {} expert comparisons\n",
            oracle.counts().naive,
            oracle.counts().expert
        );
    }
}
