//! The CARS story (paper Sections 3.1 and 5.3): pick the most expensive of
//! 50 cars. Counting dots, the crowd converges; pricing cars, it plateaus —
//! majority voting locks onto the crowd's shared *prior* ("the German sedan
//! must cost more"), not onto the truth. Only real experts break the tie.
//!
//! ```text
//! cargo run --release --example car_pricing
//! ```

use crowd_core::algorithms::{filter_candidates, majority_compare, FilterConfig};
use crowd_core::model::{ProbabilisticModel, ThresholdModel, TiePolicy, WorkerClass};
use crowd_core::oracle::{MajorityOracle, ModelOracle, SimulatedExpertOracle};
use crowd_core::tournament::Tournament;
use crowd_datasets::cars::{CarsCatalog, CarsWorkerModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(813);
    let catalog = CarsCatalog::paper_default(&mut rng).downsample(50, &mut rng);
    let instance = catalog.to_instance();
    let top = catalog.car_of(instance.max_element());
    println!(
        "catalog: 50 cars, ${:.0} to ${:.0}",
        instance.values().iter().fold(f64::MAX, |a, &b| a.min(b)),
        instance.max_value()
    );
    println!(
        "ground truth best: {} {} at ${:.0}\n",
        top.make, top.model, top.price
    );

    // ----- 1. The plateau, on one hard pair: the top two cars. -----
    let order = instance.ids_by_rank();
    let (first, second) = (order[0], order[1]);
    println!(
        "hard pair: ${:.0} vs ${:.0} ({}% apart)",
        instance.value(first),
        instance.value(second),
        (100.0 * instance.distance(first, second) / instance.value(first)).round(),
    );
    for votes in [1u32, 7, 21] {
        let trials = 200;
        let mut ok = 0;
        for seed in 0..trials {
            // A fresh crowd (fresh shared prior) per trial.
            let mut o = ModelOracle::new(
                instance.clone(),
                CarsWorkerModel::calibrated(),
                ProbabilisticModel::perfect(),
                StdRng::seed_from_u64(1000 + seed),
            );
            if majority_compare(&mut o, WorkerClass::Naive, first, second, votes) == first {
                ok += 1;
            }
        }
        println!(
            "  majority of {votes:>2} workers: {:.0}% correct",
            100.0 * ok as f64 / trials as f64
        );
    }
    println!("  -> more workers do NOT help below the ~20% price-difference threshold\n");

    // ----- 2. Two-phase run with SIMULATED experts (majority of 7 units),
    // the paper's CrowdFlower setup. -----
    let simulate = |seed: u64| {
        let inner = ModelOracle::new(
            instance.clone(),
            CarsWorkerModel::calibrated(),
            ProbabilisticModel::perfect(),
            StdRng::seed_from_u64(seed),
        );
        let mut oracle = SimulatedExpertOracle::paper_default(MajorityOracle::new(inner, 5, 1));
        let phase1 = filter_candidates(&mut oracle, &instance.ids(), &FilterConfig::new(5));
        let last = Tournament::all_play_all(&mut oracle, WorkerClass::Expert, &phase1.survivors);
        (
            phase1.survivors.len(),
            instance.rank(last.ranking()[0].0),
            phase1.survivors.contains(&instance.max_element()),
        )
    };
    let (cands, winner_rank, promoted) = simulate(1);
    println!("simulated experts (majority of 7 naive units):");
    println!("  phase 1 kept {cands} cars; top car promoted: {promoted}");
    println!(
        "  final winner true rank: {winner_rank}  <- often NOT 1: the crowd cannot price cars\n"
    );

    // ----- 3. Two-phase run with REAL experts (δe = $400 < the $500
    // minimum price gap, i.e. a dealer who actually knows prices). -----
    let real = |seed: u64| {
        let inner = ModelOracle::new(
            instance.clone(),
            CarsWorkerModel::calibrated(),
            ThresholdModel::exact(400.0, TiePolicy::UniformRandom),
            StdRng::seed_from_u64(seed),
        );
        let mut oracle = MajorityOracle::new(inner, 5, 1);
        let phase1 = filter_candidates(&mut oracle, &instance.ids(), &FilterConfig::new(5));
        let last = Tournament::all_play_all(&mut oracle, WorkerClass::Expert, &phase1.survivors);
        instance.rank(last.ranking()[0].0)
    };
    let mut wins = 0;
    let runs = 10;
    for seed in 0..runs {
        if real(100 + seed) == 1 {
            wins += 1;
        }
    }
    println!("real experts (threshold δe = $400): found the top car in {wins}/{runs} runs");
    println!("\n\"Clearly a truly informed expert opinion is required in this case.\" — §5.3");
}
