//! The multi-class extension (the paper's stated future work): a
//! three-rung expertise ladder — crowd, enthusiasts, professionals — where
//! each rung shrinks the candidate set before the next, pricier one takes
//! over. Compare the cascade's bill against the two-phase algorithm and
//! against going straight to the professionals.
//!
//! ```text
//! cargo run --release --example expertise_ladder
//! ```

use crowd_core::algorithms::{expert_max_find, two_max_find_expert, ExpertMaxConfig};
use crowd_core::model::{ExpertModel, TiePolicy};
use crowd_core::multiclass::{cascade_max_find, ClassSpec, ExpertiseLadder, LadderOracle};
use crowd_core::oracle::{ComparisonOracle, SimulatedOracle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // A wine competition: 3000 bottles with hidden quality scores.
    let mut rng = StdRng::seed_from_u64(1855);
    let values: Vec<f64> = (0..3000).map(|_| rng.gen_range(0.0..100_000.0)).collect();
    let instance = crowd_core::element::Instance::new(values);

    // The ladder: casual drinkers ($1, δ=3500), wine-club members
    // ($12, δ=300), master sommeliers ($600, δ=20). The steep price of the
    // top rung is the realistic part: a master sommelier's hour dwarfs a
    // crowdsourced click.
    let ladder = ExpertiseLadder::new(vec![
        ClassSpec::new(3_500.0, 0.0, 1.0),
        ClassSpec::new(300.0, 0.0, 12.0),
        ClassSpec::new(20.0, 0.0, 600.0),
    ]);
    let us: Vec<usize> = ladder.classes()[..2]
        .iter()
        .map(|c| instance.indistinguishable_from_max(c.delta))
        .collect();
    println!("bottles: {}; u-parameters per rung: {us:?}", instance.n());

    // --- Three-stage cascade ---
    let mut oracle = LadderOracle::new(
        instance.clone(),
        &ladder,
        TiePolicy::UniformRandom,
        StdRng::seed_from_u64(2),
    );
    let cascade = cascade_max_find(&mut oracle, &ladder, &instance.ids(), &us);
    let cascade_cost = ladder.cost(&cascade.per_class);
    println!("\nthree-stage cascade:");
    println!("  stage survivors: {:?}", cascade.stage_sizes);
    println!("  comparisons per rung: {:?}", cascade.per_class);
    println!(
        "  winner true rank {}, bill ${cascade_cost:.0}",
        instance.rank(cascade.winner)
    );

    // --- Two-phase (crowd straight to sommeliers) ---
    let two_model = ExpertModel::exact(3_500.0, 20.0, TiePolicy::UniformRandom);
    let mut two_oracle =
        SimulatedOracle::new(instance.clone(), two_model, StdRng::seed_from_u64(3));
    let mut rng2 = StdRng::seed_from_u64(4);
    let two = expert_max_find(
        &mut two_oracle,
        &instance.ids(),
        &ExpertMaxConfig::new(us[0]),
        &mut rng2,
    );
    let two_cost =
        two.total_comparisons.naive as f64 * 1.0 + two.total_comparisons.expert as f64 * 600.0;
    println!("\ntwo-phase (crowd -> sommeliers):");
    println!(
        "  winner true rank {}, {} crowd + {} sommelier comparisons, bill ${two_cost:.0}",
        instance.rank(two.winner),
        two.total_comparisons.naive,
        two.total_comparisons.expert
    );

    // --- Sommeliers only ---
    let som_model = ExpertModel::exact(20.0, 20.0, TiePolicy::UniformRandom);
    let mut som_oracle =
        SimulatedOracle::new(instance.clone(), som_model, StdRng::seed_from_u64(5));
    let som = two_max_find_expert(&mut som_oracle, &instance.ids());
    let som_cost = som_oracle.counts().expert as f64 * 600.0;
    println!("\nsommeliers only (2-MaxFind):");
    println!(
        "  winner true rank {}, {} comparisons, bill ${som_cost:.0}",
        instance.rank(som.winner),
        som_oracle.counts().expert
    );

    println!(
        "\ncascade saves {:.0}% vs sommeliers-only and {:.0}% vs two-phase",
        100.0 * (1.0 - cascade_cost / som_cost),
        100.0 * (1.0 - cascade_cost / two_cost),
    );
}
