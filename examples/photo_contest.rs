//! The paper's motivating scenario (Sections 2–3): select the best of many
//! photos of the Colosseum. A professional photographer is the expert —
//! hired *because* she is one — but her time is expensive, so the cheap
//! crowd filters the bulk of the photos first and she only ever sees a
//! handful.
//!
//! This example drives the full `crowd-platform` stack: a hired crowd
//! (including a spammer that gold questions catch), per-judgment billing,
//! and one expert, with the algorithms talking to the platform only
//! through its oracle adapter.
//!
//! ```text
//! cargo run --release --example photo_contest
//! ```

use crowd_core::algorithms::{expert_max_find, ExpertMaxConfig};
use crowd_core::cost::CostModel;
use crowd_core::element::Instance;
use crowd_core::model::{TiePolicy, WorkerClass};
use crowd_platform::{
    Behavior, CampaignReport, Platform, PlatformConfig, PlatformOracle, SpamStrategy, WorkerPool,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // ----- 1. 400 submitted photos with hidden quality scores. Many are
    // mediocre, a cluster near the top is hard to separate. -----
    let mut rng = StdRng::seed_from_u64(2015);
    let mut quality: Vec<f64> = (0..392).map(|_| rng.gen_range(0.0..80.0)).collect();
    for _ in 0..7 {
        quality.push(rng.gen_range(88.0..96.0)); // strong contenders
    }
    quality.push(97.5); // the winner-to-be
    let instance = Instance::new(quality);
    let n = instance.n();

    // ----- 2. The workforce: a crowd that can separate "clearly better"
    // photos (δn = 15 quality points) but not the top cluster, one
    // professional photographer (δe = 1), and one spammer. -----
    let mut pool = WorkerPool::new();
    pool.hire_many(
        25,
        WorkerClass::Naive,
        "crowd",
        Behavior::Threshold {
            delta: 15.0,
            epsilon: 0.03,
            tie: TiePolicy::UniformRandom,
        },
    );
    pool.hire(
        WorkerClass::Naive,
        "crowd",
        Behavior::Spammer(SpamStrategy::AlwaysFirst),
    );
    pool.hire(
        WorkerClass::Expert,
        "professional-photographer",
        Behavior::Threshold {
            delta: 1.0,
            epsilon: 0.0,
            tie: TiePolicy::UniformRandom,
        },
    );

    // The photographer charges 100x the crowd rate.
    let config = PlatformConfig::paper_default().with_payment(CostModel::new(0.05, 5.0));
    let mut platform = Platform::new(instance.clone(), pool, config, StdRng::seed_from_u64(99));

    // Gold questions with obvious answers, to catch the spammer.
    let ids = instance.ids();
    let easy: Vec<_> = ids
        .iter()
        .flat_map(|&a| ids.iter().map(move |&b| (a, b)))
        .filter(|&(a, b)| a < b && instance.distance(a, b) > 60.0)
        .take(25)
        .collect();
    platform.set_gold_pairs(easy);

    // ----- 3. Run the two-phase algorithm on the platform. -----
    let un = instance.indistinguishable_from_max(15.0);
    let mut oracle = PlatformOracle::new(platform);
    let outcome = expert_max_find(
        &mut oracle,
        &instance.ids(),
        &ExpertMaxConfig::new(un),
        &mut rng,
    );

    let platform = oracle.into_platform();
    println!("photos submitted:             {n}");
    println!("photos the photographer saw:  {}", outcome.candidates.len());
    println!(
        "winner: photo {} (true rank {}, quality {:.1})",
        outcome.winner,
        instance.rank(outcome.winner),
        instance.value(outcome.winner),
    );
    println!(
        "comparisons: {} crowd, {} expert",
        outcome.total_comparisons.naive, outcome.total_comparisons.expert
    );
    println!(
        "bill: ${:.2} total — ${:.2} to the crowd, ${:.2} to the photographer",
        platform.ledger().total(),
        platform.ledger().spent_on(WorkerClass::Naive),
        platform.ledger().spent_on(WorkerClass::Expert),
    );
    println!(
        "platform ran {} logical steps over {} physical steps; excluded workers: {}",
        platform.logical_steps(),
        platform.physical_clock(),
        platform.trust().untrusted().len(),
    );

    // The requester's dashboard: spend, per-worker earnings, flagged spam.
    let report = CampaignReport::from_platform(&platform);
    println!(
        "
--- campaign dashboard (top 6 earners) ---"
    );
    for line in report.to_string().lines().take(7) {
        println!("{line}");
    }
}
