//! Record once, re-analyze forever: capture the judgments of a (simulated)
//! paid crowd into a serializable log, then replay them offline to compare
//! algorithm configurations without paying twice.
//!
//! ```text
//! cargo run --release --example offline_replay
//! ```

use crowd_core::algorithms::{two_max_find, TopKConfig};
use crowd_core::element::Instance;
use crowd_core::model::{ExpertModel, TiePolicy, WorkerClass};
use crowd_core::oracle::SimulatedOracle;
use crowd_core::replay::{RecordingOracle, ReplayOracle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(9);
    let instance = Instance::new((0..400).map(|_| rng.gen_range(0.0..10_000.0)).collect());

    // ----- 1. The paid run: record every judgment. -----
    let model = ExpertModel::exact(300.0, 10.0, TiePolicy::Persistent);
    let oracle = SimulatedOracle::new(instance.clone(), model, StdRng::seed_from_u64(10));
    let mut recorder = RecordingOracle::new(oracle);
    let paid = two_max_find(&mut recorder, WorkerClass::Naive, &instance.ids());
    let (log, inner) = recorder.into_parts();
    println!(
        "paid run: winner {} (true rank {}), {} judgments recorded",
        paid.winner,
        instance.rank(paid.winner),
        log.len()
    );
    let _ = inner;

    // The log serializes — ship it to disk, a notebook, a colleague.
    let json = serde_json::to_vec(&log).expect("logs are serializable");
    println!("log size on disk: {} bytes of JSON", json.len());

    // ----- 2. Offline: replay the very same answers. -----
    let log2: crowd_core::replay::JudgmentLog = serde_json::from_slice(&json).unwrap();
    let mut replay = ReplayOracle::new(&log2);
    let replayed = two_max_find(&mut replay, WorkerClass::Naive, &instance.ids());
    assert_eq!(replayed.winner, paid.winner);
    println!(
        "replayed run: identical winner, {} recorded judgments left over",
        replay.remaining()
    );

    // ----- 3. Offline what-if: would the answers support a different
    // analysis? Count how often the recorded naive answers were wrong —
    // free quality auditing after the fact. -----
    let wrong = log2
        .judgments()
        .iter()
        .filter(|r| {
            let truth = if instance.value(r.k) >= instance.value(r.j) {
                r.k
            } else {
                r.j
            };
            r.winner != truth
        })
        .count();
    println!(
        "audit: {wrong}/{} recorded judgments disagreed with ground truth ({:.1}%)",
        log2.len(),
        100.0 * wrong as f64 / log2.len() as f64
    );
    let _ = TopKConfig::new(1, 1); // the same log can feed any analysis that asks the same questions
}
