//! Experiment scale presets.
//!
//! The paper's sweeps (n up to 5000, averaged over many random instances)
//! take minutes in release mode; tests and smoke runs use a reduced grid
//! with the same structure.

use serde::{Deserialize, Serialize};

/// How big to run the simulation sweeps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Random instances averaged per sweep point.
    pub trials: u64,
    /// The dataset sizes `n` to sweep.
    pub n_grid: Vec<usize>,
    /// Pairs sampled per relative-difference bucket (Figure 2).
    pub pairs_per_bucket: usize,
    /// Independent repetitions of the CrowdFlower-style experiments
    /// (Tables 1–2 run twice in the paper; 2-MaxFind is repeated 14 times).
    pub repetitions: u64,
    /// Base RNG seed; every derived seed is a pure function of this.
    pub seed: u64,
}

impl Scale {
    /// The paper's full grid: n ∈ {1000, …, 5000}, 10 trials per point.
    pub fn full() -> Self {
        Scale {
            trials: 10,
            n_grid: (1000..=5000).step_by(1000).collect(),
            pairs_per_bucket: 25,
            repetitions: 14,
            seed: 0xC0FFEE,
        }
    }

    /// A fast grid with the same shape, for tests and smoke runs.
    pub fn quick() -> Self {
        Scale {
            trials: 3,
            n_grid: vec![300, 600],
            pairs_per_bucket: 8,
            repetitions: 4,
            seed: 0xC0FFEE,
        }
    }

    /// Which preset this is — `"quick"`, `"full"`, or `"custom"` for a
    /// hand-built scale. Recorded in the run manifest.
    pub fn label(&self) -> &'static str {
        if *self == Scale::quick() {
            "quick"
        } else if *self == Scale::full() {
            "full"
        } else {
            "custom"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matches_paper_grid() {
        let s = Scale::full();
        assert_eq!(s.n_grid, vec![1000, 2000, 3000, 4000, 5000]);
        assert!(s.trials >= 10);
    }

    #[test]
    fn quick_is_smaller_but_same_shape() {
        let (f, q) = (Scale::full(), Scale::quick());
        assert!(q.trials < f.trials);
        assert!(q.n_grid.len() < f.n_grid.len());
        assert_eq!(q.seed, f.seed, "same base seed for comparability");
    }

    #[test]
    fn labels_identify_the_presets() {
        assert_eq!(Scale::quick().label(), "quick");
        assert_eq!(Scale::full().label(), "full");
        let mut custom = Scale::quick();
        custom.trials = 99;
        assert_eq!(custom.label(), "custom");
    }
}
