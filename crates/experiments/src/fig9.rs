//! Figure 9 — worst-case cost `C(n)` vs `n` for the three approaches,
//! `cn = 1`, `ce ∈ {10, 20, 50}` (six panels).
//!
//! As in the paper, Algorithm 1's worst case is priced from the theoretical
//! bound (`4·n·un` naïve plus `2·(2·un)^{3/2}` expert comparisons), while
//! the baselines' worst case is measured against the adversarial responder.
//!
//! Expected shape: Alg 1's worst-case cost grows linearly in `n` while the
//! baselines grow superlinearly; 2-MaxFind-expert's worst case is the most
//! expensive once `ce` is large.

use crate::fig4::adversarial_two_maxfind_count;
use crate::report::{fmt_f64, Table};
use crate::scale::Scale;
use crowd_core::bounds;
use crowd_core::cost::CostModel;
use crowd_core::model::WorkerClass;

/// Worst-case comparison counts per `n`: (Alg 1 theory bound split by
/// class, 2MF-naive measured, 2MF-expert measured).
pub struct WorstCaseCounts {
    /// Dataset size.
    pub n: usize,
    /// Alg 1 naïve bound `4·n·un`.
    pub alg1_naive: u64,
    /// Alg 1 expert bound `2·(2·un)^{3/2}`.
    pub alg1_expert: u64,
    /// 2-MaxFind-naïve measured against the adversary.
    pub naive_measured: u64,
    /// 2-MaxFind-expert measured against the adversary.
    pub expert_measured: u64,
}

/// Measures worst-case counts over the grid.
pub fn worst_case_counts(scale: &Scale, un: usize, ue: usize) -> Vec<WorstCaseCounts> {
    scale
        .n_grid
        .iter()
        .map(|&n| WorstCaseCounts {
            n,
            alg1_naive: bounds::phase1_upper_bound(n, un),
            alg1_expert: bounds::two_maxfind_upper_bound(2 * un),
            naive_measured: adversarial_two_maxfind_count(
                n,
                un,
                ue,
                WorkerClass::Naive,
                scale.seed,
            ),
            expert_measured: adversarial_two_maxfind_count(
                n,
                un,
                ue,
                WorkerClass::Expert,
                scale.seed,
            ),
        })
        .collect()
}

/// Builds one priced panel.
pub fn panel_from_counts(id: &str, un: usize, ue: usize, ce: f64, wc: &[WorstCaseCounts]) -> Table {
    let prices = CostModel::with_ratio(ce);
    let mut t = Table::new(
        id,
        &format!("Worst-case cost C(n), cn=1, ce={ce}, un={un}, ue={ue}"),
        &[
            "n",
            "2-MaxFind-expert (wc)",
            "Alg 1 (wc)",
            "2-MaxFind-naive (wc)",
        ],
    )
    .with_notes(
        "Alg 1 worst case priced from the theoretical bound (as in the \
         paper); baselines measured against the adversarial responder. \
         Expected: Alg 1 linear in n, baselines superlinear.",
    );
    for w in wc {
        let alg1 = prices.naive * w.alg1_naive as f64 + prices.expert * w.alg1_expert as f64;
        let expert = prices.expert * w.expert_measured as f64;
        let naive = prices.naive * w.naive_measured as f64;
        t.push_row(vec![
            w.n.to_string(),
            fmt_f64(expert, 0),
            fmt_f64(alg1, 0),
            fmt_f64(naive, 0),
        ]);
    }
    t
}

/// Runs all six panels (fig9a–fig9f).
pub fn run(scale: &Scale) -> Vec<Table> {
    let measured: Vec<_> = crate::fig3::SETTINGS
        .iter()
        .map(|&(un, ue)| (un, ue, worst_case_counts(scale, un, ue)))
        .collect();
    let mut tables = Vec::with_capacity(6);
    let mut panel = 'a';
    for &ce in &crate::fig5::EXPERT_PRICES {
        for (un, ue, wc) in &measured {
            tables.push(panel_from_counts(&format!("fig9{panel}"), *un, *ue, ce, wc));
            panel = (panel as u8 + 1) as char;
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alg1_worst_case_grows_linearly() {
        let scale = Scale::quick();
        let wc = worst_case_counts(&scale, 10, 5);
        // 4·n·un is exactly linear; the expert part is constant.
        let n0 = &wc[0];
        let n1 = &wc[1];
        let ratio = n1.alg1_naive as f64 / n0.alg1_naive as f64;
        let n_ratio = n1.n as f64 / n0.n as f64;
        assert!((ratio - n_ratio).abs() < 1e-9);
        assert_eq!(n0.alg1_expert, n1.alg1_expert);
    }

    #[test]
    fn panels_render_and_price_correctly() {
        let scale = Scale::quick();
        let wc = worst_case_counts(&scale, 10, 5);
        let t = panel_from_counts("fig9x", 10, 5, 20.0, &wc);
        assert_eq!(t.rows.len(), scale.n_grid.len());
        let expert_cost: f64 = t.rows[0][1].parse().unwrap();
        assert!((expert_cost - 20.0 * wc[0].expert_measured as f64).abs() < 1.0);
    }

    #[test]
    fn run_emits_six_panels() {
        assert_eq!(run(&Scale::quick()).len(), 6);
    }
}
