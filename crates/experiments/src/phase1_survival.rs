//! Section 5.2 (text) — how often the true maximum survives Phase 1 under
//! underestimated `un(n)`.
//!
//! The paper reports: "if the estimation factor is 0.8 then the set
//! returned in the first round contains the real max in 99% of the times,
//! whereas for an estimation factor of 0.5 results start to worsen with
//! the max appearing in 82% of the sets. When the estimation factor drops
//! to 0.2 the number of times the maximum arrives in the second round is
//! only 38%." Factors ≥ 1 must give 100% (the Lemma 3 guarantee).

use crate::harness::{planted_for, scaled_un};
use crate::report::{fmt_f64, Table};
use crate::scale::Scale;
use crowd_core::algorithms::{filter_candidates, FilterConfig};
use crowd_core::model::{ExpertModel, TiePolicy};
use crowd_core::oracle::SimulatedOracle;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The factors the paper quotes, plus the guaranteed regime.
pub const FACTORS: [f64; 4] = [0.2, 0.5, 0.8, 1.0];

/// Fraction of runs in which the maximum survives Phase 1 with
/// `un_est = factor · un`.
pub fn survival_rate(n: usize, un: usize, ue: usize, factor: f64, trials: u64, seed: u64) -> f64 {
    let mut survived = 0u64;
    for t in 0..trials {
        let planted = planted_for(n, un, ue, seed ^ 0xf1, t);
        let model = ExpertModel::exact(planted.delta_n, planted.delta_e, TiePolicy::UniformRandom);
        let mut oracle = SimulatedOracle::new(
            planted.instance.clone(),
            model,
            StdRng::seed_from_u64(seed ^ (t << 8)),
        );
        let out = filter_candidates(
            &mut oracle,
            &planted.instance.ids(),
            &FilterConfig::new(scaled_un(un, factor)),
        );
        if out.survivors.contains(&planted.instance.max_element()) {
            survived += 1;
        }
    }
    survived as f64 / trials as f64
}

/// Runs the survival sweep.
pub fn run(scale: &Scale) -> Table {
    let headers: Vec<String> = std::iter::once("n".to_string())
        .chain(FACTORS.iter().map(|f| format!("factor {f}")))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "phase1_survival",
        "Fraction of runs where the maximum survives Phase 1 (un=50, ue=10)",
        &headers_ref,
    )
    .with_notes(
        "Paper reports 38% at factor 0.2, 82% at 0.5, 99% at 0.8; factor 1 \
         is guaranteed (Lemma 3).",
    );
    // More trials than the figures: we are estimating a probability.
    let trials = (scale.trials * 10).max(20);
    for &n in &scale.n_grid {
        let mut row = vec![n.to_string()];
        for &f in &FACTORS {
            row.push(fmt_f64(
                survival_rate(
                    n,
                    50.min(n / 4).max(2),
                    10.min(n / 8).max(1),
                    f,
                    trials,
                    scale.seed,
                ),
                2,
            ));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_un_always_survives() {
        let rate = survival_rate(400, 20, 5, 1.0, 20, 1);
        assert_eq!(rate, 1.0, "Lemma 3 guarantees survival at factor 1");
    }

    #[test]
    fn overestimation_also_always_survives() {
        let rate = survival_rate(400, 20, 5, 2.0, 10, 2);
        assert_eq!(rate, 1.0);
    }

    #[test]
    fn survival_degrades_monotonically_with_underestimation() {
        let trials = 30;
        let r02 = survival_rate(500, 40, 8, 0.2, trials, 3);
        let r08 = survival_rate(500, 40, 8, 0.8, trials, 3);
        assert!(
            r02 <= r08,
            "survival at 0.2 ({r02}) should not beat survival at 0.8 ({r08})"
        );
        assert!(
            r08 >= 0.8,
            "factor 0.8 should keep the max most of the time: {r08}"
        );
        assert!(r02 < 1.0, "factor 0.2 should lose the max sometimes: {r02}");
    }

    #[test]
    fn table_shape() {
        let t = run(&Scale::quick());
        assert_eq!(t.headers.len(), 1 + FACTORS.len());
        assert_eq!(t.rows.len(), Scale::quick().n_grid.len());
    }
}
