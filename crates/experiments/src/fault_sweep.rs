//! Robustness sweep: Algorithm 1 on the platform under rising fault
//! pressure.
//!
//! The paper's platform (CrowdFlower) is assumed reliable: every posted
//! unit comes back answered. Real crowd platforms are not — workers drop
//! out, answers stall past their deadline, judgments silently never
//! arrive. This experiment drives the full two-phase algorithm through the
//! platform simulator while a [`FaultPlan`](crowd_platform::FaultPlan)
//! injects dropout, transient no-answers, and geometric latencies that
//! overrun the timeout, with recovery handled by the platform's retry /
//! dead-letter machinery.
//!
//! Swept knob: one `rate` applied as the dropout probability, the
//! no-answer probability, *and* the per-judgment timeout probability (the
//! geometric latency parameter is solved so that
//! `P(latency > timeout) = rate`). Reported per rate: how often the run
//! still finds a `2·δe`-max (max recall), how much the recovered runs cost
//! relative to the fault-free baseline (cost inflation), and the raw
//! retry / timeout / dead-letter tallies.
//!
//! Expected shape: at rate 0 the sweep is byte-identical to a fault-free
//! platform run (zero tallies, recall 1.0, inflation 1.00x); as the rate
//! rises, retries first absorb the faults at a modest cost premium, then
//! dead letters and aborted runs appear and recall falls.

use crate::engine;
use crate::harness::planted_for;
use crate::report::{fmt_f64, Table};
use crate::scale::Scale;
use crowd_core::algorithms::{try_expert_max_find, ExpertMaxConfig};
use crowd_core::trace::FaultCounts;
use crowd_platform::{
    FaultConfig, LatencyModel, Platform, PlatformConfig, PlatformOracle, RetryPolicy, WorkerPool,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fault rates swept (each is simultaneously the dropout, no-answer, and
/// timeout probability).
pub const RATES: [f64; 5] = [0.0, 0.02, 0.05, 0.1, 0.2];

/// Naïve workers hired per trial platform.
pub const NAIVE_POOL: usize = 25;
/// Experts hired per trial platform (scarce, per the paper's premise).
pub const EXPERT_POOL: usize = 4;

/// Extra steps a judgment may take before it is declared timed out.
const TIMEOUT_STEPS: u64 = 3;
/// Cap on geometric latency (must exceed [`TIMEOUT_STEPS`] so late answers
/// exist).
const LATENCY_CAP: u64 = 8;

/// The fault configuration for one sweep rate: dropout and no-answer at
/// `rate`, and a geometric latency solved so a judgment overruns the
/// timeout with probability `rate` too.
pub fn fault_config(rate: f64) -> FaultConfig {
    if rate <= 0.0 {
        return FaultConfig::none();
    }
    // P(latency > TIMEOUT_STEPS) = (1-p)^(TIMEOUT_STEPS+1) = rate.
    let p = 1.0 - rate.powf(1.0 / (TIMEOUT_STEPS + 1) as f64);
    FaultConfig::none()
        .with_dropout(rate)
        .with_no_answer(rate)
        .with_latency(LatencyModel::Geometric {
            p: p.max(1e-9),
            cap: LATENCY_CAP,
        })
        .with_timeout_steps(TIMEOUT_STEPS)
}

/// What one trial at one fault rate produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialOutcome {
    /// The run finished and its winner is within `2·δe` of the maximum —
    /// the paper's Theorem 2 success criterion.
    pub found_max: bool,
    /// The run aborted with an [`OracleError`](crowd_core::oracle::OracleError)
    /// (dead-lettered unit, depleted pool, …).
    pub failed: bool,
    /// The platform flagged degraded service at any point.
    pub degraded: bool,
    /// Money spent, including on the partial work of failed runs.
    pub cost: f64,
    /// Fault tallies the platform recorded.
    pub faults: FaultCounts,
    /// Units given up on after exhausting retries.
    pub dead_letters: u64,
}

/// Runs Algorithm 1 once through a fault-injected platform.
pub fn run_trial(n: usize, un: usize, rate: f64, base_seed: u64, t: u64) -> TrialOutcome {
    let planted = planted_for(n, un, (un / 4).max(1), base_seed ^ 0xFA, t);
    let instance = &planted.instance;

    let mut pool = WorkerPool::new();
    pool.hire_naive_crowd(NAIVE_POOL, planted.delta_n, 0.0);
    pool.hire_expert_panel(EXPERT_POOL, planted.delta_e, 0.0);

    let trial_seed = base_seed ^ (t.wrapping_mul(0x9E37) << 16) ^ (rate.to_bits() >> 12);
    let config = PlatformConfig::paper_default()
        .without_gold()
        .with_faults(fault_config(rate), trial_seed ^ 0xFA117)
        .with_retry(RetryPolicy::paper_default().with_max_retries(4))
        .with_expert_fallback(3);
    let platform = Platform::new(
        instance.clone(),
        pool,
        config,
        StdRng::seed_from_u64(trial_seed),
    );

    let mut oracle = PlatformOracle::new(platform);
    let mut rng = StdRng::seed_from_u64(trial_seed ^ 0x5eed);
    let result = try_expert_max_find(
        &mut oracle,
        &instance.ids(),
        &ExpertMaxConfig::new(un),
        &mut rng,
    );
    let platform = oracle.into_platform();

    TrialOutcome {
        found_max: result
            .as_ref()
            .map(|o| instance.max_value() - instance.value(o.winner) <= 2.0 * planted.delta_e)
            .unwrap_or(false),
        failed: result.is_err(),
        degraded: platform.degraded(),
        cost: platform.ledger().total(),
        faults: platform.fault_counts(),
        dead_letters: platform.dead_letters().len() as u64,
    }
}

/// One aggregated sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepRow {
    /// The injected fault rate.
    pub rate: f64,
    /// Fraction of trials whose winner met the `2·δe` criterion.
    pub recall: f64,
    /// Fraction of trials that aborted.
    pub failure_rate: f64,
    /// Fraction of trials flagged degraded.
    pub degraded_rate: f64,
    /// Trials that ran to completion (aborted runs spend only a fraction
    /// of the budget, so mixing them in would *understate* fault cost).
    pub completed: u64,
    /// Mean spend per completed trial; NaN when every trial aborted.
    pub avg_cost: f64,
    /// Summed fault tallies across the point's trials.
    pub faults: FaultCounts,
    /// Summed dead letters across the point's trials.
    pub dead_letters: u64,
}

/// Sweeps every rate in [`RATES`], `trials` trials per rate. Trials fan
/// out over the parallel engine; aggregation stays in `(rate, trial)`
/// order, so the rows are identical at any `--jobs` count.
pub fn sweep(n: usize, un: usize, trials: u64, base_seed: u64) -> Vec<SweepRow> {
    let items: Vec<(usize, u64)> = (0..RATES.len())
        .flat_map(|ri| (0..trials).map(move |t| (ri, t)))
        .collect();
    let outcomes = engine::parallel_map(items, |(ri, t)| run_trial(n, un, RATES[ri], base_seed, t));
    RATES
        .iter()
        .enumerate()
        .map(|(ri, &rate)| {
            let slice = &outcomes[ri * trials as usize..(ri + 1) * trials as usize];
            let mut faults = FaultCounts::zero();
            let mut dead_letters = 0;
            let mut cost = 0.0;
            let (mut found, mut failed, mut degraded) = (0u64, 0u64, 0u64);
            for o in slice {
                found += u64::from(o.found_max);
                failed += u64::from(o.failed);
                degraded += u64::from(o.degraded);
                if !o.failed {
                    cost += o.cost;
                }
                faults = faults + o.faults;
                dead_letters += o.dead_letters;
            }
            let completed = trials - failed;
            SweepRow {
                rate,
                recall: found as f64 / trials as f64,
                failure_rate: failed as f64 / trials as f64,
                degraded_rate: degraded as f64 / trials as f64,
                completed,
                avg_cost: cost / completed as f64,
                faults,
                dead_letters,
            }
        })
        .collect()
}

/// Runs the sweep at experiment scale.
pub fn run(scale: &Scale) -> Table {
    // Platform-driven runs submit one job per comparison; keep n modest so
    // the five-rate sweep stays in seconds.
    let n = (*scale.n_grid.first().unwrap_or(&300)).min(300);
    let un = (n / 50).max(3);
    let trials = scale.trials.max(2);
    let rows = sweep(n, un, trials, scale.seed ^ 0xFA0);
    let base_cost = rows[0].avg_cost.max(f64::MIN_POSITIVE);

    let mut t = Table::new(
        "fault_sweep",
        &format!(
            "Algorithm 1 under platform faults: recall and cost inflation vs fault rate \
             (n={n}, un={un}, {trials} trials, {NAIVE_POOL}+{EXPERT_POOL} workers)"
        ),
        &[
            "fault rate",
            "max recall",
            "cost inflation",
            "avg cost",
            "failure rate",
            "degraded rate",
            "dropouts",
            "no-answers",
            "timeouts",
            "retries",
            "dead letters",
        ],
    )
    .with_notes(
        "One rate drives dropout, no-answer, and timeout probabilities at \
         once. Retries (capped exponential backoff, fresh worker per \
         attempt) absorb moderate fault rates at a small cost premium; \
         past that, dead letters appear, runs abort, and recall decays. \
         The rate-0 row is byte-identical to a fault-free platform run.",
    );
    for row in &rows {
        let total = row.faults.naive + row.faults.expert;
        let (inflation, avg_cost) = if row.completed > 0 {
            (
                format!("{:.2}x", row.avg_cost / base_cost),
                fmt_f64(row.avg_cost, 1),
            )
        } else {
            ("n/a".to_string(), "n/a".to_string())
        };
        t.push_row(vec![
            fmt_f64(row.rate, 2),
            fmt_f64(row.recall, 2),
            inflation,
            avg_cost,
            fmt_f64(row.failure_rate, 2),
            fmt_f64(row.degraded_rate, 2),
            total.dropouts.to_string(),
            total.no_answers.to_string(),
            total.timeouts.to_string(),
            total.retries.to_string(),
            row.dead_letters.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_trials_are_fault_free_and_succeed() {
        let o = run_trial(150, 3, 0.0, 11, 0);
        assert!(o.found_max, "fault-free Algorithm 1 must meet Theorem 2");
        assert!(!o.failed && !o.degraded);
        assert_eq!(o.faults.total(), 0);
        assert_eq!(o.dead_letters, 0);
    }

    #[test]
    fn faulty_trials_record_recovery_work() {
        let mut retries = 0;
        for t in 0..3 {
            let o = run_trial(150, 3, 0.1, 12, t);
            retries += o.faults.naive.retries + o.faults.expert.retries;
        }
        assert!(retries > 0, "a 10% fault rate must trigger retries");
    }

    #[test]
    fn fault_config_solves_the_timeout_rate() {
        let fc = fault_config(0.2);
        match fc.latency {
            LatencyModel::Geometric { p, cap } => {
                let overrun = (1.0 - p).powi(TIMEOUT_STEPS as i32 + 1);
                assert!((overrun - 0.2).abs() < 1e-9, "{overrun}");
                assert!(cap > TIMEOUT_STEPS);
            }
            LatencyModel::Instant => panic!("nonzero rate needs a latency model"),
        }
        assert!(fault_config(0.0).is_none());
    }

    #[test]
    fn cost_inflation_shows_up_in_completed_runs() {
        // Recovered faults cost money: timed-out judgments are paid and
        // then paid for again on retry, so a completed run under faults
        // out-spends the fault-free baseline.
        let rows = sweep(120, 3, 3, 21);
        assert_eq!(rows[0].faults.total(), 0);
        assert_eq!(rows[0].completed, 3, "rate 0 must never abort");
        let faulty = rows[1..]
            .iter()
            .rev()
            .find(|r| r.completed > 0)
            .expect("some faulty rate should still complete runs");
        assert!(
            faulty.avg_cost > rows[0].avg_cost,
            "rate {}: {} vs {}",
            faulty.rate,
            faulty.avg_cost,
            rows[0].avg_cost
        );
    }

    #[test]
    fn table_shape() {
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), RATES.len());
        assert!(t.to_markdown().contains("cost inflation"));
    }
}
