//! # crowd-experiments
//!
//! The reproduction harness for the evaluation section of *"The Importance
//! of Being Expert"* (SIGMOD 2015): one module per table/figure, each
//! emitting a table shaped like the paper's so the two can be compared
//! side by side. See `EXPERIMENTS.md` at the repository root for the
//! paper-vs-measured record.
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Figure 2(a,b) — accuracy vs #workers | [`fig2`] |
//! | Figure 3(a,b) — accuracy vs n | [`fig3`] |
//! | Figure 4(a,b) — comparison counts | [`fig4`] |
//! | Figure 5(a–f) — average cost | [`fig5`] |
//! | Figure 6(a,b) — accuracy under mis-estimated un | [`fig6`] |
//! | Figure 7(a–f) — cost under mis-estimated un | [`fig7`] |
//! | Figure 9(a–f) — worst-case cost | [`fig9`] |
//! | Figure 10(a–f) — worst-case cost, mis-estimated un | [`fig10`] |
//! | Table 1 — DOTS final-round ranking | [`table1`] |
//! | Table 2 — CARS final-round ranking | [`table2`] |
//! | §5.2 text — phase-1 survival rates | [`phase1_survival`] |
//! | §4.3 lower bounds (Corollary 1, Lemma 7) | [`lower_bounds`] |
//! | §3 time model (logical/physical steps) | [`latency`] |
//! | Budget angle (Mo et al., related work) | [`budget_sweep`] |
//! | Sorting angle (Ajtai et al., related work) | [`ranking_quality`] |
//! | §5.3 — search-result evaluation | [`search_eval`] |
//! | Robustness angle — platform faults and recovery | [`fault_sweep`] |
//! | Robustness angle — crash/resume equivalence | [`chaos_sweep`] |
//!
//! Run everything with `cargo run --release -p crowd-experiments --bin
//! repro -- all` (add `--quick` for a smoke-scale pass).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod budget_sweep;
pub mod chaos_sweep;
pub mod engine;
pub mod fault_sweep;
pub mod fig10;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig9;
pub mod harness;
pub mod latency;
pub mod lower_bounds;
pub mod par_filter;
pub mod phase1_survival;
pub mod ranking_quality;
pub mod report;
pub mod runner;
pub mod scale;
pub mod search_eval;
pub mod serve_sweep;
pub mod serve_trace;
pub mod table1;
pub mod table2;

pub use par_filter::{group_seed, parallel_filter_candidates};
pub use report::Table;
pub use runner::{
    run_experiment, run_experiments, ManifestEntry, RunManifest, EXPERIMENT_NAMES,
    MANIFEST_VERSION, TEXT_EXPERIMENTS,
};
pub use scale::Scale;
