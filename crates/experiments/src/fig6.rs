//! Figure 6 — Algorithm 1's accuracy under mis-estimation of `un(n)`:
//! average true rank vs `n` for estimation factors
//! {0.2, 0.5, 0.8, 1, 1.2, 2}.
//!
//! Expected shape: overestimation (1.2×, 2×) does not hurt accuracy;
//! underestimation degrades it gradually — mild at 0.8×, visible at 0.5×,
//! clear at 0.2× — because the maximum can be evicted in Phase 1
//! (quantified separately by `phase1_survival`).

use crate::harness::{average_rank, Approach, ESTIMATION_FACTORS};
use crate::report::{fmt_f64, Table};
use crate::scale::Scale;

/// Runs one panel.
pub fn run_panel(scale: &Scale, un: usize, ue: usize, panel: char) -> Table {
    let headers: Vec<String> = std::iter::once("n".to_string())
        .chain(ESTIMATION_FACTORS.iter().map(|f| format!("factor {f}")))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        &format!("fig6{panel}"),
        &format!("Alg 1 average rank vs n under un-estimation factors, un={un}, ue={ue}"),
        &headers_ref,
    )
    .with_notes(
        "Expected: factors >= 1 match factor 1; underestimation degrades \
         accuracy (worst at 0.2).",
    );
    for &n in &scale.n_grid {
        let mut row = vec![n.to_string()];
        for &f in &ESTIMATION_FACTORS {
            let (rank, _) = average_rank(Approach::Alg1, n, un, ue, f, scale.trials, scale.seed);
            row.push(fmt_f64(rank, 2));
        }
        t.push_row(row);
    }
    t
}

/// Runs both panels.
pub fn run(scale: &Scale) -> Vec<Table> {
    crate::fig3::SETTINGS
        .iter()
        .zip(['a', 'b'])
        .map(|(&(un, ue), panel)| run_panel(scale, un, ue, panel))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overestimation_is_harmless_underestimation_hurts() {
        let scale = Scale::quick();
        let t = run_panel(&scale, 20, 5, 'a');
        for row in &t.rows {
            let f02: f64 = row[1].parse().unwrap();
            let f10: f64 = row[4].parse().unwrap();
            let f20: f64 = row[6].parse().unwrap();
            // Overestimation within noise of exact.
            assert!(
                (f20 - f10).abs() <= 2.0,
                "factor 2 ({f20}) should match factor 1 ({f10})"
            );
            // Severe underestimation should not be better than exact.
            assert!(
                f02 + 0.5 >= f10,
                "factor 0.2 ({f02}) should not beat factor 1 ({f10})"
            );
        }
    }

    #[test]
    fn run_emits_both_panels() {
        let tables = run(&Scale::quick());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].headers.len(), 1 + ESTIMATION_FACTORS.len());
    }
}
