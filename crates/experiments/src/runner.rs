//! Experiment registry and batch runner.
//!
//! Each entry regenerates one table/figure of the paper. The `repro`
//! binary is a thin CLI over [`run_experiments`].

use crate::engine;
use crate::report::Table;
use crate::scale::Scale;
use crowd_core::model::WorkerClass;
use crowd_core::oracle::ComparisonCounts;
use crowd_core::trace::{install_sink, FaultCounts, TallySink};
use crowd_obs::{class_label, names as metric_names, Event, MetricSample, Recorder, SampleValue};
use serde::Serialize;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Names of all registered experiments, in paper order.
pub const EXPERIMENT_NAMES: [&str; 11] = [
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig9",
    "fig10",
    "table1",
    "table2",
    "search_eval",
];

/// Extra experiment backing a claim made in the Section 5.2 text.
pub const TEXT_EXPERIMENTS: [&str; 8] = [
    "phase1_survival",
    "lower_bounds",
    "latency",
    "budget_sweep",
    "ranking_quality",
    "fault_sweep",
    "chaos_sweep",
    "serve_sweep",
];

/// Runs one experiment by name.
///
/// # Errors
///
/// Rejects an unknown name with [`io::ErrorKind::InvalidInput`]. (The
/// batch runner validates names up front, so through that path this is
/// unreachable — but a library caller probing names directly gets a
/// diagnosable error, not a panic.)
pub fn run_experiment(name: &str, scale: &Scale) -> io::Result<Vec<Table>> {
    Ok(match name {
        "fig2" => vec![crate::fig2::run_dots(scale), crate::fig2::run_cars(scale)],
        "fig3" => crate::fig3::run(scale),
        "fig4" => crate::fig4::run(scale),
        "fig5" => crate::fig5::run(scale),
        "fig6" => crate::fig6::run(scale),
        "fig7" => crate::fig7::run(scale),
        "fig9" => crate::fig9::run(scale),
        "fig10" => crate::fig10::run(scale),
        "table1" => vec![crate::table1::run(scale)],
        "table2" => vec![crate::table2::run(scale)],
        "search_eval" => vec![crate::search_eval::run(scale)],
        "phase1_survival" => vec![crate::phase1_survival::run(scale)],
        "lower_bounds" => vec![crate::lower_bounds::run(scale)],
        "latency" => vec![crate::latency::run(scale)],
        "budget_sweep" => vec![crate::budget_sweep::run(scale)],
        "ranking_quality" => vec![crate::ranking_quality::run(scale)],
        "fault_sweep" => vec![crate::fault_sweep::run(scale)],
        "chaos_sweep" => vec![crate::chaos_sweep::run(scale)],
        "serve_sweep" => vec![
            crate::serve_sweep::run(scale),
            crate::serve_sweep::run_overlap(scale),
        ],
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                "unknown experiment {other:?}; known: {EXPERIMENT_NAMES:?} + {TEXT_EXPERIMENTS:?}"
            ),
            ))
        }
    })
}

/// True if `name` is a registered experiment.
pub fn is_known(name: &str) -> bool {
    EXPERIMENT_NAMES.contains(&name) || TEXT_EXPERIMENTS.contains(&name)
}

/// The nominal worker pool used for the manifest's physical-step estimate:
/// the middle of the [`crate::latency`] sweep for the plentiful naïve
/// crowd, a tenth of that for the scarce experts (`δe ≪ δn` workers are
/// rare — that is the paper's premise).
pub const NOMINAL_NAIVE_POOL: usize = 50;
/// Nominal expert-pool size for the physical-step estimate.
pub const NOMINAL_EXPERT_POOL: usize = 5;

/// Physical-step estimate for a comparison tally under the nominal pools:
/// `⌈naive/50⌉ + ⌈expert/5⌉`. Infallible because both pools are nonzero
/// constants — an [`EmptyPool`](crowd_platform::ScheduleError) here would
/// be a bug in this module, not a runtime condition.
pub fn nominal_physical_steps(comparisons: &ComparisonCounts) -> u64 {
    let naive = crowd_platform::physical_steps(comparisons.naive, NOMINAL_NAIVE_POOL);
    let expert = crowd_platform::physical_steps(comparisons.expert, NOMINAL_EXPERT_POOL);
    match (naive, expert) {
        (Ok(n), Ok(e)) => n + e,
        _ => unreachable!("nominal pools are nonzero constants"),
    }
}

/// Sums every counter sample named `name` in a metrics snapshot, across
/// label sets (0 when the metric was never emitted).
fn counter_total(snapshot: &[MetricSample], name: &str) -> u64 {
    snapshot
        .iter()
        .filter(|s| s.name == name)
        .map(|s| match s.value {
            SampleValue::Counter { value } => value,
            _ => 0,
        })
        .sum()
}

/// One experiment's entry in the run manifest.
#[derive(Debug, Clone, Serialize)]
pub struct ManifestEntry {
    /// Experiment name (the registry key).
    pub name: String,
    /// Number of tables the experiment produced.
    pub tables: usize,
    /// Wall-clock time of the experiment, in nanoseconds.
    pub wall_nanos: u64,
    /// Worker-performed comparisons, by class.
    pub comparisons: ComparisonCounts,
    /// Physical-step estimate under the paper's `⌈m/w⌉` batch-latency rule
    /// (Section 3) with the nominal pools: naïve comparisons over
    /// [`NOMINAL_NAIVE_POOL`] workers plus expert comparisons over
    /// [`NOMINAL_EXPERT_POOL`].
    pub physical_steps_estimate: u64,
    /// Platform faults recorded while the experiment ran — dropouts,
    /// no-answers, timeouts, retries, dead letters — per worker class.
    /// All-zero for every experiment except the fault-injection sweeps.
    pub faults: FaultCounts,
    /// Write-ahead journal bytes made durable while the experiment ran
    /// (the [`crowd_journal_bytes_total`](metric_names::JOURNAL_BYTES)
    /// counter). Zero for every experiment that does not journal.
    pub journal_bytes: u64,
    /// Comparisons restored from journals during crash recovery instead
    /// of re-purchased (the
    /// [`crowd_replayed_comparisons_total`](metric_names::REPLAYED_COMPARISONS)
    /// counter). Nonzero only for the chaos sweep.
    pub replayed_comparisons: u64,
}

/// Schema version of [`RunManifest`]. Bump when the manifest layout
/// changes shape; [`run_experiments`] refuses to overwrite a manifest
/// written by a *newer* schema (see `write_manifest`), so an old binary
/// cannot silently clobber results it does not understand.
pub const MANIFEST_VERSION: u64 = 3;

/// The machine-readable record of one `repro` run, written as
/// `manifest.json` next to the CSVs.
#[derive(Debug, Clone, Serialize)]
pub struct RunManifest {
    /// Manifest schema version ([`MANIFEST_VERSION`]). Manifests predating
    /// the field are treated as version 1.
    pub version: u64,
    /// Worker threads the run was allowed to use.
    pub jobs: usize,
    /// Scale label: `"quick"` or `"full"` (matching [`Scale`]).
    pub scale: String,
    /// Per-experiment records, in run order.
    pub experiments: Vec<ManifestEntry>,
}

/// Runs the named experiments (all of them if `names` is empty) across
/// [`engine::jobs`] worker threads, writing markdown + CSV plus a
/// `manifest.json` run record into `out_dir` and returning the tables.
///
/// Each experiment seeds every RNG it uses from [`Scale`], so the tables
/// and CSVs are byte-identical at any job count; only the manifest's
/// wall-clock fields vary between runs.
///
/// # Errors
///
/// Rejects unknown experiment names with [`io::ErrorKind::InvalidInput`]
/// (before any experiment runs) and propagates filesystem errors from
/// report writing.
pub fn run_experiments(names: &[String], scale: &Scale, out_dir: &Path) -> io::Result<Vec<Table>> {
    let selected: Vec<&str> = if names.is_empty() {
        EXPERIMENT_NAMES
            .iter()
            .chain(TEXT_EXPERIMENTS.iter())
            .copied()
            .collect()
    } else {
        names.iter().map(String::as_str).collect()
    };
    if let Some(unknown) = selected.iter().find(|name| !is_known(name)) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "unknown experiment {unknown:?}; known: {EXPERIMENT_NAMES:?} + {TEXT_EXPERIMENTS:?}"
            ),
        ));
    }

    // One run-level recorder scopes the whole selection: each experiment's
    // events and metrics funnel into it (via `parallel_map`'s ordered
    // segment replay when running threaded), and the aggregate is written
    // out below next to `manifest.json`. Wall-clock never enters the
    // recorder — it lives only in the manifest's informational fields — so
    // the observability files stay byte-identical at any job count.
    let recorder = Arc::new(Recorder::new());
    let results = {
        let _obs_guard = crowd_obs::install_recorder(recorder.clone());
        engine::parallel_map(selected, |name| {
            eprintln!("running {name} ...");
            crowd_obs::emit(Event::RunStarted {
                name: name.to_string(),
            });
            let sink = Arc::new(TallySink::new());
            // A second, experiment-scoped recorder rides the thread-local
            // stack alongside the run-level one: every emission feeds both,
            // and this one's counter snapshot attributes journal/recovery
            // totals to the experiment that produced them.
            let experiment_rec = Arc::new(Recorder::new());
            let started = Instant::now();
            let tables = {
                let _guard = install_sink(sink.clone());
                let _rec_guard = crowd_obs::install_recorder(experiment_rec.clone());
                run_experiment(name, scale)?
            };
            let comparisons = sink.counts();
            let faults = sink.faults();
            let experiment_metrics = experiment_rec.metrics().snapshot();
            for (class, performed) in [
                (WorkerClass::Naive, comparisons.naive),
                (WorkerClass::Expert, comparisons.expert),
            ] {
                if performed > 0 {
                    crowd_obs::counter_add(
                        metric_names::COMPARISONS_TOTAL,
                        &[("class", class_label(class)), ("experiment", name)],
                        performed,
                    );
                }
            }
            crowd_obs::emit(Event::RunFinished {
                name: name.to_string(),
                comparisons_by_class: comparisons,
                faults: faults.total(),
            });
            let entry = ManifestEntry {
                name: name.to_string(),
                tables: tables.len(),
                wall_nanos: started.elapsed().as_nanos() as u64,
                comparisons,
                physical_steps_estimate: nominal_physical_steps(&comparisons),
                faults,
                journal_bytes: counter_total(&experiment_metrics, metric_names::JOURNAL_BYTES),
                replayed_comparisons: counter_total(
                    &experiment_metrics,
                    metric_names::REPLAYED_COMPARISONS,
                ),
            };
            io::Result::Ok((tables, entry))
        })
    };

    // Writes stay sequential and in selection order: output bytes must not
    // depend on which worker finished first.
    let mut all = Vec::new();
    let mut entries = Vec::new();
    for result in results {
        let (tables, entry) = result?;
        for table in tables {
            table.write_to(out_dir)?;
            all.push(table);
        }
        entries.push(entry);
    }
    write_summary(&all, out_dir)?;
    write_manifest(
        &RunManifest {
            version: MANIFEST_VERSION,
            jobs: engine::jobs(),
            scale: scale.label().to_string(),
            experiments: entries,
        },
        out_dir,
    )?;
    write_observability(&recorder, out_dir)?;
    Ok(all)
}

/// Writes `<dir>/manifest.json`.
///
/// Refuses ([`io::ErrorKind::InvalidData`]) to overwrite an existing
/// manifest whose `version` field exceeds [`MANIFEST_VERSION`]: a newer
/// schema may record things this writer would silently drop. A manifest
/// without a `version` field predates the field and counts as version 1;
/// an unparsable file is not a manifest and is overwritten.
fn write_manifest(manifest: &RunManifest, out_dir: &Path) -> io::Result<()> {
    let path = out_dir.join("manifest.json");
    if let Ok(existing) = std::fs::read_to_string(&path) {
        let existing_version = serde_json::from_str_value(&existing)
            .ok()
            .map_or(1, |value| {
                serde::field::<u64>(&value, "version").unwrap_or(1)
            });
        if existing_version > manifest.version {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "refusing to overwrite {}: it has manifest version \
                     {existing_version}, newer than this writer's {}",
                    path.display(),
                    manifest.version,
                ),
            ));
        }
    }
    let json = serde_json::to_string_pretty(manifest)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::create_dir_all(out_dir)?;
    std::fs::write(path, json + "\n")
}

/// Writes the run's observability artifacts next to the manifest:
/// `events.jsonl` (the structured event log), `spans.jsonl` (the causal
/// span log — analyze it with the `serve_trace` binary), `metrics.prom`
/// (Prometheus text exposition), and `metrics.json` (its JSON twin). All
/// four are wall-clock-free and byte-identical at any `--jobs` count.
fn write_observability(recorder: &Recorder, out_dir: &Path) -> io::Result<()> {
    let snapshot = recorder.metrics().snapshot();
    std::fs::create_dir_all(out_dir)?;
    std::fs::write(out_dir.join("events.jsonl"), recorder.log().to_jsonl())?;
    std::fs::write(out_dir.join("spans.jsonl"), recorder.span_log().to_jsonl())?;
    std::fs::write(
        out_dir.join("metrics.prom"),
        crowd_obs::render_prometheus(&snapshot),
    )?;
    std::fs::write(
        out_dir.join("metrics.json"),
        crowd_obs::render_json(&snapshot),
    )
}

/// Writes `<dir>/SUMMARY.md`: every produced table in one document, in run
/// order — the single file to diff against the paper.
fn write_summary(tables: &[Table], out_dir: &Path) -> io::Result<()> {
    use std::fmt::Write as _;
    let mut doc = String::from(
        "# Reproduction summary\n\nAll tables produced by this run, in paper order. \
         See EXPERIMENTS.md for the paper-vs-measured analysis.\n\n",
    );
    for t in tables {
        let _ = writeln!(doc, "{}", t.to_markdown());
    }
    std::fs::create_dir_all(out_dir)?;
    std::fs::write(out_dir.join("SUMMARY.md"), doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_registered_names_are_known() {
        for n in EXPERIMENT_NAMES.iter().chain(TEXT_EXPERIMENTS.iter()) {
            assert!(is_known(n));
        }
        assert!(!is_known("fig42"));
    }

    #[test]
    fn unknown_name_is_rejected_by_the_single_runner() {
        let err = run_experiment("fig42", &Scale::quick()).expect_err("fig42 is not registered");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("fig42"), "{err}");
    }

    #[test]
    fn run_experiments_writes_files_and_manifest() {
        let dir = std::env::temp_dir().join(format!("crowd_runner_test_{}", std::process::id()));
        let tables = run_experiments(&["table1".to_string()], &Scale::quick(), &dir)
            .expect("table1 runs and writes");
        assert_eq!(tables.len(), 1);
        assert!(dir.join("table1.md").exists());
        assert!(dir.join("table1.csv").exists());

        let manifest =
            std::fs::read_to_string(dir.join("manifest.json")).expect("manifest written");
        let parsed = serde_json::from_str_value(&manifest).expect("manifest is valid JSON");
        let experiments: Vec<serde::Value> =
            serde::field(&parsed, "experiments").expect("experiments array");
        assert_eq!(experiments.len(), 1);
        let name: String = serde::field(&experiments[0], "name").expect("name field");
        assert_eq!(name, "table1");
        let comparisons: serde::Value =
            serde::field(&experiments[0], "comparisons").expect("comparisons field");
        let naive: u64 = serde::field(&comparisons, "naive").expect("naive field");
        assert!(naive > 0, "table1 must perform naive comparisons");
        let steps: u64 = serde::field(&experiments[0], "physical_steps_estimate")
            .expect("physical_steps_estimate field");
        assert!(steps > 0);
        let journal_bytes: u64 =
            serde::field(&experiments[0], "journal_bytes").expect("journal_bytes field");
        assert_eq!(journal_bytes, 0, "table1 does not journal");
        let replayed: u64 = serde::field(&experiments[0], "replayed_comparisons")
            .expect("replayed_comparisons field");
        assert_eq!(replayed, 0, "table1 does not recover");
        let scale: String = serde::field(&parsed, "scale").expect("scale field");
        assert_eq!(scale, "quick");
        let version: u64 = serde::field(&parsed, "version").expect("version field");
        assert_eq!(version, MANIFEST_VERSION);

        // The observability artifacts land next to the manifest, and the
        // event log brackets the run with RunStarted/RunFinished.
        let events =
            std::fs::read_to_string(dir.join("events.jsonl")).expect("events.jsonl written");
        assert!(events.contains("RunStarted"), "{events}");
        assert!(events.contains("RunFinished"), "{events}");
        assert!(
            dir.join("spans.jsonl").exists(),
            "the span log lands next to the event log (empty here: table1 \
             completes no serve jobs)"
        );
        let prom = std::fs::read_to_string(dir.join("metrics.prom")).expect("metrics.prom written");
        assert!(
            prom.contains(metric_names::COMPARISONS_TOTAL),
            "comparisons counter expected in exposition: {prom}"
        );
        assert!(dir.join("metrics.json").exists());

        std::fs::remove_dir_all(&dir).expect("test dir removable");
    }

    #[test]
    fn manifest_with_newer_version_is_not_overwritten() {
        let dir = std::env::temp_dir().join(format!("crowd_runner_newer_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("test dir creatable");
        let newer = format!("{{\"version\": {}}}\n", MANIFEST_VERSION + 1);
        std::fs::write(dir.join("manifest.json"), &newer).expect("seed manifest written");

        let err = run_experiments(&["table1".to_string()], &Scale::quick(), &dir)
            .expect_err("a newer manifest must not be clobbered");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("newer"), "{err}");
        let untouched =
            std::fs::read_to_string(dir.join("manifest.json")).expect("manifest still present");
        assert_eq!(untouched, newer, "the newer manifest must be untouched");

        // A same-or-older manifest (including the pre-version schema, which
        // counts as version 1) is overwritten normally.
        std::fs::write(dir.join("manifest.json"), "{\"jobs\": 1}\n").expect("seed v1 manifest");
        run_experiments(&["table1".to_string()], &Scale::quick(), &dir)
            .expect("version-1 manifests are fair game");
        let rewritten =
            std::fs::read_to_string(dir.join("manifest.json")).expect("manifest rewritten");
        assert!(rewritten.contains("\"version\""), "{rewritten}");

        std::fs::remove_dir_all(&dir).expect("test dir removable");
    }

    #[test]
    fn unknown_name_is_an_error_not_a_panic() {
        let dir = std::env::temp_dir().join(format!("crowd_runner_unknown_{}", std::process::id()));
        let err = run_experiments(&["fig42".to_string()], &Scale::quick(), &dir)
            .expect_err("unknown names must be rejected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("fig42"), "{err}");
        assert!(!dir.exists(), "nothing may be written for a rejected run");
    }

    #[test]
    fn counter_total_sums_across_label_sets_and_skips_other_metrics() {
        use crowd_obs::MetricsRegistry;
        let registry = MetricsRegistry::new();
        registry.counter_add(metric_names::JOURNAL_BYTES, &[], 10);
        registry.counter_add(metric_names::JOURNAL_BYTES, &[("experiment", "x")], 5);
        registry.counter_add(metric_names::REPLAYED_COMPARISONS, &[], 7);
        let snapshot = registry.snapshot();
        assert_eq!(counter_total(&snapshot, metric_names::JOURNAL_BYTES), 15);
        assert_eq!(
            counter_total(&snapshot, metric_names::REPLAYED_COMPARISONS),
            7
        );
        assert_eq!(counter_total(&snapshot, "crowd_absent_total"), 0);
    }

    #[test]
    fn nominal_physical_steps_follows_the_ceil_rule() {
        let counts = ComparisonCounts {
            naive: 101,
            expert: 11,
        };
        // ⌈101/50⌉ + ⌈11/5⌉ = 3 + 3.
        assert_eq!(nominal_physical_steps(&counts), 6);
        assert_eq!(nominal_physical_steps(&ComparisonCounts::default()), 0);
    }
}
