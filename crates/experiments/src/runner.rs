//! Experiment registry and batch runner.
//!
//! Each entry regenerates one table/figure of the paper. The `repro`
//! binary is a thin CLI over [`run_experiments`].

use crate::report::Table;
use crate::scale::Scale;
use std::io;
use std::path::Path;

/// Names of all registered experiments, in paper order.
pub const EXPERIMENT_NAMES: [&str; 11] = [
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig9",
    "fig10",
    "table1",
    "table2",
    "search_eval",
];

/// Extra experiment backing a claim made in the Section 5.2 text.
pub const TEXT_EXPERIMENTS: [&str; 5] = [
    "phase1_survival",
    "lower_bounds",
    "latency",
    "budget_sweep",
    "ranking_quality",
];

/// Runs one experiment by name.
///
/// # Panics
///
/// Panics on an unknown name (the CLI validates names first).
pub fn run_experiment(name: &str, scale: &Scale) -> Vec<Table> {
    match name {
        "fig2" => vec![crate::fig2::run_dots(scale), crate::fig2::run_cars(scale)],
        "fig3" => crate::fig3::run(scale),
        "fig4" => crate::fig4::run(scale),
        "fig5" => crate::fig5::run(scale),
        "fig6" => crate::fig6::run(scale),
        "fig7" => crate::fig7::run(scale),
        "fig9" => crate::fig9::run(scale),
        "fig10" => crate::fig10::run(scale),
        "table1" => vec![crate::table1::run(scale)],
        "table2" => vec![crate::table2::run(scale)],
        "search_eval" => vec![crate::search_eval::run(scale)],
        "phase1_survival" => vec![crate::phase1_survival::run(scale)],
        "lower_bounds" => vec![crate::lower_bounds::run(scale)],
        "latency" => vec![crate::latency::run(scale)],
        "budget_sweep" => vec![crate::budget_sweep::run(scale)],
        "ranking_quality" => vec![crate::ranking_quality::run(scale)],
        other => panic!(
            "unknown experiment {other:?}; known: {EXPERIMENT_NAMES:?} + {TEXT_EXPERIMENTS:?}"
        ),
    }
}

/// True if `name` is a registered experiment.
pub fn is_known(name: &str) -> bool {
    EXPERIMENT_NAMES.contains(&name) || TEXT_EXPERIMENTS.contains(&name)
}

/// Runs the named experiments (all of them if `names` is empty), writing
/// markdown + CSV into `out_dir` and returning the tables.
///
/// # Errors
///
/// Propagates filesystem errors from report writing.
pub fn run_experiments(names: &[String], scale: &Scale, out_dir: &Path) -> io::Result<Vec<Table>> {
    let selected: Vec<&str> = if names.is_empty() {
        EXPERIMENT_NAMES
            .iter()
            .chain(TEXT_EXPERIMENTS.iter())
            .copied()
            .collect()
    } else {
        names.iter().map(String::as_str).collect()
    };
    let mut all = Vec::new();
    for name in selected {
        assert!(is_known(name), "unknown experiment {name:?}");
        eprintln!("running {name} ...");
        for table in run_experiment(name, scale) {
            table.write_to(out_dir)?;
            all.push(table);
        }
    }
    write_summary(&all, out_dir)?;
    Ok(all)
}

/// Writes `<dir>/SUMMARY.md`: every produced table in one document, in run
/// order — the single file to diff against the paper.
fn write_summary(tables: &[Table], out_dir: &Path) -> io::Result<()> {
    use std::fmt::Write as _;
    let mut doc = String::from(
        "# Reproduction summary\n\nAll tables produced by this run, in paper order. \
         See EXPERIMENTS.md for the paper-vs-measured analysis.\n\n",
    );
    for t in tables {
        let _ = write!(doc, "{}\n", t.to_markdown());
    }
    std::fs::create_dir_all(out_dir)?;
    std::fs::write(out_dir.join("SUMMARY.md"), doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_registered_names_are_known() {
        for n in EXPERIMENT_NAMES.iter().chain(TEXT_EXPERIMENTS.iter()) {
            assert!(is_known(n));
        }
        assert!(!is_known("fig42"));
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_name_panics() {
        run_experiment("fig42", &Scale::quick());
    }

    #[test]
    fn run_experiments_writes_files() {
        let dir = std::env::temp_dir().join(format!("crowd_runner_test_{}", std::process::id()));
        let tables = run_experiments(&["table1".to_string()], &Scale::quick(), &dir).unwrap();
        assert_eq!(tables.len(), 1);
        assert!(dir.join("table1.md").exists());
        assert!(dir.join("table1.csv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
