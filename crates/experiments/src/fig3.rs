//! Figure 3 — accuracy (average true rank of the returned element) as a
//! function of `n`, for the three approaches, at
//! `(un, ue) ∈ {(10, 5), (50, 10)}`.
//!
//! Expected shape: 2-MaxFind-expert is best (rank ≈ 1–2), Algorithm 1
//! follows closely, and 2-MaxFind-naïve is clearly worse — and degrades as
//! `un(n)` grows (panel b much worse than panel a).

use crate::harness::{average_rank, Approach};
use crate::report::{fmt_f64, Table};
use crate::scale::Scale;

/// The two `(un, ue)` settings of the paper's panels.
pub const SETTINGS: [(usize, usize); 2] = [(10, 5), (50, 10)];

/// Runs one panel.
pub fn run_panel(scale: &Scale, un: usize, ue: usize, panel: char) -> Table {
    let mut t = Table::new(
        &format!("fig3{panel}"),
        &format!("Average true rank of returned element, un={un}, ue={ue}"),
        &["n", "2-MaxFind-expert", "Alg 1", "2-MaxFind-naive"],
    )
    .with_notes(
        "Rank 1 = the true maximum. Expected: expert best, Alg 1 close \
         behind, naive clearly worse (and worse for larger un).",
    );
    for &n in &scale.n_grid {
        let mut row = vec![n.to_string()];
        for approach in Approach::ALL {
            let (rank, _) = average_rank(approach, n, un, ue, 1.0, scale.trials, scale.seed);
            row.push(fmt_f64(rank, 2));
        }
        t.push_row(row);
    }
    t
}

/// Runs both panels.
pub fn run(scale: &Scale) -> Vec<Table> {
    SETTINGS
        .iter()
        .zip(['a', 'b'])
        .map(|(&(un, ue), panel)| run_panel(scale, un, ue, panel))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_shape_and_ordering() {
        let scale = Scale::quick();
        let t = run_panel(&scale, 10, 5, 'a');
        assert_eq!(t.rows.len(), scale.n_grid.len());
        for row in &t.rows {
            let expert: f64 = row[1].parse().unwrap();
            let alg1: f64 = row[2].parse().unwrap();
            let naive: f64 = row[3].parse().unwrap();
            // The paper's headline ordering, with slack for quick-scale noise.
            assert!(expert <= alg1 + 2.0, "expert {expert} vs alg1 {alg1}");
            assert!(alg1 <= naive + 1.0, "alg1 {alg1} vs naive {naive}");
        }
    }

    #[test]
    fn run_emits_both_panels() {
        let tables = run(&Scale::quick());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].id, "fig3a");
        assert_eq!(tables[1].id, "fig3b");
    }
}
