//! Table 1 — the DOTS CrowdFlower experiment (Section 5.3).
//!
//! Protocol: downsample 50 dot images; run Algorithm 1 with `un = 5`;
//! naïve comparisons come from the calibrated DOTS crowd, with each unit
//! aggregating 5 independent judgments (CrowdFlower collects several
//! judgments per unit and reports the aggregate); *experts are simulated*
//! by the majority of 7 such units (exactly the paper's construction,
//! since CrowdFlower offers no experts). Report the true ranks of the
//! final-round ranking.
//!
//! Expected result: the second phase receives ≈ 9 elements which are the
//! true top elements, and the simulated experts rank them (nearly)
//! perfectly — on DOTS, wisdom of crowds *can* substitute for expertise.
//! The paper's two runs produced the exact top-9, with one adjacent swap
//! in one run.
//!
//! The paper also repeats naïve-only 2-MaxFind 14 times: "in all but one
//! case the correct instance was returned" (13/14).

use crate::report::Table;
use crate::scale::Scale;
use crowd_core::algorithms::{filter_candidates, two_max_find_naive, FilterConfig};
use crowd_core::element::Instance;
use crowd_core::model::{ProbabilisticModel, WorkerClass};
use crowd_core::oracle::{ComparisonOracle, MajorityOracle, ModelOracle, SimulatedExpertOracle};
use crowd_core::tournament::Tournament;
use crowd_datasets::dots::{DotsDataset, DotsWorkerModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One experiment run: the final-round ranking as true ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinalRound {
    /// Size of the candidate set entering the second phase.
    pub candidates: usize,
    /// True rank of each element of the final tournament ranking, best
    /// first (paper Table 1 reports these columns).
    pub true_ranks: Vec<usize>,
    /// True rank of the winner.
    pub winner_rank: usize,
}

/// Runs one two-phase experiment over `instance` with naïve workers from
/// `model`-like DOTS crowds and simulated experts (majority of 7).
pub fn run_two_phase_dots(instance: &Instance, un: usize, seed: u64) -> FinalRound {
    let oracle = ModelOracle::new(
        instance.clone(),
        DotsWorkerModel::calibrated(),
        // The expert slot is never exercised directly: the decorator
        // translates expert queries into naïve majorities.
        ProbabilisticModel::perfect(),
        StdRng::seed_from_u64(seed),
    );
    // Platform-style aggregation: every logical comparison is a unit
    // collecting 5 judgments; simulated experts take the majority of 7
    // such units.
    let oracle = MajorityOracle::new(oracle, 5, 1);
    let mut oracle = SimulatedExpertOracle::paper_default(oracle);

    let phase1 = filter_candidates(&mut oracle, &instance.ids(), &FilterConfig::new(un));
    // The candidate set is tiny (<= 2·un - 1), so the last round is a full
    // all-play-all among the candidates — this is what lets the paper rank
    // *all* second-phase elements in Tables 1 and 2.
    let last_round = Tournament::all_play_all(&mut oracle, WorkerClass::Expert, &phase1.survivors);
    let ranking = last_round.ranking();
    FinalRound {
        candidates: phase1.survivors.len(),
        true_ranks: ranking.iter().map(|&(e, _)| instance.rank(e)).collect(),
        winner_rank: instance.rank(ranking[0].0),
    }
}

/// Success count of repeated naïve-only 2-MaxFind (the paper's 14 runs).
pub fn naive_only_successes(instance: &Instance, repetitions: u64, seed: u64) -> u64 {
    (0..repetitions)
        .filter(|&r| {
            let inner = ModelOracle::new(
                instance.clone(),
                DotsWorkerModel::calibrated(),
                ProbabilisticModel::perfect(),
                StdRng::seed_from_u64(seed ^ (r << 16) ^ 0xd07),
            );
            let mut oracle = MajorityOracle::new(inner, 5, 1);
            let out = two_max_find_naive(&mut oracle, &instance.ids());
            let _ = oracle.counts();
            instance.rank(out.winner) == 1
        })
        .count() as u64
}

/// Runs the Table 1 reproduction: two independent experiments (as in the
/// paper) plus the 14-run naïve-only tally.
pub fn run(scale: &Scale) -> Table {
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x71);
    let dataset = DotsDataset::paper_grid().downsample(50, &mut rng);
    let instance = dataset.to_instance();

    let exp1 = run_two_phase_dots(&instance, 5, scale.seed ^ 0x711);
    let exp2 = run_two_phase_dots(&instance, 5, scale.seed ^ 0x712);
    let naive_ok = naive_only_successes(&instance, scale.repetitions, scale.seed);

    let depth = exp1.true_ranks.len().max(exp2.true_ranks.len());
    let mut t = Table::new(
        "table1",
        "DOTS: true ranks of the final-round ranking (two experiments)",
        &[
            "final-round position",
            "Exp. 1 true rank",
            "Exp. 2 true rank",
        ],
    )
    .with_notes(&format!(
        "un = 5, n = 50; experts simulated by majority of 7 naive votes. \
         Expected: candidate sets of <= 9 true-top elements, ranked almost \
         perfectly. Candidates: exp1 = {}, exp2 = {}. Naive-only 2-MaxFind \
         found the true best in {}/{} runs (paper: 13/14).",
        exp1.candidates, exp2.candidates, naive_ok, scale.repetitions
    ));
    for i in 0..depth {
        t.push_row(vec![
            (i + 1).to_string(),
            exp1.true_ranks
                .get(i)
                .map_or("-".into(), ToString::to_string),
            exp2.true_ranks
                .get(i)
                .map_or("-".into(), ToString::to_string),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dots_instance(seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        DotsDataset::paper_grid()
            .downsample(50, &mut rng)
            .to_instance()
    }

    #[test]
    fn simulated_experts_find_the_sparsest_image() {
        let instance = dots_instance(1);
        let out = run_two_phase_dots(&instance, 5, 2);
        assert_eq!(
            out.winner_rank, 1,
            "DOTS simulated experts should find the max"
        );
        assert!(out.candidates <= 9, "Lemma 3: |S| <= 2·5 - 1");
    }

    #[test]
    fn final_round_contains_true_top_elements() {
        let instance = dots_instance(3);
        let out = run_two_phase_dots(&instance, 5, 4);
        // The final-round elements should all be genuinely high-ranked.
        for &rank in &out.true_ranks {
            assert!(
                rank <= 12,
                "an element of true rank {rank} reached the final round"
            );
        }
    }

    #[test]
    fn naive_only_succeeds_most_of_the_time() {
        let instance = dots_instance(5);
        let ok = naive_only_successes(&instance, 8, 6);
        assert!(
            ok >= 6,
            "naive 2-MaxFind on DOTS should almost always succeed: {ok}/8"
        );
    }

    #[test]
    fn table_renders_with_two_experiments() {
        let t = run(&Scale::quick());
        assert_eq!(t.headers.len(), 3);
        assert!(!t.rows.is_empty());
        assert!(t.notes.contains("Candidates"));
    }
}
