//! Ranking quality under imprecise comparisons — the sorting side of the
//! related work (Ajtai et al.), measured with the displacement metrics.
//!
//! Sweeps the naïve threshold `δn` and reports, for a naïve near-sort and
//! for the two-phase expert ranking:
//!
//! * maximum displacement (how far any element lands from its true rank);
//! * Spearman's footrule (total displacement);
//! * displacement *within the top prefix* — the part a selection task
//!   actually consumes.
//!
//! Expected shape: naïve displacement grows with `δn` (locally scrambled
//! bands); the expert prefix stays pinned near zero at every `δn`, at a
//! tiny expert surcharge — ranking's version of the paper's division of
//! labour.

use crate::report::{fmt_f64, Table};
use crate::scale::Scale;
use crowd_core::algorithms::{
    expert_rank, footrule, max_displacement, near_sort, ExpertRankConfig,
};
use crowd_core::element::{ElementId, Instance};
use crowd_core::model::{ExpertModel, TiePolicy, WorkerClass};
use crowd_core::oracle::{MemoOracle, SimulatedOracle};
use crowd_core::stats::RunningStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Thresholds to sweep, as fractions of the value range.
pub const DELTA_FRACTIONS: [f64; 4] = [0.001, 0.005, 0.02, 0.05];

const RANGE: f64 = 1_000_000.0;

fn uniform_instance(n: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    Instance::new((0..n).map(|_| rng.gen_range(0.0..RANGE)).collect())
}

/// Displacement of the top `prefix` positions of an order.
///
/// # Panics
///
/// Panics if `order` contains an element that is not part of `instance` —
/// displacement is only defined for (prefixes of) permutations of it.
pub fn prefix_displacement(instance: &Instance, order: &[ElementId], prefix: usize) -> usize {
    let true_order = instance.ids_by_rank();
    order[..prefix.min(order.len())]
        .iter()
        .enumerate()
        .map(|(pos, &e)| {
            let true_pos = true_order
                .iter()
                .position(|&t| t == e)
                .expect("permutation");
            true_pos.abs_diff(pos)
        })
        .max()
        .unwrap_or(0)
}

/// One sweep point: average metrics over trials.
pub struct RankingPoint {
    /// Fraction of the range used as `δn`.
    pub delta_fraction: f64,
    /// Naïve near-sort maximum displacement.
    pub naive_max_disp: f64,
    /// Naïve near-sort footrule.
    pub naive_footrule: f64,
    /// Two-phase expert-prefix displacement.
    pub expert_prefix_disp: f64,
    /// Expert comparisons paid by the two-phase ranking.
    pub expert_comparisons: f64,
}

/// Measures one `δn` fraction.
pub fn measure(n: usize, delta_fraction: f64, trials: u64, seed: u64) -> RankingPoint {
    let prefix = 15;
    let mut naive_max = RunningStats::new();
    let mut naive_foot = RunningStats::new();
    let mut expert_disp = RunningStats::new();
    let mut expert_cost = RunningStats::new();
    for t in 0..trials {
        let inst = uniform_instance(n, seed ^ (t << 12));
        let delta_n = delta_fraction * RANGE;
        let model = ExpertModel::exact(delta_n, 1.0, TiePolicy::Persistent);

        let inner =
            SimulatedOracle::new(inst.clone(), model.clone(), StdRng::seed_from_u64(seed + t));
        let mut oracle = MemoOracle::new(inner);
        let naive = near_sort(&mut oracle, WorkerClass::Naive, &inst.ids());
        naive_max.push(max_displacement(&inst, &naive.order) as f64);
        naive_foot.push(footrule(&inst, &naive.order) as f64);

        let inner = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed + t));
        let mut oracle = MemoOracle::new(inner);
        let two = expert_rank(
            &mut oracle,
            &inst.ids(),
            &ExpertRankConfig {
                expert_prefix: prefix,
            },
        );
        expert_disp.push(prefix_displacement(&inst, &two.order, prefix) as f64);
        expert_cost.push(two.comparisons.expert as f64);
    }
    RankingPoint {
        delta_fraction,
        naive_max_disp: naive_max.mean(),
        naive_footrule: naive_foot.mean(),
        expert_prefix_disp: expert_disp.mean(),
        expert_comparisons: expert_cost.mean(),
    }
}

/// Runs the sweep.
pub fn run(scale: &Scale) -> Table {
    let n = 400;
    let trials = scale.trials.max(4);
    let mut t = Table::new(
        "ranking_quality",
        &format!("Near-sort displacement vs δn (n={n}, expert prefix = 15)"),
        &[
            "δn / range",
            "naive max displacement",
            "naive footrule",
            "expert-prefix displacement",
            "expert comparisons",
        ],
    )
    .with_notes(
        "Naive displacement grows with δn; the expert-refined top-15 stays \
         near its true order at a tiny expert surcharge.",
    );
    for &f in &DELTA_FRACTIONS {
        let p = measure(n, f, trials, scale.seed ^ 0x5a);
        t.push_row(vec![
            format!("{f}"),
            fmt_f64(p.naive_max_disp, 1),
            fmt_f64(p.naive_footrule, 1),
            fmt_f64(p.expert_prefix_disp, 1),
            fmt_f64(p.expert_comparisons, 1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_displacement_grows_with_delta() {
        let fine = measure(300, 0.001, 4, 1);
        let coarse = measure(300, 0.05, 4, 1);
        assert!(
            coarse.naive_max_disp > fine.naive_max_disp,
            "coarser workers should scramble more: {} vs {}",
            coarse.naive_max_disp,
            fine.naive_max_disp
        );
    }

    #[test]
    fn expert_prefix_stays_accurate() {
        let coarse = measure(300, 0.05, 4, 2);
        assert!(
            coarse.expert_prefix_disp < coarse.naive_max_disp,
            "the expert prefix ({}) should beat the naive sort ({})",
            coarse.expert_prefix_disp,
            coarse.naive_max_disp
        );
        assert!(
            coarse.expert_comparisons < 150.0,
            "experts only see the prefix"
        );
    }

    #[test]
    fn prefix_displacement_of_perfect_order_is_zero() {
        let inst = uniform_instance(50, 3);
        let order = inst.ids_by_rank();
        assert_eq!(prefix_displacement(&inst, &order, 10), 0);
    }

    #[test]
    fn table_shape() {
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), DELTA_FRACTIONS.len());
    }
}
