//! Section 4.3 — empirical demonstration of the lower bounds.
//!
//! Corollary 1: any naïve-only algorithm returning a set guaranteed to
//! contain the maximum (with `|S| <= n/2`) must perform at least
//! `n·un(n)/4` comparisons, because (Lemma 7) an element that took part in
//! fewer than `un(n)` comparisons can always still be the maximum under
//! *some* value assignment consistent with the answers.
//!
//! This experiment runs Algorithm 2 on the Lemma 7 gadget instance and
//! verifies the premises empirically:
//!
//! 1. measured phase-1 comparisons sit between the `n·un/4` lower bound
//!    and the `4·n·un` upper bound;
//! 2. every element the filter *excluded* took part in at least `un(n)`
//!    comparisons (the algorithm cannot legally rule out an element it
//!    barely looked at) — checked with a participation-counting oracle.

use crate::report::Table;
use crate::scale::Scale;
use crowd_core::algorithms::{filter_candidates, FilterConfig};
use crowd_core::bounds;
use crowd_core::element::ElementId;
use crowd_core::model::{ExpertModel, TiePolicy, WorkerClass};
use crowd_core::oracle::{ComparisonCounts, ComparisonOracle, SimulatedOracle};
use crowd_datasets::lemma7_instance;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Decorator counting, per element, the number of comparisons it took
/// part in.
pub struct ParticipationOracle<O> {
    inner: O,
    participation: HashMap<ElementId, u64>,
}

impl<O: ComparisonOracle> ParticipationOracle<O> {
    /// Wraps `inner`.
    pub fn new(inner: O) -> Self {
        ParticipationOracle {
            inner,
            participation: HashMap::new(),
        }
    }

    /// Comparisons element `e` took part in.
    pub fn participation_of(&self, e: ElementId) -> u64 {
        self.participation.get(&e).copied().unwrap_or(0)
    }
}

impl<O: ComparisonOracle> ComparisonOracle for ParticipationOracle<O> {
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
        *self.participation.entry(k).or_insert(0) += 1;
        *self.participation.entry(j).or_insert(0) += 1;
        self.inner.compare(class, k, j)
    }

    fn counts(&self) -> ComparisonCounts {
        self.inner.counts()
    }
}

/// One measurement row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerBoundRow {
    /// Instance size.
    pub n: usize,
    /// The gadget's `un(n)`.
    pub un: usize,
    /// Corollary 1 lower bound `n·un/4`.
    pub lower: u64,
    /// Measured phase-1 comparisons.
    pub measured: u64,
    /// Lemma 3 upper bound `4·n·un`.
    pub upper: u64,
    /// Minimum participation among *excluded* elements.
    pub min_excluded_participation: u64,
    /// Whether the maximum survived (it must).
    pub max_survived: bool,
}

/// Runs the demonstration on the Lemma 7 gadget at one size.
pub fn measure(n: usize, un: usize, seed: u64) -> LowerBoundRow {
    let delta_n = 100.0;
    let instance = lemma7_instance(n, un, delta_n);
    let model = ExpertModel::exact(delta_n, 1.0, TiePolicy::UniformRandom);
    let inner = SimulatedOracle::new(instance.clone(), model, StdRng::seed_from_u64(seed));
    let mut oracle = ParticipationOracle::new(inner);
    let out = filter_candidates(&mut oracle, &instance.ids(), &FilterConfig::new(un));

    let excluded: Vec<ElementId> = instance
        .ids()
        .into_iter()
        .filter(|e| !out.survivors.contains(e))
        .collect();
    let min_excluded_participation = excluded
        .iter()
        .map(|&e| oracle.participation_of(e))
        .min()
        .unwrap_or(0);

    LowerBoundRow {
        n,
        un,
        lower: bounds::phase1_lower_bound(n, un),
        measured: out.comparisons.naive,
        upper: bounds::phase1_upper_bound(n, un),
        min_excluded_participation,
        max_survived: out.survivors.contains(&instance.max_element()),
    }
}

/// Runs the sweep and renders the table.
pub fn run(scale: &Scale) -> Table {
    let mut t = Table::new(
        "lower_bounds",
        "Corollary 1 demonstration on the Lemma 7 gadget",
        &[
            "n",
            "un",
            "lower bound n*un/4",
            "measured naive comparisons",
            "upper bound 4*n*un",
            "min participation of excluded",
            "max survived",
        ],
    )
    .with_notes(
        "Measured comparisons must sit between the Corollary 1 lower bound \
         and the Lemma 3 upper bound, and every excluded element must have \
         taken part in at least un comparisons (Lemma 7: otherwise it could \
         still be the maximum).",
    );
    for &n in &scale.n_grid {
        let un = (n / 40).max(2);
        let row = measure(n, un, scale.seed);
        t.push_row(vec![
            row.n.to_string(),
            row.un.to_string(),
            row.lower.to_string(),
            row.measured.to_string(),
            row.upper.to_string(),
            row.min_excluded_participation.to_string(),
            row.max_survived.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_comparisons_sit_between_the_bounds() {
        for (n, un) in [(200, 5), (400, 10), (800, 20)] {
            let row = measure(n, un, 1);
            assert!(
                row.lower <= row.measured,
                "n={n}: measured {} below the lower bound {}",
                row.measured,
                row.lower
            );
            assert!(
                row.measured <= row.upper,
                "n={n}: measured {} above the upper bound {}",
                row.measured,
                row.upper
            );
        }
    }

    #[test]
    fn excluded_elements_were_examined_enough() {
        let row = measure(400, 10, 2);
        assert!(
            row.min_excluded_participation >= row.un as u64,
            "an element was excluded after only {} comparisons (un = {})",
            row.min_excluded_participation,
            row.un
        );
    }

    #[test]
    fn maximum_survives_the_gadget() {
        for seed in 0..5 {
            assert!(measure(300, 8, seed).max_survived, "seed {seed}");
        }
    }

    #[test]
    fn participation_oracle_counts_both_sides() {
        use crowd_core::element::Instance;
        use crowd_core::oracle::PerfectOracle;
        let mut o =
            ParticipationOracle::new(PerfectOracle::new(Instance::new(vec![1.0, 2.0, 3.0])));
        o.compare(WorkerClass::Naive, ElementId(0), ElementId(1));
        o.compare(WorkerClass::Naive, ElementId(0), ElementId(2));
        assert_eq!(o.participation_of(ElementId(0)), 2);
        assert_eq!(o.participation_of(ElementId(1)), 1);
        assert_eq!(o.participation_of(ElementId(2)), 1);
        assert_eq!(o.counts().naive, 2);
    }

    #[test]
    fn table_shape() {
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), Scale::quick().n_grid.len());
        assert!(t.rows.iter().all(|r| r[6] == "true"));
    }
}
