//! Figure 4 — number of naïve and expert comparisons as a function of `n`
//! (log-scale in the paper), average and worst case.
//!
//! As in the paper: average counts are measured on random planted
//! instances; Algorithm 1's worst case is the theoretical upper bound
//! (`4·n·un` naïve, `2·(2·un)^{3/2}` expert — "we considered the upper
//! bound predicted by the theory"); the baselines' worst case is measured
//! against the adversarial responder that makes the champion lose every
//! below-threshold comparison.
//!
//! Expected shape: Alg 1's expert comparisons are flat in `n` (they depend
//! only on `|S| ≈ 2·un`), while its naïve comparisons grow linearly; the
//! single-class baselines grow like `n^{3/2}` in the worst case.

use crate::harness::{average_rank, planted_for, Approach};
use crate::report::Table;
use crate::scale::Scale;
use crowd_core::algorithms::two_max_find;
use crowd_core::bounds;
use crowd_core::model::WorkerClass;
use crowd_core::oracle::ComparisonOracle;
use crowd_datasets::adversarial::AdversarialOracle;

/// Measures the worst-case comparisons of single-class 2-MaxFind:
/// adversarial *data* plus adversarial *responses*, as in the paper ("the
/// adversarial data were created so as to maximize the number of
/// comparisons of 2-MaxFind").
///
/// The data is a maximally clustered instance — every pair within the
/// class threshold — and the responder dethrones the current leader, so
/// each elimination round removes only the round champion's tournament
/// victims (≈ √n/2 elements): the elimination loop runs for the maximum
/// ≈ 2√n rounds and the comparison count approaches the `2·n^{3/2}`
/// Theorem 1 ceiling.
pub fn adversarial_two_maxfind_count(
    n: usize,
    un: usize,
    ue: usize,
    class: WorkerClass,
    seed: u64,
) -> u64 {
    // Thresholds from the panel's planted setting, data crafted separately.
    let planted = planted_for(n, un, ue, seed, 0);
    let delta = match class {
        WorkerClass::Naive => planted.delta_n,
        WorkerClass::Expert => planted.delta_e,
    };
    let spacing = delta / (2.0 * n as f64); // whole instance spans < δ/2
    let instance = crowd_datasets::descending_chain(n, 10.0 * delta, spacing);
    let mut oracle = AdversarialOracle::new(instance.clone(), delta);
    two_max_find(&mut oracle, class, &instance.ids());
    oracle.counts().of(class)
}

/// Runs one panel.
pub fn run_panel(scale: &Scale, un: usize, ue: usize, panel: char) -> Table {
    let mut t = Table::new(
        &format!("fig4{panel}"),
        &format!("Comparisons vs n (log scale in the paper), un={un}, ue={ue}"),
        &[
            "n",
            "Alg1 naive (avg)",
            "Alg1 naive (wc)",
            "Alg1 expert (avg)",
            "Alg1 expert (wc)",
            "2MF-naive (avg)",
            "2MF-naive (wc)",
            "2MF-expert (avg)",
            "2MF-expert (wc)",
        ],
    )
    .with_notes(
        "Alg 1 worst case = theoretical bound (as in the paper); baseline \
         worst case = adversarial responder. Expected: Alg 1 expert counts \
         flat in n; naive counts linear; baselines ~ n^1.5 worst case.",
    );

    for &n in &scale.n_grid {
        let (_, alg1_counts) =
            average_rank(Approach::Alg1, n, un, ue, 1.0, scale.trials, scale.seed);
        let (_, naive_counts) = average_rank(
            Approach::TwoMaxFindNaive,
            n,
            un,
            ue,
            1.0,
            scale.trials,
            scale.seed,
        );
        let (_, expert_counts) = average_rank(
            Approach::TwoMaxFindExpert,
            n,
            un,
            ue,
            1.0,
            scale.trials,
            scale.seed,
        );

        t.push_row(vec![
            n.to_string(),
            alg1_counts.naive.to_string(),
            bounds::phase1_upper_bound(n, un).to_string(),
            alg1_counts.expert.to_string(),
            bounds::two_maxfind_upper_bound(2 * un).to_string(),
            naive_counts.naive.to_string(),
            adversarial_two_maxfind_count(n, un, ue, WorkerClass::Naive, scale.seed).to_string(),
            expert_counts.expert.to_string(),
            adversarial_two_maxfind_count(n, un, ue, WorkerClass::Expert, scale.seed).to_string(),
        ]);
    }
    t
}

/// Runs both panels.
pub fn run(scale: &Scale) -> Vec<Table> {
    crate::fig3::SETTINGS
        .iter()
        .zip(['a', 'b'])
        .map(|(&(un, ue), panel)| run_panel(scale, un, ue, panel))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numeric cell of a produced table, with a failure message that names
    /// the cell instead of a bare `unwrap` backtrace.
    fn cell(t: &Table, row: usize, col: usize) -> u64 {
        t.rows[row][col].parse().unwrap_or_else(|e| {
            panic!(
                "row {row} col {col} ({:?}) not numeric: {e:?}",
                t.rows[row][col]
            )
        })
    }

    #[test]
    fn alg1_expert_counts_are_flat_in_n() {
        let scale = Scale::quick();
        let t = run_panel(&scale, 10, 5, 'a');
        let experts: Vec<u64> = (0..t.rows.len()).map(|r| cell(&t, r, 3)).collect();
        let min = experts
            .iter()
            .min()
            .copied()
            .expect("at least one sweep row");
        let max = experts
            .iter()
            .max()
            .copied()
            .expect("at least one sweep row");
        // Flat means "bounded by a constant independent of n": the spread
        // should be far below the growth of the naive counts.
        assert!(max <= 3 * min.max(1), "expert counts not flat: {experts:?}");
    }

    #[test]
    fn alg1_naive_counts_grow_and_respect_bound() {
        let scale = Scale::quick();
        let t = run_panel(&scale, 10, 5, 'a');
        for r in 0..t.rows.len() {
            let (n, avg, wc) = (cell(&t, r, 0), cell(&t, r, 1), cell(&t, r, 2));
            assert!(
                avg <= wc,
                "avg {avg} exceeds the theory bound {wc} at n={n}"
            );
        }
        let first = cell(&t, 0, 1);
        let last = cell(&t, t.rows.len() - 1, 1);
        assert!(last > first, "naive counts should grow with n");
    }

    #[test]
    fn adversarial_worst_case_dominates_average() {
        let scale = Scale::quick();
        let t = run_panel(&scale, 10, 5, 'a');
        for r in 0..t.rows.len() {
            let (avg, wc) = (cell(&t, r, 7), cell(&t, r, 8));
            // The adversary can only make things worse (with slack: the avg
            // is over different random instances).
            assert!(wc * 2 >= avg, "wc {wc} implausibly below avg {avg}");
        }
    }

    #[test]
    fn run_emits_both_panels() {
        let tables = run(&Scale::quick());
        assert_eq!(tables.len(), 2);
    }
}
