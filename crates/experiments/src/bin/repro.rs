//! CLI entry point regenerating the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--out DIR] [--jobs N] [all | fig2 fig3 ... table2 search_eval phase1_survival]
//! ```
//!
//! `--smoke` is an alias for `--quick` (CI smoke jobs use it).
//!
//! Results are written as markdown and CSV into `results/` (or `--out`),
//! alongside a `manifest.json` run record, and the markdown is echoed to
//! stdout. Experiments and their seed replications run on `--jobs N`
//! threads (default: all cores; `--jobs 1` is fully serial); every RNG is
//! seeded per experiment, so the tables and CSVs are byte-identical at any
//! job count.

use crowd_experiments::{engine, run_experiments, Scale, EXPERIMENT_NAMES, TEXT_EXPERIMENTS};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_dir = PathBuf::from("results");
    let mut names: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "--smoke" => quick = true,
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => engine::set_jobs(n),
                _ => {
                    eprintln!("--jobs requires a worker count >= 1");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick|--smoke] [--out DIR] [--jobs N] [all | EXPERIMENT...]\n\
                     experiments: {} {}",
                    EXPERIMENT_NAMES.join(" "),
                    TEXT_EXPERIMENTS.join(" ")
                );
                return ExitCode::SUCCESS;
            }
            "all" => names.clear(),
            name => {
                if !crowd_experiments::runner::is_known(name) {
                    eprintln!(
                        "unknown experiment {name:?}; known: {} {}",
                        EXPERIMENT_NAMES.join(" "),
                        TEXT_EXPERIMENTS.join(" ")
                    );
                    return ExitCode::FAILURE;
                }
                names.push(name.to_string());
            }
        }
    }

    let scale = if quick { Scale::quick() } else { Scale::full() };
    match run_experiments(&names, &scale, &out_dir) {
        Ok(tables) => {
            for t in &tables {
                println!("{}", t.to_markdown());
                println!("{}", crowd_experiments::report::ascii_chart(t));
            }
            eprintln!(
                "wrote {} tables + manifest.json to {}",
                tables.len(),
                out_dir.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to write results: {e}");
            ExitCode::FAILURE
        }
    }
}
