//! Seeded kill/resume matrix — the chaos harness's CI entry point.
//!
//! ```text
//! chaos [--seeds N] [--n N] [--out DIR] [--jobs N]
//! ```
//!
//! Each seed derives a [`ChaosPlan`] (covering all four injection-point
//! kinds across a seed grid), kills one Algorithm 1 run at that point, and
//! resumes it from the durable write-ahead journal. Two artifact trees are
//! written:
//!
//! * `<out>/uninterrupted/` — `manifest.json` (per-seed winner, comparison
//!   counts, spend, journal bytes) and `events.jsonl`, measured from the
//!   baseline runs;
//! * `<out>/resumed/` — the same files, measured independently from the
//!   killed-then-resumed runs (with only the `RecoveryStarted` /
//!   `RecoveryCompleted` bookkeeping events dropped).
//!
//! The two trees must be **byte-identical** — `diff -r` proves it in CI —
//! and the binary additionally asserts in-process that every trial
//! crashed, resumed, and matched on every channel, exiting nonzero
//! otherwise. Seeds fan out over `--jobs` threads with deterministic
//! aggregation, so the artifacts are identical at any job count.

use crowd_experiments::chaos_sweep::{point_label, run_trial_artifacts, LegSummary};
use crowd_experiments::engine;
use crowd_obs::EventLog;
use crowd_platform::ChaosPlan;
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Elements per trial instance (kept modest: each seed runs the full
/// two-phase algorithm three times).
const DEFAULT_N: usize = 100;
/// Seeds in the default matrix — enough that SplitMix64 hits all four
/// injection-point kinds (see `chaos::seeded_plans_are_deterministic...`).
const DEFAULT_SEEDS: u64 = 8;
/// Base seed the per-trial seeds are mixed from.
const BASE_SEED: u64 = 0xC0FFEE;

/// One side's `manifest.json`: the per-seed observable results.
#[derive(Serialize)]
struct SideManifest {
    version: u64,
    n: usize,
    seeds: u64,
    trials: Vec<TrialRow>,
}

#[derive(Serialize)]
struct TrialRow {
    seed: u64,
    point: String,
    fault_rate: f64,
    summary: LegSummary,
}

fn write_side(dir: &Path, manifest: &SideManifest, events: EventLog) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let json = serde_json::to_string_pretty(manifest)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(dir.join("manifest.json"), json + "\n")?;
    std::fs::write(dir.join("events.jsonl"), events.to_jsonl())
}

fn main() -> ExitCode {
    let mut n = DEFAULT_N;
    let mut seeds = DEFAULT_SEEDS;
    let mut out_dir = PathBuf::from("chaos-results");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) if v >= 1 => seeds = v,
                _ => {
                    eprintln!("--seeds requires a count >= 1");
                    return ExitCode::FAILURE;
                }
            },
            "--n" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v >= 20 => n = v,
                _ => {
                    eprintln!("--n requires an instance size >= 20");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v >= 1 => engine::set_jobs(v),
                _ => {
                    eprintln!("--jobs requires a worker count >= 1");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: chaos [--seeds N] [--n N] [--out DIR] [--jobs N]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?} (see --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    let un = (n / 50).max(3);
    // Odd seeds add platform faults so partial-batch journal records are
    // part of the matrix; even seeds stay fault-free.
    let rate_for = |seed: u64| if seed % 2 == 1 { 0.05 } else { 0.0 };
    let trials = engine::parallel_map((0..seeds).collect(), |seed| {
        let point = ChaosPlan::seeded(seed).point();
        let artifacts = run_trial_artifacts(n, un, rate_for(seed), point, BASE_SEED, seed);
        (seed, point, artifacts)
    });

    let mut failures = 0u64;
    let mut uninterrupted = SideManifest {
        version: 1,
        n,
        seeds,
        trials: Vec::new(),
    };
    let mut resumed = SideManifest {
        version: 1,
        n,
        seeds,
        trials: Vec::new(),
    };
    let mut uninterrupted_events = Vec::new();
    let mut resumed_events = Vec::new();

    for (seed, point, artifacts) in trials {
        let o = &artifacts.outcome;
        let label = point_label(point);
        eprintln!(
            "seed {seed:>3} {label:<18} crashed={} torn={} resumed={} identical={} \
             replayed={} re-bought={}",
            o.crashed, o.torn_tail, o.resumed, o.identical, o.replayed, o.re_bought
        );
        if !(o.resumed && o.identical && !o.diverged) {
            eprintln!("seed {seed}: resume-equivalence FAILED: {o:?}");
            failures += 1;
            continue;
        }
        let Some(resumed_summary) = artifacts.resumed.clone() else {
            eprintln!("seed {seed}: resume accepted but produced no summary");
            failures += 1;
            continue;
        };
        uninterrupted.trials.push(TrialRow {
            seed,
            point: label.to_string(),
            fault_rate: rate_for(seed),
            summary: artifacts.uninterrupted.clone(),
        });
        resumed.trials.push(TrialRow {
            seed,
            point: label.to_string(),
            fault_rate: rate_for(seed),
            summary: resumed_summary,
        });
        uninterrupted_events.extend(artifacts.uninterrupted_events);
        resumed_events.extend(artifacts.resumed_events);
    }

    if let Err(e) = write_side(
        &out_dir.join("uninterrupted"),
        &uninterrupted,
        EventLog::from_events(uninterrupted_events),
    )
    .and_then(|()| {
        write_side(
            &out_dir.join("resumed"),
            &resumed,
            EventLog::from_events(resumed_events),
        )
    }) {
        eprintln!("failed to write artifacts: {e}");
        return ExitCode::FAILURE;
    }

    if failures > 0 {
        eprintln!("{failures}/{seeds} seeds failed resume equivalence");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "all {seeds} seeds resumed identically; artifacts in {} (diff the two trees)",
        out_dir.display()
    );
    ExitCode::SUCCESS
}
