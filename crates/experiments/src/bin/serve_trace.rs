//! Span-log analyzer and trace-twin generator — the tracing CI entry point.
//!
//! ```text
//! serve_trace <spans.jsonl> [--waterfalls N]     # analyze a span log
//! serve_trace --run --out DIR [--seeds N]        # generate CI twin trees
//! ```
//!
//! **Analyze mode** parses a `spans.jsonl` (as written by `repro` next to
//! `events.jsonl`), enforces the accounting invariant — every job's stage
//! ticks must sum to its submission-to-completion latency — and prints
//! the per-tenant latency-attribution table plus ASCII waterfalls for the
//! slowest jobs. Unbalanced books exit nonzero with one message per
//! broken job.
//!
//! **Run mode** drives the canonical serve scenario through an
//! uninterrupted run and a killed-then-resumed run per seed, writing
//! `<out>/uninterrupted/spans-<seed>.jsonl` and
//! `<out>/resumed/spans-<seed>.jsonl` (one file per seed — seeds reuse
//! job ids, so merged logs would not reconcile), plus `trace.md`, the
//! analyzed seed-0 baseline. The two trees must be **byte-identical** —
//! `diff -r` proves it in CI — and the binary additionally asserts
//! in-process that every seed's logs matched and reconciled, exiting
//! nonzero otherwise.

use crowd_experiments::serve_trace::{analyze, demo_twin_logs};
use crowd_obs::SpanLog;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Seeds in the default twin matrix.
const DEFAULT_SEEDS: u64 = 4;

fn analyze_file(path: &str, waterfalls: usize) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let log = match SpanLog::from_jsonl(&text) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{path} is not a span log: {e}");
            return ExitCode::FAILURE;
        }
    };
    match analyze(&log) {
        Ok(analysis) => {
            println!("{}", analysis.render_report(waterfalls));
            eprintln!(
                "{}: {} spans, {} jobs, books balance",
                path,
                log.len(),
                analysis.jobs.len()
            );
            ExitCode::SUCCESS
        }
        Err(violations) => {
            for v in &violations {
                eprintln!("{path}: {v}");
            }
            eprintln!("{path}: {} jobs with unbalanced books", violations.len());
            ExitCode::FAILURE
        }
    }
}

fn run_twins(out_dir: &Path, seeds: u64) -> ExitCode {
    // One span log per seed per side: seeds reuse job ids, so merging
    // them would break per-file reconciliation.
    let write = |side: &str, seed: u64, log: &SpanLog| -> std::io::Result<()> {
        let dir = out_dir.join(side);
        std::fs::create_dir_all(&dir)?;
        std::fs::write(dir.join(format!("spans-{seed}.jsonl")), log.to_jsonl())
    };
    let mut failures = 0u64;
    let mut trace = String::new();
    for seed in 0..seeds {
        let (base, twin) = demo_twin_logs(seed);
        let identical = base.to_jsonl() == twin.to_jsonl();
        let reconciles = base.reconcile().is_ok();
        eprintln!(
            "seed {seed:>3}: spans={} identical={identical} reconciles={reconciles}",
            base.len()
        );
        if !(identical && reconciles && !base.is_empty()) {
            failures += 1;
        }
        if seed == 0 {
            trace = analyze(&base)
                .map(|a| a.render_report(5))
                .unwrap_or_else(|v| format!("UNBALANCED BOOKS\n{}\n", v.join("\n")));
        }
        if let Err(e) =
            write("uninterrupted", seed, &base).and_then(|()| write("resumed", seed, &twin))
        {
            eprintln!("failed to write artifacts: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(out_dir.join("trace.md"), trace) {
        eprintln!("failed to write artifacts: {e}");
        return ExitCode::FAILURE;
    }

    if failures > 0 {
        eprintln!("{failures}/{seeds} seeds failed span-twin equivalence");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "all {seeds} seeds traced identically; artifacts in {} (diff the two trees)",
        out_dir.display()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut run = false;
    let mut out_dir = PathBuf::from("trace-results");
    let mut seeds = DEFAULT_SEEDS;
    let mut waterfalls = 5usize;
    let mut input: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--run" => run = true,
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--seeds" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) if v >= 1 => seeds = v,
                _ => {
                    eprintln!("--seeds requires a count >= 1");
                    return ExitCode::FAILURE;
                }
            },
            "--waterfalls" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) => waterfalls = v,
                None => {
                    eprintln!("--waterfalls requires a count");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: serve_trace <spans.jsonl> [--waterfalls N]\n\
                     \x20      serve_trace --run [--out DIR] [--seeds N]"
                );
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && input.is_none() => {
                input = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument {other:?} (see --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    match (run, input) {
        (true, None) => run_twins(&out_dir, seeds),
        (false, Some(path)) => analyze_file(&path, waterfalls),
        (true, Some(_)) => {
            eprintln!("--run does not take a span-log argument");
            ExitCode::FAILURE
        }
        (false, None) => {
            eprintln!("pass a spans.jsonl to analyze, or --run to generate twins (see --help)");
            ExitCode::FAILURE
        }
    }
}
