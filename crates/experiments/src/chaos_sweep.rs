//! Crash/resume equivalence sweep: kill Algorithm 1 at every seeded
//! injection point and prove the resumed run equals the uninterrupted one.
//!
//! Each trial runs the full two-phase algorithm three times on
//! identically-constructed platforms:
//!
//! 1. **uninterrupted** — a [`JournaledOracle`] baseline, run to the end;
//! 2. **doomed** — the same run with a [`ChaosPlan`] armed at one
//!    [`InjectionPoint`]; the crash freezes its durable journal;
//! 3. **resumed** — [`resume_job`] on the crash's durable bytes: the
//!    journaled batches replay on a fresh platform (audited against the
//!    checkpoints and the `crowd_core::replay` transcript), then the run
//!    continues live.
//!
//! The equivalence claim is checked at the byte level: the resumed run's
//! algorithm outcome, final journal bytes, comparison tally, ledger spend,
//! and fault-stream position must all equal the uninterrupted run's. The
//! sweep crosses the four crash windows of [`crate::chaos`](crowd_platform::chaos)
//! with fault-free and faulty platforms (faults exercise partial-batch
//! journal records), and reports what recovery cost: comparisons restored
//! from the journal vs. re-bought (the dangling `Scheduled` batch plus any
//! completions a lazy checkpoint cadence lost), and torn tails detected by
//! checksum.
//!
//! Expected shape: every row's `identical` column equals its trial count
//! and `divergences` is zero — at any fault rate, any injection point, and
//! any `--jobs` count.

use crate::engine;
use crate::fault_sweep::{fault_config, EXPERT_POOL, NAIVE_POOL};
use crate::harness::planted_for;
use crate::report::{fmt_f64, Table};
use crate::scale::Scale;
use crowd_core::algorithms::{try_expert_max_find, ExpertMaxConfig, ExpertMaxOutcome};
use crowd_core::element::ElementId;
use crowd_core::oracle::{ComparisonCounts, ComparisonOracle, OracleError};
use crowd_obs::{install_recorder, Event, Recorder};
use crowd_platform::{
    recover, resume_job, ChaosPlan, CheckpointPolicy, InjectionPoint, JournaledOracle, Platform,
    PlatformConfig, RetryPolicy, WorkerPool,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Fault rates swept: fault-free (every batch completes whole) and a
/// moderate rate that produces retries and partial-batch journal records.
pub const RATES: [f64; 2] = [0.0, 0.05];

/// Display labels for the four crash windows, in sweep order.
pub const POINTS: [&str; 4] = [
    "mid_batch",
    "mid_journal_write",
    "between_rounds",
    "phase_transition",
];

/// Checkpoint cadence used by every leg of a trial: lazy enough that a
/// boundary crash genuinely loses pending completions (and must re-buy
/// them), tight enough that recovery still replays most of the run.
const CADENCE: u64 = 4;

/// The injection point for sweep row `kind` (an index into [`POINTS`]) at
/// trial `t` — the batch/round parameter varies with the trial so a sweep
/// kills runs at different depths.
pub fn point_for(kind: usize, t: u64) -> InjectionPoint {
    match kind {
        0 => InjectionPoint::MidBatch { batch: 1 + 2 * t },
        1 => InjectionPoint::MidJournalWrite { batch: 1 + 2 * t },
        2 => InjectionPoint::BetweenRounds {
            round: (t % 2) as u32,
        },
        _ => InjectionPoint::AtPhaseTransition,
    }
}

/// The [`POINTS`] label for an injection point.
pub fn point_label(point: InjectionPoint) -> &'static str {
    match point {
        InjectionPoint::MidBatch { .. } => POINTS[0],
        InjectionPoint::MidJournalWrite { .. } => POINTS[1],
        InjectionPoint::BetweenRounds { .. } => POINTS[2],
        InjectionPoint::AtPhaseTransition => POINTS[3],
    }
}

/// What one kill/resume trial established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosTrialOutcome {
    /// The chaos plan fired (a run can finish — or abort on a genuine
    /// fault — before reaching its injection point; resume is then
    /// exercised on the complete journal instead).
    pub crashed: bool,
    /// The durable journal ended in a torn frame, detected by checksum.
    pub torn_tail: bool,
    /// [`resume_job`] accepted the durable bytes.
    pub resumed: bool,
    /// The resumed run matched the uninterrupted one on every channel:
    /// algorithm outcome, final journal bytes, comparison tally, spend,
    /// and fault-stream position.
    pub identical: bool,
    /// Replay diverged from the journal's checkpoints (must never happen).
    pub diverged: bool,
    /// Comparisons restored from the journal instead of re-purchased.
    pub replayed: u64,
    /// Comparisons the crashed run had bought that recovery could not
    /// restore (unflushed completions, the dangling batch's partial work).
    pub re_bought: u64,
    /// Durable journal bytes the crash left behind for recovery.
    pub journal_bytes: u64,
}

/// The job label journaled by every trial.
const JOB: &str = "chaos_sweep";

fn build_platform(
    instance: &crowd_core::element::Instance,
    delta_n: f64,
    delta_e: f64,
    rate: f64,
    trial_seed: u64,
) -> Platform<StdRng> {
    let mut pool = WorkerPool::new();
    pool.hire_naive_crowd(NAIVE_POOL, delta_n, 0.0);
    pool.hire_expert_panel(EXPERT_POOL, delta_e, 0.0);
    let config = PlatformConfig::paper_default()
        .without_gold()
        .with_faults(fault_config(rate), trial_seed ^ 0xFA117)
        .with_retry(RetryPolicy::paper_default().with_max_retries(4))
        .with_expert_fallback(3);
    Platform::new(
        instance.clone(),
        pool,
        config,
        StdRng::seed_from_u64(trial_seed),
    )
}

fn drive<O: ComparisonOracle>(
    oracle: &mut O,
    ids: &[crowd_core::element::ElementId],
    un: usize,
    trial_seed: u64,
) -> Result<ExpertMaxOutcome, OracleError> {
    let mut rng = StdRng::seed_from_u64(trial_seed ^ 0x5eed);
    try_expert_max_find(oracle, ids, &ExpertMaxConfig::new(un), &mut rng)
}

/// One kill/resume trial with its byte-diff inputs: the events each leg
/// emitted and the uninterrupted run's observable result. Produced by
/// [`run_trial_artifacts`]; the `chaos` binary writes these side by side
/// and diffs them.
#[derive(Debug)]
pub struct TrialArtifacts {
    /// The equivalence verdict.
    pub outcome: ChaosTrialOutcome,
    /// Events the uninterrupted leg emitted, in order.
    pub uninterrupted_events: Vec<Event>,
    /// Events the resumed leg emitted, with the recovery bookkeeping
    /// ([`Event::RecoveryStarted`] / [`Event::RecoveryCompleted`])
    /// filtered out — what remains must equal the uninterrupted leg's
    /// stream byte-for-byte.
    pub resumed_events: Vec<Event>,
    /// The uninterrupted leg's observable result.
    pub uninterrupted: LegSummary,
    /// The resumed leg's observable result, measured independently from
    /// its own final platform state (`None` when [`resume_job`] refused
    /// the journal). Must equal [`uninterrupted`](Self::uninterrupted).
    pub resumed: Option<LegSummary>,
}

/// One leg's observable result — the per-trial manifest row the `chaos`
/// binary byte-diffs between the uninterrupted and resumed sides.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct LegSummary {
    /// The algorithm's winner (`None` when the run aborted on a genuine
    /// platform fault).
    pub winner: Option<ElementId>,
    /// The platform's final comparison tally.
    pub comparisons: ComparisonCounts,
    /// The platform's final ledger spend.
    pub spent: f64,
    /// Final durable journal bytes.
    pub journal_bytes: u64,
}

/// True for the recovery-bookkeeping events only the resumed leg emits.
fn is_recovery_event(event: &Event) -> bool {
    matches!(
        event,
        Event::RecoveryStarted { .. } | Event::RecoveryCompleted { .. }
    )
}

/// Runs one kill/resume trial: uninterrupted baseline, chaos-killed run,
/// resume from the durable journal, and the byte-level comparison.
pub fn run_trial(
    n: usize,
    un: usize,
    rate: f64,
    point: InjectionPoint,
    base_seed: u64,
    t: u64,
) -> ChaosTrialOutcome {
    run_trial_artifacts(n, un, rate, point, base_seed, t).outcome
}

/// [`run_trial`] plus the per-leg event logs and the uninterrupted run's
/// observable result — see [`TrialArtifacts`].
pub fn run_trial_artifacts(
    n: usize,
    un: usize,
    rate: f64,
    point: InjectionPoint,
    base_seed: u64,
    t: u64,
) -> TrialArtifacts {
    let planted = planted_for(n, un, (un / 4).max(1), base_seed ^ 0xCA, t);
    let instance = &planted.instance;
    let ids = instance.ids();
    let trial_seed = base_seed ^ (t.wrapping_mul(0x9E37) << 16) ^ (rate.to_bits() >> 12);
    let policy = CheckpointPolicy::every(CADENCE);
    let fresh = || build_platform(instance, planted.delta_n, planted.delta_e, rate, trial_seed);

    // Leg 1: the uninterrupted baseline every later channel is held to.
    let base_rec = Arc::new(Recorder::new());
    let (base_out, base_journal, base_platform) = {
        let _guard = install_recorder(base_rec.clone());
        let mut base = JournaledOracle::new(fresh(), JOB, trial_seed, policy);
        let out = drive(&mut base, &ids, un, trial_seed);
        base.finish();
        let (journal, platform) = base.into_parts();
        (out, journal, platform)
    };
    let base_summary = LegSummary {
        winner: base_out.as_ref().ok().map(|o| o.winner),
        comparisons: base_platform.counts(),
        spent: base_platform.ledger().total(),
        journal_bytes: base_journal.durable().len() as u64,
    };

    // Leg 2: the same run, killed at the injection point. No `finish()`
    // after a crash — the process is dead, only the durable bytes remain.
    let mut doomed =
        JournaledOracle::new(fresh(), JOB, trial_seed, policy).with_chaos(ChaosPlan::at(point));
    let _ = drive(&mut doomed, &ids, un, trial_seed);
    let crashed = doomed.crashed();
    if !crashed {
        doomed.finish();
    }
    let (doomed_journal, doomed_platform) = doomed.into_parts();
    let bytes = doomed_journal.durable().to_vec();

    let torn_tail = recover(&bytes).map(|r| r.torn_tail).unwrap_or(false);

    // Leg 3: resume on a fresh, identically-constructed platform.
    let resumed_rec = Arc::new(Recorder::new());
    let Ok(mut resumed) = resume_job(&bytes, fresh(), JOB, trial_seed, policy) else {
        return TrialArtifacts {
            outcome: ChaosTrialOutcome {
                crashed,
                torn_tail,
                resumed: false,
                identical: false,
                diverged: false,
                replayed: 0,
                re_bought: 0,
                journal_bytes: bytes.len() as u64,
            },
            uninterrupted_events: base_rec.events(),
            resumed_events: Vec::new(),
            uninterrupted: base_summary,
            resumed: None,
        };
    };
    let (resumed_out, replayed, diverged, res_journal, res_platform) = {
        let _guard = install_recorder(resumed_rec.clone());
        let out = drive(&mut resumed, &ids, un, trial_seed);
        let replayed = resumed.replayed_comparisons();
        let diverged = resumed.diverged().is_some();
        let mut inner = resumed.into_inner();
        inner.finish();
        let (journal, platform) = inner.into_parts();
        (out, replayed, diverged, journal, platform)
    };

    let identical = !diverged
        && resumed_out == base_out
        && res_journal.durable() == base_journal.durable()
        && res_platform.counts() == base_platform.counts()
        && res_platform.ledger().total() == base_platform.ledger().total()
        && res_platform.fault_seq() == base_platform.fault_seq();

    TrialArtifacts {
        outcome: ChaosTrialOutcome {
            crashed,
            torn_tail,
            resumed: true,
            identical,
            diverged,
            replayed,
            re_bought: doomed_platform.counts().total().saturating_sub(replayed),
            journal_bytes: bytes.len() as u64,
        },
        uninterrupted_events: base_rec.events(),
        resumed_events: resumed_rec
            .events()
            .into_iter()
            .filter(|e| !is_recovery_event(e))
            .collect(),
        uninterrupted: base_summary,
        resumed: Some(LegSummary {
            winner: resumed_out.as_ref().ok().map(|o| o.winner),
            comparisons: res_platform.counts(),
            spent: res_platform.ledger().total(),
            journal_bytes: res_journal.durable().len() as u64,
        }),
    }
}

/// One aggregated sweep point: an injection-point kind at one fault rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepRow {
    /// Index into [`POINTS`].
    pub kind: usize,
    /// Index into [`RATES`].
    pub rate_index: usize,
    /// Trials run at this point.
    pub trials: u64,
    /// Trials whose chaos plan actually fired.
    pub crashes: u64,
    /// Trials whose journal [`resume_job`] accepted.
    pub resumes: u64,
    /// Trials where the resumed run matched the uninterrupted one on
    /// every channel.
    pub identical: u64,
    /// Replay-audit divergences (must be 0).
    pub divergences: u64,
    /// Torn tails detected by checksum.
    pub torn_tails: u64,
    /// Summed comparisons restored from journals.
    pub replayed: u64,
    /// Summed comparisons re-bought after crashes.
    pub re_bought: u64,
    /// Summed durable journal bytes handed to recovery.
    pub journal_bytes: u64,
}

/// Sweeps every injection point in [`POINTS`] crossed with every rate in
/// [`RATES`], `trials` trials per cell. Trials fan out over the parallel
/// engine; aggregation stays in `(point, rate, trial)` order, so the rows
/// are identical at any `--jobs` count.
pub fn sweep(n: usize, un: usize, trials: u64, base_seed: u64) -> Vec<SweepRow> {
    let items: Vec<(usize, usize, u64)> = (0..POINTS.len())
        .flat_map(|pi| (0..RATES.len()).flat_map(move |ri| (0..trials).map(move |t| (pi, ri, t))))
        .collect();
    let outcomes = engine::parallel_map(items, |(pi, ri, t)| {
        run_trial(n, un, RATES[ri], point_for(pi, t), base_seed, t)
    });
    let per_cell = trials as usize;
    (0..POINTS.len())
        .flat_map(|pi| (0..RATES.len()).map(move |ri| (pi, ri)))
        .enumerate()
        .map(|(cell, (pi, ri))| {
            let slice = &outcomes[cell * per_cell..(cell + 1) * per_cell];
            let mut row = SweepRow {
                kind: pi,
                rate_index: ri,
                trials,
                crashes: 0,
                resumes: 0,
                identical: 0,
                divergences: 0,
                torn_tails: 0,
                replayed: 0,
                re_bought: 0,
                journal_bytes: 0,
            };
            for o in slice {
                row.crashes += u64::from(o.crashed);
                row.resumes += u64::from(o.resumed);
                row.identical += u64::from(o.identical);
                row.divergences += u64::from(o.diverged);
                row.torn_tails += u64::from(o.torn_tail);
                row.replayed += o.replayed;
                row.re_bought += o.re_bought;
                row.journal_bytes += o.journal_bytes;
            }
            row
        })
        .collect()
}

/// Runs the sweep at experiment scale.
pub fn run(scale: &Scale) -> Table {
    // Each trial is three full platform runs; keep n modest so the
    // eight-cell sweep stays in seconds.
    let n = (*scale.n_grid.first().unwrap_or(&300)).min(120);
    let un = (n / 50).max(3);
    let trials = scale.trials.max(2);
    let rows = sweep(n, un, trials, scale.seed ^ 0xC4A5);

    let mut t = Table::new(
        "chaos_sweep",
        &format!(
            "Crash/resume equivalence: Algorithm 1 killed at seeded injection points \
             and resumed from the write-ahead journal (n={n}, un={un}, {trials} trials \
             per cell, checkpoint cadence {CADENCE})"
        ),
        &[
            "injection point",
            "fault rate",
            "trials",
            "crashes",
            "resumes",
            "identical",
            "divergences",
            "torn tails",
            "replayed cmps",
            "re-bought cmps",
            "journal bytes",
        ],
    )
    .with_notes(
        "Each trial compares a chaos-killed-then-resumed run against an \
         uninterrupted baseline at the byte level: algorithm outcome, final \
         journal bytes, comparison tally, spend, and fault-stream position. \
         `identical` must equal `trials` and `divergences` must be 0 in \
         every row. Re-bought comparisons are the recovery floor: the \
         dangling scheduled batch plus completions the lazy checkpoint \
         cadence had not flushed. Torn tails appear only on the \
         mid_journal_write row, detected by the frame checksum.",
    );
    for row in &rows {
        t.push_row(vec![
            POINTS[row.kind].to_string(),
            fmt_f64(RATES[row.rate_index], 2),
            row.trials.to_string(),
            row.crashes.to_string(),
            row.resumes.to_string(),
            row.identical.to_string(),
            row.divergences.to_string(),
            row.torn_tails.to_string(),
            row.replayed.to_string(),
            row.re_bought.to_string(),
            row.journal_bytes.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_core::element::{ElementId, Instance};
    use crowd_core::equiv::{assert_oracles_equal, drive_until_error};
    use crowd_core::model::WorkerClass;

    #[test]
    fn mid_batch_kill_resumes_identically() {
        let o = run_trial(100, 3, 0.0, InjectionPoint::MidBatch { batch: 3 }, 31, 0);
        assert!(o.crashed, "the plan must fire at batch 3");
        assert!(o.resumed && o.identical && !o.diverged, "{o:?}");
        assert!(o.replayed > 0, "earlier batches replay from the journal");
        assert!(!o.torn_tail);
    }

    #[test]
    fn torn_write_is_detected_and_still_resumes_identically() {
        let o = run_trial(
            100,
            3,
            0.0,
            InjectionPoint::MidJournalWrite { batch: 3 },
            31,
            0,
        );
        assert!(o.crashed && o.torn_tail, "{o:?}");
        assert!(o.resumed && o.identical, "{o:?}");
    }

    #[test]
    fn boundary_kills_lose_only_unflushed_work() {
        for point in [
            InjectionPoint::BetweenRounds { round: 0 },
            InjectionPoint::AtPhaseTransition,
        ] {
            let o = run_trial(100, 3, 0.0, point, 33, 1);
            assert!(o.crashed, "{point:?} must fire during a real run");
            assert!(o.identical && !o.diverged, "{point:?}: {o:?}");
            assert!(
                o.re_bought > 0,
                "{point:?}: a lazy cadence loses pending completions"
            );
        }
    }

    #[test]
    fn faulty_trials_stay_identical_through_partial_batches() {
        let o = run_trial(100, 3, 0.05, InjectionPoint::MidBatch { batch: 5 }, 35, 2);
        assert!(o.resumed && o.identical && !o.diverged, "{o:?}");
    }

    #[test]
    fn resumed_event_log_equals_the_uninterrupted_one_modulo_recovery() {
        let a = run_trial_artifacts(100, 3, 0.0, InjectionPoint::MidBatch { batch: 3 }, 31, 0);
        assert!(a.outcome.identical);
        assert!(
            !a.uninterrupted_events.is_empty(),
            "the journaled run emits checkpoint events"
        );
        assert_eq!(
            a.resumed_events, a.uninterrupted_events,
            "after dropping RecoveryStarted/RecoveryCompleted, the resumed \
             run's event stream must be identical"
        );
        let base = &a.uninterrupted;
        assert!(base.winner.is_some());
        assert!(base.comparisons.total() > 0 && base.spent > 0.0 && base.journal_bytes > 0);
        assert_eq!(
            a.resumed.as_ref(),
            Some(base),
            "the resumed leg's own measurements must match"
        );
    }

    #[test]
    fn resume_is_byte_identical_under_the_equiv_harness() {
        // The promoted crash/resume driver: kill a journaled run mid-way,
        // resume it, and let `assert_oracles_equal` prove the resumed side
        // issues the byte-identical comparison sequence.
        let instance = Instance::new(vec![1.0, 5.0, 3.0, 9.0, 7.0, 2.0]);
        let pairs: Vec<(ElementId, ElementId)> = vec![
            (ElementId(0), ElementId(1)),
            (ElementId(2), ElementId(3)),
            (ElementId(4), ElementId(5)),
            (ElementId(1), ElementId(3)),
            (ElementId(3), ElementId(4)),
        ];
        let fresh = || {
            let mut pool = WorkerPool::new();
            pool.hire_naive_crowd(6, 0.1, 0.05);
            Platform::new(
                instance.clone(),
                pool,
                PlatformConfig::paper_default().without_gold(),
                StdRng::seed_from_u64(0xFEED),
            )
        };
        let policy = CheckpointPolicy::every_batch();
        let segments = [2usize, 1, 2];

        // Crash the journaled run at batch 1, outside the harness.
        let mut doomed = JournaledOracle::new(fresh(), "equiv", 0xFEED, policy)
            .with_chaos(ChaosPlan::at(InjectionPoint::MidBatch { batch: 1 }));
        let (prefix, err) = drive_until_error(&mut doomed, WorkerClass::Naive, &pairs, &segments);
        assert!(matches!(err, Some(OracleError::Interrupted)));
        assert_eq!(prefix.len(), 2, "batch 0 answered before the crash");
        let (journal, _) = doomed.into_parts();

        let resumed = resume_job(journal.durable(), fresh(), "equiv", 0xFEED, policy)
            .expect("the crash journal recovers");
        assert_oracles_equal(
            JournaledOracle::new(fresh(), "equiv", 0xFEED, policy),
            resumed,
            |o| drive_until_error(o, WorkerClass::Naive, &pairs, &segments),
            |o| drive_until_error(o, WorkerClass::Naive, &pairs, &segments),
        );
    }

    #[test]
    fn point_for_covers_all_kinds_and_varies_with_the_trial() {
        assert_eq!(
            point_for(0, 2),
            InjectionPoint::MidBatch { batch: 5 },
            "the kill depth varies with the trial"
        );
        let kinds: std::collections::HashSet<_> = (0..POINTS.len())
            .map(|k| std::mem::discriminant(&point_for(k, 0)))
            .collect();
        assert_eq!(kinds.len(), POINTS.len());
    }

    #[test]
    fn table_shape() {
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), POINTS.len() * RATES.len());
        let md = t.to_markdown();
        assert!(md.contains("re-bought"), "{md}");
        // Every row proves equivalence: identical == trials, divergences == 0.
        for row in &t.rows {
            assert_eq!(row[5], row[2], "identical must equal trials: {row:?}");
            assert_eq!(row[6], "0", "divergences must be zero: {row:?}");
        }
    }
}
