//! Figure 2 — worker accuracy vs. number of majority voters, per
//! relative-difference bucket, on DOTS (a) and CARS (b).
//!
//! Methodology (paper Section 3.1): for each comparison pair, collect 21
//! independent judgments; for every prefix of 1, 3, …, 21 voters compute
//! the majority answer and record whether it is correct; average per
//! bucket of relative difference.
//!
//! Expected shapes:
//! * **DOTS** — every bucket's accuracy climbs towards 1 as voters are
//!   added (wisdom of crowds);
//! * **CARS** — buckets above 20% climb towards 1, buckets at or below 20%
//!   plateau around 0.6–0.7 (expertise barrier).

use crate::report::{fmt_f64, Table};
use crate::scale::Scale;
use crowd_core::algorithms::majority_prefix_correct;
use crowd_core::element::{ElementId, Instance};
use crowd_core::model::{ProbabilisticModel, WorkerClass};
use crowd_core::oracle::ModelOracle;
use crowd_datasets::cars::{CarsCatalog, CarsWorkerModel};
use crowd_datasets::dots::{relative_difference, DotsDataset, DotsWorkerModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The voter counts plotted on the x-axis (odd prefixes of 21 judgments).
pub const VOTER_COUNTS: [u32; 11] = [1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21];

/// A relative-difference bucket `(lo, hi]` (`lo = 0` means inclusive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Lower edge (exclusive, except 0).
    pub lo: f64,
    /// Upper edge (inclusive; `f64::INFINITY` for the open bucket).
    pub hi: f64,
}

impl Bucket {
    fn contains(&self, r: f64) -> bool {
        (r > self.lo || (self.lo == 0.0 && r >= 0.0)) && r <= self.hi
    }

    fn label(&self) -> String {
        if self.hi.is_infinite() {
            format!("({:.1},inf)", self.lo)
        } else if self.lo == 0.0 {
            format!("[0,{:.1}]", self.hi)
        } else {
            format!("({:.1},{:.1}]", self.lo, self.hi)
        }
    }
}

/// The paper's DOTS buckets.
pub const DOTS_BUCKETS: [Bucket; 4] = [
    Bucket { lo: 0.0, hi: 0.1 },
    Bucket { lo: 0.1, hi: 0.2 },
    Bucket { lo: 0.2, hi: 0.3 },
    Bucket {
        lo: 0.3,
        hi: f64::INFINITY,
    },
];

/// The paper's CARS buckets.
pub const CARS_BUCKETS: [Bucket; 4] = [
    Bucket { lo: 0.0, hi: 0.1 },
    Bucket { lo: 0.1, hi: 0.2 },
    Bucket { lo: 0.2, hi: 0.5 },
    Bucket {
        lo: 0.5,
        hi: f64::INFINITY,
    },
];

/// Samples `per_bucket` element pairs from `instance` into each bucket
/// (by relative difference of the values), or fewer if a bucket is rare.
fn sample_pairs<R: Rng>(
    instance: &Instance,
    buckets: &[Bucket],
    per_bucket: usize,
    rng: &mut R,
) -> Vec<Vec<(ElementId, ElementId)>> {
    let n = instance.n();
    let mut out: Vec<Vec<(ElementId, ElementId)>> = vec![Vec::new(); buckets.len()];
    let mut attempts = 0usize;
    let max_attempts = per_bucket * buckets.len() * 400;
    while out.iter().any(|b| b.len() < per_bucket) && attempts < max_attempts {
        attempts += 1;
        let i = rng.gen_range(0..n) as u32;
        let j = rng.gen_range(0..n) as u32;
        if i == j {
            continue;
        }
        let (k, l) = (ElementId(i), ElementId(j));
        let r = relative_difference(instance.value(k), instance.value(l));
        if let Some(idx) = buckets.iter().position(|b| b.contains(r)) {
            if out[idx].len() < per_bucket {
                out[idx].push((k, l));
            }
        }
    }
    out
}

/// Majority accuracy per (bucket, voter count) over an oracle.
fn accuracy_matrix<O: crowd_core::oracle::ComparisonOracle>(
    oracle: &mut O,
    instance: &Instance,
    pairs_per_bucket: &[Vec<(ElementId, ElementId)>],
) -> Vec<Vec<f64>> {
    pairs_per_bucket
        .iter()
        .map(|pairs| {
            let mut correct_at = vec![0u64; VOTER_COUNTS.len()];
            for &(k, j) in pairs {
                let truth = if instance.value(k) >= instance.value(j) {
                    k
                } else {
                    j
                };
                let prefix = majority_prefix_correct(oracle, WorkerClass::Naive, k, j, truth, 21);
                for (slot, &v) in VOTER_COUNTS.iter().enumerate() {
                    if prefix[(v - 1) as usize] {
                        correct_at[slot] += 1;
                    }
                }
            }
            correct_at
                .iter()
                .map(|&c| c as f64 / pairs.len().max(1) as f64)
                .collect()
        })
        .collect()
}

fn matrix_to_table(
    id: &str,
    title: &str,
    notes: &str,
    buckets: &[Bucket],
    matrix: &[Vec<f64>],
) -> Table {
    let mut headers = vec!["workers".to_string()];
    headers.extend(buckets.iter().map(Bucket::label));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(id, title, &headers_ref).with_notes(notes);
    for (slot, &v) in VOTER_COUNTS.iter().enumerate() {
        let mut row = vec![v.to_string()];
        for b in matrix {
            row.push(fmt_f64(b[slot], 3));
        }
        t.push_row(row);
    }
    t
}

/// Runs the Figure 2(a) reproduction (DOTS).
pub fn run_dots(scale: &Scale) -> Table {
    let dataset = DotsDataset::paper_grid();
    let instance = dataset.to_instance();
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x2a);
    let pairs = sample_pairs(&instance, &DOTS_BUCKETS, scale.pairs_per_bucket, &mut rng);
    let mut oracle = ModelOracle::new(
        instance.clone(),
        DotsWorkerModel::calibrated(),
        ProbabilisticModel::perfect(),
        StdRng::seed_from_u64(scale.seed ^ 0x2b),
    );
    let matrix = accuracy_matrix(&mut oracle, &instance, &pairs);
    matrix_to_table(
        "fig2a",
        "DOTS: majority accuracy vs number of workers",
        "Expected shape: every bucket climbs towards 1.0 as workers are added \
         (wisdom of crowds); harder buckets start lower and climb slower.",
        &DOTS_BUCKETS,
        &matrix,
    )
}

/// Runs the Figure 2(b) reproduction (CARS).
pub fn run_cars(scale: &Scale) -> Table {
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x2c);
    let catalog = CarsCatalog::paper_default(&mut rng);
    let instance = catalog.to_instance();
    let pairs = sample_pairs(&instance, &CARS_BUCKETS, scale.pairs_per_bucket, &mut rng);
    let mut oracle = ModelOracle::new(
        instance.clone(),
        CarsWorkerModel::calibrated(),
        ProbabilisticModel::perfect(),
        StdRng::seed_from_u64(scale.seed ^ 0x2d),
    );
    let matrix = accuracy_matrix(&mut oracle, &instance, &pairs);
    matrix_to_table(
        "fig2b",
        "CARS: majority accuracy vs number of workers",
        "Expected shape: buckets above 20% relative price difference climb \
         towards 1.0; buckets at or below 20% plateau around 0.6-0.7 — adding \
         workers does not help (the expertise barrier).",
        &CARS_BUCKETS,
        &matrix,
    )
}

/// Parses the final-row accuracies back out of a Figure 2 table (used by
/// tests and the experiment summary). Non-numeric cells and empty tables
/// yield an empty or shorter vector rather than a panic — the caller is
/// reading back a table it may not have produced itself.
pub fn final_accuracies(table: &Table) -> Vec<f64> {
    table.rows.last().map_or_else(Vec::new, |last| {
        last[1..].iter().filter_map(|c| c.parse().ok()).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_classify_correctly() {
        assert!(DOTS_BUCKETS[0].contains(0.0));
        assert!(DOTS_BUCKETS[0].contains(0.1));
        assert!(!DOTS_BUCKETS[0].contains(0.11));
        assert!(DOTS_BUCKETS[3].contains(0.9));
        assert_eq!(DOTS_BUCKETS[0].label(), "[0,0.1]");
        assert_eq!(DOTS_BUCKETS[1].label(), "(0.1,0.2]");
        assert_eq!(DOTS_BUCKETS[3].label(), "(0.3,inf)");
    }

    #[test]
    fn dots_accuracy_converges_with_workers() {
        let t = run_dots(&Scale::quick());
        assert_eq!(t.rows.len(), VOTER_COUNTS.len());
        let finals = final_accuracies(&t);
        // All buckets should end close to 1 with 21 workers.
        for (i, acc) in finals.iter().enumerate() {
            assert!(*acc >= 0.7, "bucket {i} final accuracy {acc}");
        }
        // And the single-worker accuracy must be visibly worse for the
        // hardest bucket.
        let first: f64 = t.rows[0][1].parse().unwrap();
        assert!(first < finals[0] + 0.01, "no improvement from voting");
    }

    #[test]
    fn cars_hard_buckets_plateau() {
        let t = run_cars(&Scale::quick());
        let finals = final_accuracies(&t);
        // The two hard buckets (<= 20%) must NOT converge to 1...
        assert!(finals[0] < 0.9, "hardest bucket converged: {}", finals[0]);
        assert!(finals[1] < 0.95, "second bucket converged: {}", finals[1]);
        // ...while the easy buckets do.
        assert!(finals[2] > 0.8, "(0.2,0.5] should converge: {}", finals[2]);
        assert!(finals[3] > 0.9, "(0.5,inf) should converge: {}", finals[3]);
    }

    #[test]
    fn tables_render() {
        let t = run_dots(&Scale::quick());
        let md = t.to_markdown();
        assert!(md.contains("fig2a"));
        assert!(t.to_csv().lines().count() == VOTER_COUNTS.len() + 1);
    }
}
