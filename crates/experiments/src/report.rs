//! Tabular experiment output: markdown for humans, CSV for plotting.
//!
//! Every experiment module produces one or more [`Table`]s shaped like the
//! corresponding table/figure in the paper, so the reproduction can be
//! eyeballed against the original side by side.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A rendered experiment result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Identifier tying the table to the paper (e.g. `fig3a`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Free-form notes: parameters, expectations, caveats.
    pub notes: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each row must match the header arity.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            notes: String::new(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Attaches notes.
    pub fn with_notes(mut self, notes: &str) -> Self {
        self.notes = notes.to_string();
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row arity does not match the headers.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity {} does not match header arity {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Renders GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        if !self.notes.is_empty() {
            let _ = writeln!(out, "{}\n", self.notes);
        }
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders CSV (headers first; cells containing commas or quotes are
    /// quoted per RFC 4180).
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes `<dir>/<id>.md` and `<dir>/<id>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.md", self.id)), self.to_markdown())?;
        std::fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())?;
        Ok(())
    }
}

/// Formats a float with `digits` decimals, trimming noise.
pub fn fmt_f64(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Renders a table's numeric columns as a rough terminal chart: one row of
/// Unicode bars per data column, scaled to the column maximum (log scale
/// when a column spans more than two decades, matching the paper's
/// log-axis figures).
///
/// Non-numeric columns are skipped. Intended for the `repro` binary's
/// stdout, so the figure *shapes* can be eyeballed without plotting.
pub fn ascii_chart(table: &Table) -> String {
    const BARS: &[char] = &[' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let mut out = String::new();
    let _ = writeln!(out, "{} — {}", table.id, table.title);
    let x_labels: Vec<&str> = table
        .rows
        .iter()
        .map(|r| r.first().map_or("-", String::as_str))
        .collect();
    for (ci, header) in table.headers.iter().enumerate().skip(1) {
        // A row shorter than the header arity (impossible through
        // `push_row`, but `Table` is a plain deserializable struct) just
        // disqualifies the column instead of panicking.
        let values: Option<Vec<f64>> = table
            .rows
            .iter()
            .map(|r| r.get(ci).and_then(|cell| cell.parse::<f64>().ok()))
            .collect();
        let Some(values) = values else { continue };
        if values.is_empty() {
            continue;
        }
        let positive_min = values
            .iter()
            .copied()
            .filter(|v| *v > 0.0)
            .fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let log_scale = positive_min.is_finite() && max / positive_min > 100.0;
        let bars: String = values
            .iter()
            .map(|&v| {
                let frac = if max <= 0.0 {
                    0.0
                } else if log_scale {
                    let lo = positive_min.ln();
                    let hi = max.ln();
                    if v <= 0.0 || hi <= lo {
                        0.0
                    } else {
                        (v.ln() - lo) / (hi - lo)
                    }
                } else {
                    (v / max).clamp(0.0, 1.0)
                };
                BARS[(frac * (BARS.len() - 1) as f64).round() as usize]
            })
            .collect();
        let _ = writeln!(
            out,
            "  {header:<28} |{bars}| max {max:.4}{}",
            if log_scale { "  (log scale)" } else { "" }
        );
    }
    let _ = writeln!(
        out,
        "  {:<28}  x: {} .. {}",
        "",
        x_labels.first().unwrap_or(&"-"),
        x_labels.last().unwrap_or(&"-")
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("fig0", "Sample", &["n", "value"]).with_notes("note");
        t.push_row(vec!["1".into(), "2.5".into()]);
        t.push_row(vec!["2".into(), "3,5".into()]);
        t
    }

    #[test]
    fn markdown_has_header_separator_and_rows() {
        let md = sample().to_markdown();
        assert!(md.contains("### fig0 — Sample"));
        assert!(md.contains("| n | value |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2.5 |"));
        assert!(md.contains("note"));
    }

    #[test]
    fn csv_quotes_commas() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("n,value\n"));
        assert!(csv.contains("\"3,5\""));
    }

    #[test]
    fn csv_escapes_quotes() {
        let mut t = Table::new("x", "t", &["a"]);
        t.push_row(vec!["say \"hi\"".into()]);
        assert!(t.to_csv().contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", "t", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn write_to_creates_both_files() {
        let dir = std::env::temp_dir().join(format!("crowd_report_test_{}", std::process::id()));
        sample().write_to(&dir).unwrap();
        assert!(dir.join("fig0.md").exists());
        assert!(dir.join("fig0.csv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ascii_chart_renders_numeric_columns() {
        let mut t = Table::new("figx", "Chart", &["n", "linear", "loggy", "text"]);
        t.push_row(vec!["1".into(), "1.0".into(), "10".into(), "a".into()]);
        t.push_row(vec!["2".into(), "2.0".into(), "10000".into(), "b".into()]);
        t.push_row(vec!["3".into(), "4.0".into(), "100000".into(), "c".into()]);
        let chart = ascii_chart(&t);
        assert!(chart.contains("linear"));
        assert!(chart.contains("loggy"));
        assert!(chart.contains("(log scale)"));
        assert!(!chart.contains("text"), "non-numeric columns are skipped");
        assert!(chart.contains('█'), "the max must render as a full bar");
        assert!(chart.contains("x: 1 .. 3"));
    }

    #[test]
    fn ascii_chart_handles_flat_and_zero_columns() {
        let mut t = Table::new("figy", "Flat", &["n", "zeros"]);
        t.push_row(vec!["1".into(), "0".into()]);
        t.push_row(vec!["2".into(), "0".into()]);
        let chart = ascii_chart(&t);
        assert!(chart.contains("zeros"));
    }

    #[test]
    fn ascii_chart_tolerates_malformed_tables() {
        // Bypasses `push_row`'s arity check, as a deserialized table could.
        let ragged = Table {
            id: "figz".into(),
            title: "Ragged".into(),
            notes: String::new(),
            headers: vec!["n".into(), "v".into()],
            rows: vec![vec!["1".into(), "2.0".into()], vec![]],
        };
        let chart = ascii_chart(&ragged);
        assert!(chart.contains("figz"), "{chart}");
        let empty = Table::new("fig0", "Empty", &["n", "v"]);
        assert!(ascii_chart(&empty).contains("x: - .. -"));
    }

    #[test]
    fn fmt_f64_rounds() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(2.0, 1), "2.0");
    }
}
