//! Parallel Phase-1 filtering: independent tournament groups fan out
//! across [`engine::parallel_map`] in cache-sized chunks.
//!
//! Algorithm 2's rounds are embarrassingly parallel *within* a round: the
//! groups share no state, so each group's all-play-all tournament can run
//! on its own worker thread. What a shared sequential oracle *does* share
//! is its RNG stream — so this entry point takes an oracle **factory**
//! instead of an oracle: every `(round, group)` pair gets a fresh oracle,
//! deterministically derived from those coordinates alone. Seeding once
//! per group batches the shim-RNG work (one stream set-up per group
//! instead of a lock-stepped global stream) and makes the round's outcome
//! independent of scheduling: results are joined in group order, so the
//! output is **byte-identical at any `--jobs` count**.
//!
//! The execution is batch-first: each group's comparisons are generated
//! into a flat pair buffer and answered through one
//! [`ComparisonOracle::compare_batch`] call, so per-comparison bookkeeping
//! (tally-sink feeding, dynamic dispatch through decorator stacks) is
//! amortized to once per group. Groups are packed into chunks of roughly
//! `CHUNK_COMPARISONS` comparisons; a chunk is one `parallel_map` work
//! item, so work-item bookkeeping and `crowd-obs` segment capture/replay
//! cost once per chunk rather than once per group. Chunk boundaries are
//! invisible in the output: every group still plays under its own
//! coordinate-seeded oracle, in group order.
//!
//! The price is a different (but equally valid) random realization than
//! [`filter_candidates`](crowd_core::algorithms::filter_candidates) would produce with one sequential oracle — the
//! two agree exactly whenever the oracle is deterministic (e.g.
//! [`PerfectOracle`](crowd_core::oracle::PerfectOracle), or a threshold
//! model that never reaches a tie-break), which the tests pin down.
//!
//! Comparison tallies still flow to the installed
//! [`TallySink`](crowd_core::trace::TallySink) stack: worker threads
//! inherit the spawner's sinks through [`engine::parallel_map`].

use crate::engine;
use crowd_core::algorithms::{FilterConfig, FilterOutcome};
use crowd_core::element::ElementId;
use crowd_core::model::WorkerClass;
use crowd_core::oracle::{ComparisonCounts, ComparisonOracle};

/// Target comparisons per parallel work item. Each chunk's flat pair and
/// winner buffers stay around a megabyte (inside L2), while a chunk is
/// large enough that thread hand-off, segment capture, and per-chunk
/// buffer growth are noise against the comparison work it carries.
const CHUNK_COMPARISONS: usize = 128 * 1024;

/// Derives the seed for one filter group from a base seed and the group's
/// `(round, group)` coordinates, via two rounds of SplitMix64 avalanching.
/// Benches and tests share this so parallel runs are reproducible from a
/// single base seed.
pub fn group_seed(base: u64, round: u32, group: u32) -> u64 {
    mix(mix(base ^ (u64::from(round) << 32)) ^ u64::from(group))
}

/// SplitMix64 finalizer: avalanche a 64-bit word.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The merged results of one chunk of consecutive groups, joined back in
/// chunk (= group) order.
struct ChunkResult {
    /// Positions (into the round's survivor list) that met the threshold,
    /// in group order.
    winners: Vec<u32>,
    /// One champion per played group (earliest most-winning member).
    champions: Vec<u32>,
    /// `(winner, loser)` index pairs, recorded only under
    /// [`FilterConfig::track_global_losses`].
    games: Vec<(u32, u32)>,
    /// Comparisons the chunk's oracles answered.
    comparisons: ComparisonCounts,
}

/// Reusable per-chunk scratch: flat comparison/answer/win buffers shared
/// by every group in the chunk, so a group costs zero allocations once
/// the buffers have grown to group size.
#[derive(Default)]
struct ChunkBuffers {
    /// The group's members resolved to element ids once, so the O(|G|²)
    /// build and tally passes index a dense local table instead of
    /// gathering `ids[group[x]]` per pair.
    gids: Vec<ElementId>,
    pairs: Vec<(ElementId, ElementId)>,
    answers: Vec<ElementId>,
    wins: Vec<u32>,
}

/// Runs Algorithm 2 with the round's tournament groups spread over worker
/// threads in cache-sized chunks.
///
/// `make_oracle(round, group)` must build the oracle for that group from
/// its coordinates alone (typically: seed an RNG with [`group_seed`]) —
/// that is what makes the outcome independent of the job count. Groups,
/// thresholds, the kept-whole small last group, global-loss pruning and
/// the champion fallback all match [`filter_candidates`]; see the module
/// docs for when the two produce identical output.
///
/// [`filter_candidates`]: crowd_core::algorithms::filter_candidates
///
/// # Panics
///
/// Panics if `config.un == 0`, like the sequential filter.
pub fn parallel_filter_candidates<O, F>(
    make_oracle: F,
    elements: &[ElementId],
    config: &FilterConfig,
) -> FilterOutcome
where
    O: ComparisonOracle,
    F: Fn(u32, u32) -> O + Sync,
{
    assert!(
        config.un >= 1,
        "un(n) >= 1: the maximum is indistinguishable from itself"
    );
    let un = config.un;
    let g = 4 * un;
    let n = elements.len();

    let mut losses: Vec<Vec<u32>> = if config.track_global_losses {
        vec![Vec::new(); n]
    } else {
        Vec::new()
    };

    let mut survivors: Vec<u32> = (0..n as u32).collect();
    let mut sizes = vec![survivors.len()];
    let mut rounds = 0usize;
    let mut comparisons = ComparisonCounts::zero();

    while survivors.len() >= 2 * un {
        let round = rounds as u32;
        let groups = survivors.len().div_ceil(g);

        // The kept-whole small last group plays no games; every group
        // before it is played.
        let mut inline_tail: &[u32] = &[];
        let mut playable = groups;
        let last = &survivors[(groups - 1) * g..];
        if last.len() <= un {
            inline_tail = last;
            playable = groups - 1;
        }

        // Pack consecutive groups into chunks of ~CHUNK_COMPARISONS
        // comparisons each, capped so every worker still sees several
        // chunks (load balance beats cache residency when rounds are
        // small). Chunk boundaries never change the output: each group
        // plays under its own coordinate-seeded oracle either way.
        let per_group = (g * g.saturating_sub(1)) / 2;
        let by_cache = (CHUNK_COMPARISONS / per_group.max(1)).max(1);
        let by_balance = playable.div_ceil(engine::jobs().max(1) * 4).max(1);
        let chunk_len = by_cache.min(by_balance);
        let chunks: Vec<(u32, u32)> = (0..playable as u32)
            .step_by(chunk_len)
            .map(|lo| (lo, (lo + chunk_len as u32).min(playable as u32)))
            .collect();

        let survivor_slice: &[u32] = &survivors;
        let results = engine::parallel_map(chunks, |(lo, hi)| {
            let mut out = ChunkResult {
                winners: Vec::new(),
                champions: Vec::new(),
                games: Vec::new(),
                comparisons: ComparisonCounts::zero(),
            };
            let mut buffers = ChunkBuffers::default();
            for ci in lo..hi {
                let group = &survivor_slice
                    [ci as usize * g..((ci as usize + 1) * g).min(survivor_slice.len())];
                let mut oracle = make_oracle(round, ci);
                let start = oracle.counts();
                play_group(
                    &mut oracle,
                    elements,
                    group,
                    un,
                    config.track_global_losses,
                    &mut buffers,
                    &mut out,
                );
                out.comparisons += oracle
                    .counts()
                    .delta_since(start)
                    .unwrap_or_else(|e| panic!("{e}"));
            }
            out
        });

        let mut next: Vec<u32> = Vec::with_capacity(survivors.len() / 2 + un);
        let mut champions: Vec<u32> = Vec::new();
        for r in &results {
            next.extend_from_slice(&r.winners);
            champions.extend_from_slice(&r.champions);
            comparisons += r.comparisons;
            for &(winner, loser) in &r.games {
                let set = &mut losses[loser as usize];
                if set.len() <= un && !set.contains(&winner) {
                    set.push(winner);
                }
            }
        }
        next.extend_from_slice(inline_tail);
        champions.extend_from_slice(inline_tail);

        if config.track_global_losses {
            next.retain(|&i| losses[i as usize].len() <= un);
        }
        if next.is_empty() {
            next = champions;
        }
        assert!(
            next.len() < survivors.len(),
            "filter round failed to shrink the survivor set (Lemma 2 violated)"
        );
        survivors = next;
        sizes.push(survivors.len());
        rounds += 1;
    }

    FilterOutcome {
        survivors: survivors
            .into_iter()
            .map(|i| elements[i as usize])
            .collect(),
        rounds,
        sizes,
        comparisons,
    }
}

/// Plays one group's all-play-all tournament batch-first: the group's
/// comparisons are generated into the chunk's flat pair buffer in the
/// canonical `(a, b)` order, answered through one
/// [`ComparisonOracle::compare_batch`] call, and tallied against the flat
/// win counts — the `|G| − un` survival threshold keeps winners in group
/// order, appended to `out`.
fn play_group<O: ComparisonOracle>(
    oracle: &mut O,
    ids: &[ElementId],
    group: &[u32],
    un: usize,
    record_games: bool,
    buffers: &mut ChunkBuffers,
    out: &mut ChunkResult,
) {
    buffers.gids.clear();
    buffers.gids.extend(group.iter().map(|&i| ids[i as usize]));
    buffers.pairs.clear();
    buffers.answers.clear();
    buffers.wins.clear();
    buffers.wins.resize(group.len(), 0);
    for a in 0..group.len() {
        let a_id = buffers.gids[a];
        buffers
            .pairs
            .extend(buffers.gids[a + 1..].iter().map(|&b| (a_id, b)));
    }
    oracle.compare_batch(WorkerClass::Naive, &buffers.pairs, &mut buffers.answers);

    let mut game = 0usize;
    if record_games {
        for a in 0..group.len() {
            let a_id = buffers.gids[a];
            for b in (a + 1)..group.len() {
                let winner = buffers.answers[game];
                game += 1;
                if winner == a_id {
                    buffers.wins[a] += 1;
                    out.games.push((group[a], group[b]));
                } else {
                    buffers.wins[b] += 1;
                    out.games.push((group[b], group[a]));
                }
            }
        }
    } else {
        // The hot shape: tallying a 50/50 data-dependent winner with a
        // branch mispredicts constantly, so count both sides
        // arithmetically over bounds-check-free row slices (which also
        // lets the compiler vectorize the row compare).
        for a in 0..group.len() {
            let a_id = buffers.gids[a];
            let row_len = group.len() - a - 1;
            let row = &buffers.answers[game..game + row_len];
            let opponents = &mut buffers.wins[a + 1..];
            let mut a_wins = 0u32;
            for (w, &winner) in opponents.iter_mut().zip(row) {
                let a_won = u32::from(winner == a_id);
                a_wins += a_won;
                *w += 1 - a_won;
            }
            game += row_len;
            buffers.wins[a] += a_wins;
        }
    }

    let threshold = (group.len() - un) as u32;
    out.winners.extend(
        group
            .iter()
            .zip(&buffers.wins)
            .filter(|&(_, &w)| w >= threshold)
            .map(|(&i, _)| i),
    );
    // Earliest most-winning member, matching `Tournament::champion`.
    let mut champion: Option<u32> = None;
    let mut best_wins = 0u32;
    for (&i, &w) in group.iter().zip(&buffers.wins) {
        if champion.is_none() || w > best_wins {
            champion = Some(i);
            best_wins = w;
        }
    }
    out.champions.extend(champion);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_core::element::Instance;
    use crowd_core::model::{ExpertModel, TiePolicy};
    use crowd_core::oracle::{PerfectOracle, SimulatedOracle};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_instance(n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        Instance::new((0..n).map(|_| rng.gen_range(0.0..1000.0)).collect())
    }

    #[test]
    fn matches_sequential_filter_under_a_deterministic_oracle() {
        for un in [2usize, 3, 7] {
            let inst = uniform_instance(500, un as u64);
            let cfg = FilterConfig::new(un);
            let mut o = PerfectOracle::new(inst.clone());
            let seq = crowd_core::algorithms::filter_candidates(&mut o, &inst.ids(), &cfg);
            let par = parallel_filter_candidates(
                |_, _| PerfectOracle::new(inst.clone()),
                &inst.ids(),
                &cfg,
            );
            assert_eq!(seq, par, "un = {un}");
        }
    }

    #[test]
    fn byte_identical_at_any_job_count() {
        let inst = uniform_instance(600, 42);
        let delta_n = 25.0;
        let un = inst.indistinguishable_from_max(delta_n).max(1);
        let model = ExpertModel::exact(delta_n, 1.0, TiePolicy::UniformRandom);
        let run = |cfg: FilterConfig| {
            parallel_filter_candidates(
                |round, group| {
                    SimulatedOracle::new(
                        inst.clone(),
                        model.clone(),
                        StdRng::seed_from_u64(group_seed(7, round, group)),
                    )
                },
                &inst.ids(),
                &cfg,
            )
        };
        for cfg in [
            FilterConfig::new(un),
            FilterConfig::new(un).with_global_losses(),
        ] {
            engine::set_jobs(1);
            let serial = run(cfg);
            engine::set_jobs(4);
            let parallel = run(cfg);
            engine::set_jobs(0);
            assert_eq!(serial, parallel);
            assert!(serial.survivors.contains(&inst.max_element()));
        }
    }

    #[test]
    fn short_final_group_threshold_scales_in_the_parallel_path_too() {
        let mut values: Vec<f64> = (0..20).map(f64::from).collect();
        values[15] = 1000.0;
        let inst = Instance::new(values);
        let out = parallel_filter_candidates(
            |_, _| PerfectOracle::new(inst.clone()),
            &inst.ids(),
            &FilterConfig::new(3),
        );
        assert!(out.survivors.contains(&inst.max_element()));
    }

    #[test]
    fn group_seed_is_sensitive_to_both_coordinates() {
        let a = group_seed(1, 0, 0);
        assert_ne!(a, group_seed(1, 0, 1));
        assert_ne!(a, group_seed(1, 1, 0));
        assert_ne!(a, group_seed(2, 0, 0));
        assert_eq!(a, group_seed(1, 0, 0));
    }

    /// A borrowed-instance factory (the bench's shape): oracles borrow one
    /// shared instance instead of cloning it per group.
    #[test]
    fn borrowed_instance_factory_matches_the_owning_one() {
        let inst = uniform_instance(400, 9);
        let delta_n = 30.0;
        let un = inst.indistinguishable_from_max(delta_n).max(1);
        let model = ExpertModel::exact(delta_n, 1.0, TiePolicy::UniformRandom);
        let cfg = FilterConfig::new(un);
        let owning = parallel_filter_candidates(
            |round, group| {
                SimulatedOracle::new(
                    inst.clone(),
                    model.clone(),
                    StdRng::seed_from_u64(group_seed(3, round, group)),
                )
            },
            &inst.ids(),
            &cfg,
        );
        let borrowing = parallel_filter_candidates(
            |round, group| {
                SimulatedOracle::new(
                    &inst,
                    model.clone(),
                    StdRng::seed_from_u64(group_seed(3, round, group)),
                )
            },
            &inst.ids(),
            &cfg,
        );
        assert_eq!(owning, borrowing);
    }
}
