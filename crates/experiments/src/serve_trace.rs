//! Span-log analysis for crowd-serve: waterfalls and latency attribution.
//!
//! The service emits one deterministic span tree per completed job (see
//! `crowd_obs::span`); this module turns a `spans.jsonl` into the two
//! artifacts an operator actually reads:
//!
//! * an **attribution table** — per tenant × pipeline stage, how many of
//!   the tenant's latency ticks that stage accounts for. The rows sum to
//!   *exactly* the tenant's total job latency: the span layer attributes
//!   every tick a job stays alive to exactly one stage, and
//!   [`analyze`] refuses a log where any job's books don't balance;
//! * per-job **ASCII waterfalls** — the `[start, end)` bounds of each
//!   stage drawn on the job's own tick axis, worst-latency jobs first.
//!
//! [`demo_twin_logs`] drives the canonical sweep scenario through an
//! uninterrupted run and a killed-then-resumed run and returns both span
//! logs; the `serve_trace` binary writes them to two artifact trees that
//! CI diffs byte-for-byte.

use crate::report::Table;
use crate::serve_sweep;
use crowd_obs::{install_recorder, stage_label, Recorder, Span, SpanLog, Stage};
use crowd_platform::serve::{ArrivalPlan, CrowdServe, ServeKill, ServeReport};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One job's reconstructed trace: the boundary ticks plus its stage spans
/// (markers excluded), in canonical stage order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobTrace {
    /// The owning tenant.
    pub tenant: u32,
    /// The service-assigned job id.
    pub job: u64,
    /// Submission tick (the `Admission` marker).
    pub submitted: u64,
    /// Completion tick (the `Completion` marker).
    pub completed: u64,
    /// The job's non-marker spans, in canonical order.
    pub stages: Vec<Span>,
}

impl JobTrace {
    /// Submission-to-completion latency, in ticks.
    pub fn latency(&self) -> u64 {
        self.completed - self.submitted
    }
}

/// A fully reconciled span log, ready for rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceAnalysis {
    /// Every traced job, sorted by `(tenant, job)`.
    pub jobs: Vec<JobTrace>,
    /// Aggregate ticks per `(tenant, stage)`, stages in pipeline order.
    pub stage_ticks: BTreeMap<(u32, Stage), (u64, u64)>,
}

/// Reconstructs per-job traces and the aggregate attribution from a span
/// log, enforcing the accounting invariant first.
///
/// # Errors
///
/// Returns the reconciliation violations (one message per broken job)
/// when any job's stage ticks fail to sum to its latency or a marker is
/// missing — an analyzer that renders unbalanced books would lie.
pub fn analyze(log: &SpanLog) -> Result<TraceAnalysis, Vec<String>> {
    log.reconcile()?;
    let mut jobs: BTreeMap<(u32, u64), JobTrace> = BTreeMap::new();
    for span in &log.spans {
        let trace = jobs.entry((span.tenant, span.job)).or_insert(JobTrace {
            tenant: span.tenant,
            job: span.job,
            submitted: 0,
            completed: 0,
            stages: Vec::new(),
        });
        match span.stage {
            Stage::Admission => trace.submitted = span.start,
            Stage::Completion => trace.completed = span.start,
            _ => trace.stages.push(*span),
        }
    }
    let mut stage_ticks: BTreeMap<(u32, Stage), (u64, u64)> = BTreeMap::new();
    for trace in jobs.values() {
        for span in &trace.stages {
            let slot = stage_ticks
                .entry((span.tenant, span.stage))
                .or_insert((0, 0));
            slot.0 += 1;
            slot.1 += span.ticks;
        }
    }
    Ok(TraceAnalysis {
        jobs: jobs.into_values().collect(),
        stage_ticks,
    })
}

impl TraceAnalysis {
    /// Total latency ticks across a tenant's jobs (the attribution
    /// table's row sums must reproduce this exactly).
    pub fn tenant_latency(&self, tenant: u32) -> u64 {
        self.jobs
            .iter()
            .filter(|j| j.tenant == tenant)
            .map(JobTrace::latency)
            .sum()
    }

    /// The aggregate attribution table: per tenant × stage, the jobs the
    /// stage touched, the ticks it accounts for, and its share of the
    /// tenant's total latency in basis points.
    pub fn attribution_table(&self) -> Table {
        let mut t = Table::new(
            "serve_trace",
            "crowd-serve latency attribution: ticks per tenant × pipeline stage",
            &["tenant", "stage", "jobs", "ticks", "share bps"],
        )
        .with_notes(
            "Every tick between a job's submission and completion is \
             attributed to exactly one stage, so each tenant's `ticks` \
             column sums to the tenant's total job latency and its `share \
             bps` column sums to 10000 (give or take integer rounding). \
             The analyzer refuses logs where any job's books don't \
             balance.",
        );
        let tenants: Vec<u32> = {
            let mut v: Vec<u32> = self.jobs.iter().map(|j| j.tenant).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        for tenant in tenants {
            let total = self.tenant_latency(tenant);
            for stage in Stage::ALL {
                let Some((jobs, ticks)) = self.stage_ticks.get(&(tenant, stage)) else {
                    continue;
                };
                let share = match (ticks * 10_000).checked_div(total) {
                    Some(bps) => bps.to_string(),
                    None => "-".to_string(),
                };
                t.push_row(vec![
                    tenant.to_string(),
                    stage_label(stage).to_string(),
                    jobs.to_string(),
                    ticks.to_string(),
                    share,
                ]);
            }
            t.push_row(vec![
                tenant.to_string(),
                "total".to_string(),
                self.jobs
                    .iter()
                    .filter(|j| j.tenant == tenant)
                    .count()
                    .to_string(),
                total.to_string(),
                if total == 0 {
                    "-".into()
                } else {
                    "10000".into()
                },
            ]);
        }
        t
    }

    /// Draws one job's waterfall: each stage's `[start, end)` bounds on
    /// the job's own tick axis, one character per tick (scaled down when
    /// the latency exceeds `width` columns).
    pub fn waterfall(trace: &JobTrace, width: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let latency = trace.latency().max(1);
        let cols = (latency as usize).min(width.max(8));
        let scale = |tick: u64| -> usize {
            ((tick - trace.submitted) as usize * cols / latency as usize).min(cols)
        };
        let _ = writeln!(
            out,
            "tenant {} job {}: ticks {}..{} (latency {})",
            trace.tenant,
            trace.job,
            trace.submitted,
            trace.completed,
            trace.latency()
        );
        for span in &trace.stages {
            let (a, b) = (
                scale(span.start),
                scale(span.end).max(scale(span.start) + 1),
            );
            let mut bar = String::with_capacity(cols);
            for c in 0..cols {
                bar.push(if c >= a && c < b { '#' } else { '.' });
            }
            let _ = writeln!(
                out,
                "  {:<18} |{bar}| {}",
                stage_label(span.stage),
                span.ticks
            );
        }
        out
    }

    /// Renders the full human-readable report: the attribution table
    /// followed by waterfalls for the `max_waterfalls` slowest jobs.
    pub fn render_report(&self, max_waterfalls: usize) -> String {
        let mut out = self.attribution_table().to_markdown();
        if max_waterfalls == 0 {
            return out;
        }
        let mut slowest: Vec<&JobTrace> = self.jobs.iter().collect();
        slowest.sort_by_key(|j| (std::cmp::Reverse(j.latency()), j.tenant, j.job));
        out.push_str("\n```\n");
        for trace in slowest.into_iter().take(max_waterfalls) {
            out.push_str(&Self::waterfall(trace, 60));
        }
        out.push_str("```\n");
        out
    }
}

/// Ticks generous enough that the demo scenario drains naturally.
const MAX_TICKS: u64 = 600;

/// The canonical trace scenario: the sweep's double-load arrival process
/// against its breakers-on faulty config — overload, queueing, retries,
/// and degradations all appear in the span log.
pub fn demo_plan(seed: u64) -> ArrivalPlan {
    let (num, den) = serve_sweep::rate_for(1);
    ArrivalPlan::new(seed ^ 0xA1, num, den, 48, 2)
        .with_catalog(4, 9)
        .with_deadline(40)
}

/// Runs the canonical scenario uninterrupted and returns its span log
/// with the service report.
pub fn demo_run(seed: u64) -> (SpanLog, ServeReport) {
    let rec = Arc::new(Recorder::new());
    let report = {
        let _guard = install_recorder(rec.clone());
        let mut service =
            CrowdServe::new(serve_sweep::config_for(0), seed).expect("config is valid");
        service
            .run(&demo_plan(seed), MAX_TICKS)
            .expect("no chaos: cannot crash")
    };
    (rec.span_log(), report)
}

/// Runs the canonical scenario twice — uninterrupted, and killed mid-tick
/// then resumed from the durable journal — and returns both span logs.
/// The two must serialize byte-identically: spans carry no recovery
/// bookkeeping, so resume reproduces the uninterrupted log exactly.
pub fn demo_twin_logs(seed: u64) -> (SpanLog, SpanLog) {
    let (baseline, _) = demo_run(seed);

    // The doomed leg's spans die with the crash; record them privately.
    let durable = {
        let _guard = install_recorder(Arc::new(Recorder::new()));
        let mut doomed = CrowdServe::new(serve_sweep::config_for(0), seed)
            .expect("config is valid")
            .with_chaos(ServeKill::MidTick(2 + seed % 5));
        let _ = doomed.run(&demo_plan(seed), MAX_TICKS);
        doomed.journal().durable().to_vec()
    };
    let rec = Arc::new(Recorder::new());
    {
        let _guard = install_recorder(rec.clone());
        CrowdServe::resume(
            serve_sweep::config_for(0),
            seed,
            &demo_plan(seed),
            &durable,
            MAX_TICKS,
        )
        .expect("the journal resumes");
    }
    (baseline, rec.span_log())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_attributes_every_latency_tick() {
        let (log, report) = demo_run(17);
        let analysis = analyze(&log).expect("a real run reconciles");
        assert_eq!(analysis.jobs.len(), report.jobs.len());

        // 100% attribution, checked against the report: per tenant, the
        // attribution rows sum to exactly the summed job latencies.
        let mut per_tenant: BTreeMap<u32, u64> = BTreeMap::new();
        for job in &report.jobs {
            *per_tenant.entry(job.tenant.0).or_insert(0) += job.latency_ticks();
        }
        assert!(!per_tenant.is_empty());
        for (tenant, latency) in per_tenant {
            assert_eq!(
                analysis.tenant_latency(tenant),
                latency,
                "tenant {tenant}: attribution must equal report latency"
            );
            let attributed: u64 = analysis
                .stage_ticks
                .iter()
                .filter(|((t, _), _)| *t == tenant)
                .map(|(_, (_, ticks))| ticks)
                .sum();
            assert_eq!(attributed, latency, "tenant {tenant}: 100% of latency");
        }
    }

    #[test]
    fn attribution_table_rows_balance() {
        let (log, _) = demo_run(19);
        let table = analyze(&log).expect("reconciles").attribution_table();
        assert!(!table.rows.is_empty());
        // Per tenant: the stage rows' ticks sum to the total row's ticks.
        let mut sums: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for row in &table.rows {
            let slot = sums.entry(row[0].clone()).or_insert((0, 0));
            let ticks: u64 = row[3].parse().expect("ticks column is numeric");
            if row[1] == "total" {
                slot.1 = ticks;
            } else {
                slot.0 += ticks;
            }
        }
        for (tenant, (stages, total)) in sums {
            assert_eq!(stages, total, "tenant {tenant} rows must balance");
        }
    }

    #[test]
    fn analyzer_refuses_unbalanced_books() {
        let (log, _) = demo_run(23);
        // Drop one non-marker span with ticks: its job's books no longer
        // balance, and the analyzer must say so rather than render.
        let victim = log
            .spans
            .iter()
            .position(|s| s.ticks > 0 && !matches!(s.stage, Stage::Admission | Stage::Completion))
            .expect("a real run has attributed ticks");
        let mut spans = log.spans.clone();
        spans.remove(victim);
        let bad = analyze(&SpanLog::from_spans(spans)).expect_err("missing ticks");
        assert!(!bad.is_empty());
    }

    #[test]
    fn twin_logs_serialize_byte_identically() {
        let (uninterrupted, resumed) = demo_twin_logs(29);
        assert!(!uninterrupted.is_empty());
        assert_eq!(uninterrupted.to_jsonl(), resumed.to_jsonl());
    }

    #[test]
    fn report_renders_waterfalls_for_the_slowest_jobs() {
        let (log, _) = demo_run(31);
        let analysis = analyze(&log).expect("reconciles");
        let report = analysis.render_report(3);
        assert!(report.contains("serve_trace"), "{report}");
        assert!(report.contains("share bps"), "{report}");
        assert!(report.contains("latency"), "{report}");
        // Three waterfall headers, one per job.
        assert!(report.matches("tenant ").count() >= 3, "{report}");
        // No waterfalls requested → table only.
        let table_only = analysis.render_report(0);
        assert!(!table_only.contains("```"), "{table_only}");
    }
}
