//! Budget sweep — what naïve money can and cannot buy.
//!
//! Two sweeps sharing one table, quantifying the paper's central message
//! from the budget angle (the Mo et al. \[23\] problem from the related
//! work):
//!
//! * under the **probabilistic** model (DOTS-like), accuracy improves
//!   steadily with budget: the planner deepens the per-question majority
//!   as money allows;
//! * under the **threshold** model (CARS-like), accuracy saturates at the
//!   wall set by `δn` — past a modest budget, every extra dollar is
//!   wasted, and only experts (not money) move the needle.

use crate::report::{fmt_f64, Table};
use crate::scale::Scale;
use crowd_core::budget::budgeted_max_scan;
use crowd_core::element::Instance;
use crowd_core::model::{ExpertModel, TiePolicy};
use crowd_core::oracle::SimulatedOracle;
use crowd_core::stats::RunningStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Budgets to sweep (naïve votes).
pub const BUDGETS: [u64; 5] = [200, 1_000, 5_000, 25_000, 125_000];

fn uniform_instance(n: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    Instance::new((0..n).map(|_| rng.gen_range(0.0..1_000_000.0)).collect())
}

/// Average true rank of the budgeted scan under the probabilistic model
/// with per-vote error `p`.
///
/// # Panics
///
/// Panics if `p >= 0.5`: majority amplification has no plan at or above a
/// fair coin. The sweep grids stay strictly below that, so this is a
/// caller precondition, not a runtime fault path.
pub fn probabilistic_rank(n: usize, p: f64, budget: u64, trials: u64, seed: u64) -> f64 {
    let mut stats = RunningStats::new();
    for t in 0..trials {
        let inst = uniform_instance(n, seed ^ (t << 16));
        let model = ExpertModel::new(0.0, p, 0.0, 0.0, TiePolicy::UniformRandom);
        let mut oracle = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed + t));
        let out = budgeted_max_scan(&mut oracle, &inst.ids(), budget, p)
            .expect("p < 1/2 always has a plan");
        stats.push(inst.rank(out.winner) as f64);
    }
    stats.mean()
}

/// Average true rank of the budgeted scan under the threshold model with
/// discernment `delta` (the scan plans as if the residual sub-threshold
/// error were `p_planning`).
///
/// # Panics
///
/// Panics if `p_planning >= 0.5` (see [`probabilistic_rank`]).
pub fn threshold_rank(
    n: usize,
    delta: f64,
    p_planning: f64,
    budget: u64,
    trials: u64,
    seed: u64,
) -> f64 {
    let mut stats = RunningStats::new();
    for t in 0..trials {
        let inst = uniform_instance(n, seed ^ (t << 16));
        let model = ExpertModel::exact(delta, delta, TiePolicy::UniformRandom);
        let mut oracle = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed + t));
        let out = budgeted_max_scan(&mut oracle, &inst.ids(), budget, p_planning)
            .expect("planning error < 1/2");
        stats.push(inst.rank(out.winner) as f64);
    }
    stats.mean()
}

/// Runs the sweep.
pub fn run(scale: &Scale) -> Table {
    let n = 500;
    let trials = scale.trials.max(5);
    let p = 0.35;
    let delta = 20_000.0; // ~10 elements indistinguishable from the max

    let mut t = Table::new(
        "budget_sweep",
        &format!("Budgeted naive max-finding: average rank vs budget (n={n}, p={p}, δn={delta})"),
        &["budget", "probabilistic model", "threshold model"],
    )
    .with_notes(
        "Probabilistic (DOTS-like) workers: rank improves steadily with \
         budget. Threshold (CARS-like) workers: rank saturates at the δn \
         wall — money cannot replace expertise.",
    );
    for &b in &BUDGETS {
        t.push_row(vec![
            b.to_string(),
            fmt_f64(probabilistic_rank(n, p, b, trials, scale.seed ^ 0xb1), 2),
            fmt_f64(threshold_rank(n, delta, p, b, trials, scale.seed ^ 0xb2), 2),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilistic_accuracy_improves_with_budget() {
        let poor = probabilistic_rank(300, 0.35, 400, 10, 1);
        let rich = probabilistic_rank(300, 0.35, 60_000, 10, 1);
        assert!(
            rich < poor,
            "a 150x budget should buy accuracy: poor {poor}, rich {rich}"
        );
        assert!(
            rich < 4.0,
            "a rich probabilistic scan should nearly nail it: {rich}"
        );
    }

    #[test]
    fn threshold_accuracy_saturates() {
        // Between a solid and a huge budget, the threshold model barely
        // moves: the δn wall.
        let solid = threshold_rank(300, 40_000.0, 0.35, 20_000, 12, 2);
        let huge = threshold_rank(300, 40_000.0, 0.35, 150_000, 12, 2);
        assert!(
            huge + 3.0 > solid,
            "threshold accuracy should saturate: solid {solid}, huge {huge}"
        );
        // And it saturates *above* perfect: the wall is real.
        assert!(
            huge > 1.5,
            "the δn wall should keep the rank above ~un/2: {huge}"
        );
    }

    #[test]
    fn table_has_all_budgets() {
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), BUDGETS.len());
    }
}
