//! Figure 5 — average monetary cost `C(n)` as a function of `n`, with
//! `cn = 1` and `ce ∈ {10, 20, 50}`, for the three approaches (six panels:
//! three expert prices × two `(un, ue)` settings).
//!
//! Expected shape: 2-MaxFind-naïve is always cheapest (but inaccurate —
//! see Figure 3); Algorithm 1 beats 2-MaxFind-expert once `ce/cn` is
//! large and/or `n` is large, with the crossover around `ce/cn ≈ 10`.

use crate::harness::{average_rank, Approach};
use crate::report::{fmt_f64, Table};
use crate::scale::Scale;
use crowd_core::cost::CostModel;
use crowd_core::oracle::ComparisonCounts;

/// The paper's expert-price sweep.
pub const EXPERT_PRICES: [f64; 3] = [10.0, 20.0, 50.0];

/// Gathers average comparison counts per approach per `n` (shared with
/// Figure 7's cost computation).
pub fn average_counts(scale: &Scale, un: usize, ue: usize) -> Vec<(usize, [ComparisonCounts; 3])> {
    scale
        .n_grid
        .iter()
        .map(|&n| {
            let counts = [
                average_rank(
                    Approach::TwoMaxFindExpert,
                    n,
                    un,
                    ue,
                    1.0,
                    scale.trials,
                    scale.seed,
                )
                .1,
                average_rank(Approach::Alg1, n, un, ue, 1.0, scale.trials, scale.seed).1,
                average_rank(
                    Approach::TwoMaxFindNaive,
                    n,
                    un,
                    ue,
                    1.0,
                    scale.trials,
                    scale.seed,
                )
                .1,
            ];
            (n, counts)
        })
        .collect()
}

/// Builds one cost panel from pre-measured counts.
pub fn panel_from_counts(
    id: &str,
    un: usize,
    ue: usize,
    ce: f64,
    counts: &[(usize, [ComparisonCounts; 3])],
) -> Table {
    let prices = CostModel::with_ratio(ce);
    let mut t = Table::new(
        id,
        &format!("Average cost C(n), cn=1, ce={ce}, un={un}, ue={ue}"),
        &["n", "2-MaxFind-expert", "Alg 1", "2-MaxFind-naive"],
    )
    .with_notes(
        "Expected: naive cheapest (but inaccurate); Alg 1 undercuts \
         2-MaxFind-expert as ce/cn and n grow (crossover near ce/cn = 10).",
    );
    for (n, per_approach) in counts {
        t.push_row(vec![
            n.to_string(),
            fmt_f64(prices.cost(per_approach[0]), 0),
            fmt_f64(prices.cost(per_approach[1]), 0),
            fmt_f64(prices.cost(per_approach[2]), 0),
        ]);
    }
    t
}

/// Runs all six panels (fig5a–fig5f, ordered as in the paper: rows by
/// `ce`, columns by setting). Counts are measured once per setting and
/// re-priced per panel.
pub fn run(scale: &Scale) -> Vec<Table> {
    let measured: Vec<_> = crate::fig3::SETTINGS
        .iter()
        .map(|&(un, ue)| (un, ue, average_counts(scale, un, ue)))
        .collect();
    let mut tables = Vec::with_capacity(6);
    let mut panel = 'a';
    for &ce in &EXPERT_PRICES {
        for (un, ue, counts) in &measured {
            tables.push(panel_from_counts(
                &format!("fig5{panel}"),
                *un,
                *ue,
                ce,
                counts,
            ));
            panel = (panel as u8 + 1) as char;
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs(t: &Table, col: usize) -> Vec<f64> {
        t.rows.iter().map(|r| r[col].parse().unwrap()).collect()
    }

    #[test]
    fn high_expert_price_favors_alg1() {
        // At ce = 50 and the larger n of the quick grid, Alg 1 should be
        // cheaper than 2-MaxFind-expert.
        let scale = Scale::quick();
        let counts = average_counts(&scale, 10, 5);
        let t = panel_from_counts("fig5x", 10, 5, 50.0, &counts);
        let expert = costs(&t, 1);
        let alg1 = costs(&t, 2);
        let last = expert.len() - 1;
        assert!(
            alg1[last] < expert[last],
            "Alg 1 ({}) should undercut 2-MaxFind-expert ({}) at ce=50",
            alg1[last],
            expert[last]
        );
    }

    #[test]
    fn naive_baseline_is_cheapest() {
        let scale = Scale::quick();
        let counts = average_counts(&scale, 10, 5);
        let t = panel_from_counts("fig5y", 10, 5, 10.0, &counts);
        for row in &t.rows {
            let expert: f64 = row[1].parse().unwrap();
            let naive: f64 = row[3].parse().unwrap();
            assert!(
                naive <= expert,
                "naive {naive} not cheapest vs expert {expert}"
            );
        }
    }

    #[test]
    fn costs_scale_with_expert_price() {
        let scale = Scale::quick();
        let counts = average_counts(&scale, 10, 5);
        let t10 = panel_from_counts("a", 10, 5, 10.0, &counts);
        let t50 = panel_from_counts("b", 10, 5, 50.0, &counts);
        let e10 = costs(&t10, 1);
        let e50 = costs(&t50, 1);
        for (a, b) in e10.iter().zip(&e50) {
            assert!(
                (b / a - 5.0).abs() < 1e-9,
                "expert-only cost must scale by ce"
            );
        }
    }

    #[test]
    fn run_emits_six_panels() {
        let tables = run(&Scale::quick());
        assert_eq!(tables.len(), 6);
        assert_eq!(tables[0].id, "fig5a");
        assert_eq!(tables[5].id, "fig5f");
    }
}
