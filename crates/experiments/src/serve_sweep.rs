//! Overload sweep of the crowd-serve service layer: offered load crossed
//! with the circuit-breaker layer, measuring what the service sheds, what
//! it degrades, and proving kill+resume equivalence in every cell.
//!
//! Each trial drives a two-tenant [`CrowdServe`] with a seeded arrival
//! process at one of two offered loads — *half* capacity (every job
//! admits and completes cleanly) and *double* capacity (the token buckets
//! and the bounded queue must shed) — with the per-worker circuit
//! breakers either enabled or disabled. A mildly faulty naive shard makes
//! the breaker column meaningful: with breakers on, failure streaks
//! quarantine workers and the `trips` column is nonzero.
//!
//! Every trial also re-runs itself killed mid-tick by [`ServeKill`] and
//! resumed from the durable write-ahead journal; `resume identical`
//! counts trials whose resumed run matched the uninterrupted one on the
//! report, the final journal bytes, *and* the event stream (after
//! dropping the recovery bookkeeping events). It must equal `trials` in
//! every row.
//!
//! Expected shape: the half-load rows shed little or nothing and
//! complete almost everything cleanly; the double-load rows shed hard, and every admitted job
//! still terminates — either clean or labelled with an explicit
//! degradation reason. No row may hang, panic, or fail to resume.

use crate::engine;
use crate::report::Table;
use crate::scale::Scale;
use crowd_core::model::WorkerClass;
use crowd_obs::{install_recorder, Event, Recorder};
use crowd_platform::fault::{FaultConfig, LatencyModel};
use crowd_platform::serve::{
    ArrivalPlan, BreakerPolicy, CachePolicy, CrowdServe, ServeConfig, ServeKill, ServeReport,
    ShardSpec, SloPolicy, TenantId, TenantPolicy,
};
use std::sync::Arc;

/// Offered-load labels, in sweep order: arrival rate as a fraction of
/// what the shard windows and token buckets can absorb.
pub const LOADS: [&str; 2] = ["0.5x", "2x"];

/// Breaker-layer labels, in sweep order.
pub const BREAKERS: [&str; 2] = ["on", "off"];

/// Arrival rate (jobs per tick, as `num/den`) for a load index.
pub(crate) fn rate_for(load: usize) -> (u64, u64) {
    match load {
        0 => (1, 2), // one job every other tick: well under capacity
        _ => (3, 1), // three jobs per tick: roughly double capacity
    }
}

/// The swept service config: two tenants with tight budgets, two naive
/// shards (one mildly faulty) and a small expert shard.
pub(crate) fn config_for(breakers: usize) -> ServeConfig {
    let policy = if breakers == 0 {
        BreakerPolicy::default_on()
    } else {
        BreakerPolicy::disabled()
    };
    ServeConfig::basic()
        .with_tenants(vec![
            TenantPolicy::new(TenantId(0), 400, 8),
            TenantPolicy::new(TenantId(1), 200, 4),
        ])
        .with_shards(vec![
            ShardSpec::honest(WorkerClass::Naive, 12, 36).with_fault(
                FaultConfig::none()
                    .with_no_answer(0.10)
                    .with_abandon(0.05)
                    .with_latency(LatencyModel::Geometric { p: 0.7, cap: 6 })
                    .with_timeout_steps(4),
            ),
            ShardSpec::honest(WorkerClass::Naive, 12, 36),
            ShardSpec::honest(WorkerClass::Expert, 4, 12),
        ])
        .with_queue_cap(4)
        .with_breaker(policy)
        // Tight enough that queue-driven latency shows up as SLO burn:
        // a completion slower than 10 ticks is bad, 20% of a 64-tick
        // window may be bad before the tenant's objective breaches.
        .with_slo(
            SloPolicy::default_on()
                .with_latency_objective(10)
                .with_bad_budget_bps(2_000),
        )
}

/// What one sweep trial established.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeTrialOutcome {
    /// The uninterrupted run's service-wide report.
    pub report: ServeReport,
    /// Jobs that completed with no degradation label.
    pub completed_ok: u64,
    /// Per-reason degradation tallies, summed over tenants:
    /// `(deadline, expert, budget, dead_letters)`.
    pub degraded: (u64, u64, u64, u64),
    /// Worst per-tenant p99 job latency, in ticks.
    pub p99_latency_ticks: u64,
    /// SLO breach transitions, summed over tenants.
    pub slo_breaches: u64,
    /// Worst per-tenant error-budget burn, in basis points.
    pub slo_burn_max_bps: u32,
    /// The killed-and-resumed run matched the uninterrupted one on the
    /// report, the final journal bytes, the event stream, and the span
    /// log.
    pub resume_identical: bool,
}

/// Ticks generous enough that every swept run drains naturally.
const MAX_TICKS: u64 = 600;

fn is_recovery_event(event: &Event) -> bool {
    matches!(
        event,
        Event::RecoveryStarted { .. } | Event::RecoveryCompleted { .. }
    )
}

/// Runs one trial: uninterrupted baseline, a mid-tick kill of the same
/// run, resume from the durable journal, and the equivalence check.
pub fn run_trial(load: usize, breakers: usize, base_seed: u64, t: u64) -> ServeTrialOutcome {
    let (num, den) = rate_for(load);
    let seed = base_seed ^ t.wrapping_mul(0x9E37_79B9);
    let plan = ArrivalPlan::new(seed ^ 0xA1, num, den, 48, 2)
        .with_catalog(4, 9)
        .with_deadline(40);
    let config = config_for(breakers);

    // Leg 1: uninterrupted baseline.
    let base_rec = Arc::new(Recorder::new());
    let (base_report, base_journal) = {
        let _guard = install_recorder(base_rec.clone());
        let mut service = CrowdServe::new(config.clone(), seed).expect("config is valid");
        let report = service
            .run(&plan, MAX_TICKS)
            .expect("no chaos: cannot crash");
        (report, service.journal().durable().to_vec())
    };

    // Leg 2: the same run killed mid-tick; only durable bytes survive.
    let durable = {
        let _guard = install_recorder(Arc::new(Recorder::new()));
        let mut doomed = CrowdServe::new(config.clone(), seed)
            .expect("config is valid")
            .with_chaos(ServeKill::MidTick(2 + t % 5));
        let _ = doomed.run(&plan, MAX_TICKS);
        doomed.journal().durable().to_vec()
    };

    // Leg 3: resume from the wreckage and compare every channel.
    let resumed_rec = Arc::new(Recorder::new());
    let resume_identical = {
        let _guard = install_recorder(resumed_rec.clone());
        match CrowdServe::resume(config, seed, &plan, &durable, MAX_TICKS) {
            Ok((report, resumed)) => {
                let events: Vec<Event> = resumed_rec
                    .events()
                    .into_iter()
                    .filter(|e| !is_recovery_event(e))
                    .collect();
                report == base_report
                    && resumed.journal().durable() == &base_journal[..]
                    && events == base_rec.events()
                    && resumed_rec.span_log() == base_rec.span_log()
            }
            Err(_) => false,
        }
    };

    let completed_ok = base_report.tenants.iter().map(|t| t.completed_ok).sum();
    let degraded = base_report.tenants.iter().fold((0, 0, 0, 0), |acc, t| {
        (
            acc.0 + t.degraded_deadline,
            acc.1 + t.degraded_expert,
            acc.2 + t.degraded_budget,
            acc.3 + t.degraded_dead_letters,
        )
    });
    let p99_latency_ticks = base_report
        .tenants
        .iter()
        .map(|t| t.p99_latency_ticks)
        .max()
        .unwrap_or(0);
    let slo_breaches = base_report.tenants.iter().map(|t| t.slo_breaches).sum();
    let slo_burn_max_bps = base_report
        .tenants
        .iter()
        .map(|t| t.slo_burn_max_bps)
        .max()
        .unwrap_or(0);
    ServeTrialOutcome {
        report: base_report,
        completed_ok,
        degraded,
        p99_latency_ticks,
        slo_breaches,
        slo_burn_max_bps,
        resume_identical,
    }
}

/// One aggregated sweep cell: a load level with the breaker layer on or
/// off, summed over trials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSweepRow {
    /// Index into [`LOADS`].
    pub load: usize,
    /// Index into [`BREAKERS`].
    pub breakers: usize,
    /// Trials run in this cell.
    pub trials: u64,
    /// Jobs offered (submitted) across trials.
    pub offered: u64,
    /// Jobs admitted (immediately or via the queue).
    pub admitted: u64,
    /// Jobs shed by admission control.
    pub shed: u64,
    /// Jobs completed with no degradation label.
    pub completed_ok: u64,
    /// Degradations: deadline lapsed.
    pub deg_deadline: u64,
    /// Degradations: expert pool exhausted (crowd fallback).
    pub deg_expert: u64,
    /// Degradations: reserved comparison budget exhausted.
    pub deg_budget: u64,
    /// Degradations: a pair dead-lettered mid-tournament.
    pub deg_dead_letters: u64,
    /// Circuit-breaker trips.
    pub trips: u64,
    /// Worst per-tenant p99 job latency seen in any trial, in ticks.
    pub p99_latency_ticks: u64,
    /// SLO breach transitions across trials and tenants.
    pub slo_breaches: u64,
    /// Worst per-tenant error-budget burn seen in any trial, in bps.
    pub slo_burn_max_bps: u32,
    /// Comparisons charged across tenants.
    pub comparisons: u64,
    /// Trials whose killed-and-resumed run matched the uninterrupted one
    /// byte-for-byte (must equal `trials`).
    pub resume_identical: u64,
}

/// Sweeps [`LOADS`] × [`BREAKERS`], `trials` trials per cell. Trials fan
/// out over the parallel engine; aggregation stays in
/// `(load, breakers, trial)` order, so rows are identical at any
/// `--jobs` count.
pub fn sweep(trials: u64, base_seed: u64) -> Vec<ServeSweepRow> {
    let items: Vec<(usize, usize, u64)> = (0..LOADS.len())
        .flat_map(|l| (0..BREAKERS.len()).flat_map(move |b| (0..trials).map(move |t| (l, b, t))))
        .collect();
    let outcomes = engine::parallel_map(items, |(l, b, t)| run_trial(l, b, base_seed, t));
    let per_cell = trials as usize;
    (0..LOADS.len())
        .flat_map(|l| (0..BREAKERS.len()).map(move |b| (l, b)))
        .enumerate()
        .map(|(cell, (l, b))| {
            let slice = &outcomes[cell * per_cell..(cell + 1) * per_cell];
            let mut row = ServeSweepRow {
                load: l,
                breakers: b,
                trials,
                offered: 0,
                admitted: 0,
                shed: 0,
                completed_ok: 0,
                deg_deadline: 0,
                deg_expert: 0,
                deg_budget: 0,
                deg_dead_letters: 0,
                trips: 0,
                p99_latency_ticks: 0,
                slo_breaches: 0,
                slo_burn_max_bps: 0,
                comparisons: 0,
                resume_identical: 0,
            };
            for o in slice {
                for tenant in &o.report.tenants {
                    row.offered += tenant.offered;
                    row.admitted += tenant.admitted;
                }
                row.shed += o.report.shed;
                row.completed_ok += o.completed_ok;
                row.deg_deadline += o.degraded.0;
                row.deg_expert += o.degraded.1;
                row.deg_budget += o.degraded.2;
                row.deg_dead_letters += o.degraded.3;
                row.trips += o.report.breaker_trips;
                row.p99_latency_ticks = row.p99_latency_ticks.max(o.p99_latency_ticks);
                row.slo_breaches += o.slo_breaches;
                row.slo_burn_max_bps = row.slo_burn_max_bps.max(o.slo_burn_max_bps);
                row.comparisons += o.report.comparisons;
                row.resume_identical += u64::from(o.resume_identical);
            }
            row
        })
        .collect()
}

/// Runs the sweep at experiment scale.
pub fn run(scale: &Scale) -> Table {
    // Each trial is three full service runs (baseline, doomed, resumed);
    // a handful per cell keeps the four-cell sweep in seconds.
    let trials = scale.trials.clamp(2, 6);
    let rows = sweep(trials, scale.seed ^ 0x5E);

    let mut t = Table::new(
        "serve_sweep",
        &format!(
            "crowd-serve overload sweep: offered load × circuit breakers, \
             {trials} trials per cell (48 jobs/trial, 2 tenants, \
             3 shards, queue cap 4)"
        ),
        &[
            "load",
            "breakers",
            "trials",
            "offered",
            "admitted",
            "shed",
            "completed ok",
            "deg deadline",
            "deg expert",
            "deg budget",
            "deg dead-letter",
            "breaker trips",
            "p99 ticks",
            "slo breaches",
            "slo burn bps",
            "comparisons",
            "resume identical",
        ],
    )
    .with_notes(
        "Every offered job is either admitted or shed; every admitted job \
         terminates clean or with an explicit degradation label — \
         `admitted = completed ok + the four degradation columns` in every \
         row, and nothing hangs. The double-load rows must shed; the \
         half-load rows shed little or nothing. `resume identical` counts trials whose \
         mid-tick-killed run, resumed from the write-ahead journal, \
         matched the uninterrupted run on the report, the final journal \
         bytes, the event stream, and the causal span log — it must equal \
         `trials` everywhere. \
         Breaker trips appear only in the `on` rows (the faulty shard \
         produces failure streaks); with breakers off the same faults are \
         retried blindly instead of quarantined. `slo breaches` counts \
         per-tenant SLO breach transitions (sliding-window bad-completion \
         rate over the error budget) and `slo burn bps` the worst window \
         burn observed; overload shows up here before it shows up in \
         averages.",
    );
    for row in &rows {
        t.push_row(vec![
            LOADS[row.load].to_string(),
            BREAKERS[row.breakers].to_string(),
            row.trials.to_string(),
            row.offered.to_string(),
            row.admitted.to_string(),
            row.shed.to_string(),
            row.completed_ok.to_string(),
            row.deg_deadline.to_string(),
            row.deg_expert.to_string(),
            row.deg_budget.to_string(),
            row.deg_dead_letters.to_string(),
            row.trips.to_string(),
            row.p99_latency_ticks.to_string(),
            row.slo_breaches.to_string(),
            row.slo_burn_max_bps.to_string(),
            row.comparisons.to_string(),
            row.resume_identical.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Overlap axis: the judgment cache against shared catalogs.
// ---------------------------------------------------------------------

/// Catalog-overlap percentages swept by [`run_overlap`], in sweep order.
pub const OVERLAPS: [u32; 3] = [0, 50, 100];

/// Shared-universe size for the overlap sweep. Small enough that a 48-job
/// trial at 50% overlap re-draws each universe item many times — the
/// regime where cross-job reuse pays.
const OVERLAP_UNIVERSE: u32 = 5;

/// The overlap-swept config: fault-free honest shards (so the true
/// winner is judged in every cell and recall comparisons are exact) and
/// budgets generous enough that nothing sheds — both cache legs then
/// admit the identical job set and winners compare one-to-one.
fn overlap_config(cache: CachePolicy) -> ServeConfig {
    ServeConfig::basic()
        .with_tenants(vec![
            TenantPolicy::new(TenantId(0), 100_000, 200),
            TenantPolicy::new(TenantId(1), 100_000, 200),
        ])
        .with_shards(vec![
            ShardSpec::honest(WorkerClass::Naive, 12, 36),
            ShardSpec::honest(WorkerClass::Naive, 12, 36),
            ShardSpec::honest(WorkerClass::Expert, 4, 12),
        ])
        .with_queue_cap(16)
        .with_cache(cache)
}

/// What one overlap trial established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlapTrialOutcome {
    /// Jobs completed (identical in both legs by construction).
    pub jobs: u64,
    /// Comparisons charged with the cache disabled.
    pub comparisons_off: u64,
    /// Comparisons charged with the cache enabled.
    pub comparisons_on: u64,
    /// Cache hits in the enabled leg.
    pub cache_hits: u64,
    /// Jobs whose winner matched between the two legs.
    pub winners_identical: u64,
    /// Jobs (summed over both legs) whose winner is the catalog's true
    /// maximum — recall, which the cache must not change.
    pub recall_ok: u64,
    /// At zero overlap only: the cache-on report equals the cache-off
    /// report *and* the journals are byte-identical after the config
    /// header. Vacuously true at nonzero overlap.
    pub off_on_identical: bool,
    /// The cache-on run killed mid-tick and resumed from the journal —
    /// through a rebuilt, warm cache — matched the uninterrupted run.
    pub resume_identical: bool,
}

/// Runs one overlap trial: a cache-off leg, a cache-on leg, the
/// equivalence checks between them, and a kill+resume of the cache-on
/// leg.
pub fn run_overlap_trial(overlap: usize, base_seed: u64, t: u64) -> OverlapTrialOutcome {
    let percent = OVERLAPS[overlap];
    let seed = base_seed ^ t.wrapping_mul(0x9E37_79B9);
    let plan = ArrivalPlan::new(seed ^ 0xC3, 1, 2, 48, 2)
        .with_catalog(4, 9)
        .with_deadline(64)
        .with_overlap(percent, OVERLAP_UNIVERSE);

    let run_leg = |config: ServeConfig| {
        let rec = Arc::new(Recorder::new());
        let _guard = install_recorder(rec.clone());
        let mut service = CrowdServe::new(config, seed).expect("config is valid");
        let report = service
            .run(&plan, MAX_TICKS)
            .expect("no chaos: cannot crash");
        let cache = service.cache_stats();
        let journal = service.journal().durable().to_vec();
        (report, cache, journal, rec.events())
    };
    let (off_report, _, off_journal, off_events) = run_leg(overlap_config(CachePolicy::disabled()));
    let (on_report, on_cache, on_journal, on_events) =
        run_leg(overlap_config(CachePolicy::default_on()));

    // Winner equivalence, job by job. Nothing sheds at this load, so
    // both legs complete the same job ids in some order.
    let winners = |r: &ServeReport| {
        let mut w: Vec<(u64, u32)> = r.jobs.iter().map(|j| (j.job.0, j.winner.0)).collect();
        w.sort_unstable();
        w
    };
    let (off_w, on_w) = (winners(&off_report), winners(&on_report));
    let winners_identical = off_w.iter().zip(&on_w).filter(|(a, b)| a == b).count() as u64;

    // Recall: honest fault-free shards judge every distinguishable pair
    // correctly, so each leg's winner must be the catalog's true max.
    let recall = |r: &ServeReport| {
        r.jobs
            .iter()
            .filter(|j| {
                let spec = plan.spec(j.job.0);
                let best = (0..spec.values.len() as u32)
                    .max_by(|a, b| {
                        spec.values[*a as usize]
                            .partial_cmp(&spec.values[*b as usize])
                            .expect("catalog values are finite")
                    })
                    .expect("catalogs are non-empty");
                j.winner.0 == best
            })
            .count() as u64
    };
    let recall_ok = recall(&off_report) + recall(&on_report);

    // Zero overlap: turning the cache on must be invisible — same
    // report, and byte-identical journals after the `Started` header
    // (its config digest covers the cache policy, so the header frame
    // legitimately differs).
    let body = |journal: &[u8]| -> Vec<u8> {
        let header_end = journal.iter().position(|b| *b == b'\n').expect("framed") + 1;
        journal[header_end..].to_vec()
    };
    let off_on_identical = percent != 0
        || (off_report == on_report
            && body(&off_journal) == body(&on_journal)
            && off_events == on_events);

    // Kill the cache-on leg mid-tick and resume: the rebuilt (warm)
    // cache must reproduce every hit, so the resumed run matches the
    // uninterrupted one on report, journal bytes, and events.
    let durable = {
        let _guard = install_recorder(Arc::new(Recorder::new()));
        let mut doomed = CrowdServe::new(overlap_config(CachePolicy::default_on()), seed)
            .expect("config is valid")
            .with_chaos(ServeKill::MidTick(2 + t % 5));
        let _ = doomed.run(&plan, MAX_TICKS);
        doomed.journal().durable().to_vec()
    };
    let resumed_rec = Arc::new(Recorder::new());
    let resume_identical = {
        let _guard = install_recorder(resumed_rec.clone());
        match CrowdServe::resume(
            overlap_config(CachePolicy::default_on()),
            seed,
            &plan,
            &durable,
            MAX_TICKS,
        ) {
            Ok((report, resumed)) => {
                let events: Vec<Event> = resumed_rec
                    .events()
                    .into_iter()
                    .filter(|e| !is_recovery_event(e))
                    .collect();
                report == on_report
                    && resumed.journal().durable() == &on_journal[..]
                    && events == on_events
            }
            Err(_) => false,
        }
    };

    OverlapTrialOutcome {
        jobs: off_report.jobs.len() as u64,
        comparisons_off: off_report.comparisons,
        comparisons_on: on_report.comparisons,
        cache_hits: on_cache.hits,
        winners_identical,
        recall_ok,
        off_on_identical,
        resume_identical,
    }
}

/// One aggregated overlap row, summed over trials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlapRow {
    /// Index into [`OVERLAPS`].
    pub overlap: usize,
    /// Trials run in this cell.
    pub trials: u64,
    /// Jobs completed per leg across trials.
    pub jobs: u64,
    /// Comparisons charged, cache off.
    pub comparisons_off: u64,
    /// Comparisons charged, cache on.
    pub comparisons_on: u64,
    /// Cache hits across trials.
    pub cache_hits: u64,
    /// Jobs whose winner matched between legs (must equal `jobs`).
    pub winners_identical: u64,
    /// Winner-is-true-max checks passed, both legs (must be `2·jobs`).
    pub recall_ok: u64,
    /// Trials passing the zero-overlap invisibility check (vacuous at
    /// nonzero overlap; must equal `trials`).
    pub off_on_identical: u64,
    /// Trials whose warm-cache kill+resume matched (must equal `trials`).
    pub resume_identical: u64,
}

/// Sweeps [`OVERLAPS`], `trials` trials per cell, cache-on vs cache-off.
pub fn overlap_sweep(trials: u64, base_seed: u64) -> Vec<OverlapRow> {
    let items: Vec<(usize, u64)> = (0..OVERLAPS.len())
        .flat_map(|o| (0..trials).map(move |t| (o, t)))
        .collect();
    let outcomes = engine::parallel_map(items, |(o, t)| run_overlap_trial(o, base_seed, t));
    let per_cell = trials as usize;
    (0..OVERLAPS.len())
        .map(|o| {
            let slice = &outcomes[o * per_cell..(o + 1) * per_cell];
            let mut row = OverlapRow {
                overlap: o,
                trials,
                jobs: 0,
                comparisons_off: 0,
                comparisons_on: 0,
                cache_hits: 0,
                winners_identical: 0,
                recall_ok: 0,
                off_on_identical: 0,
                resume_identical: 0,
            };
            for o in slice {
                row.jobs += o.jobs;
                row.comparisons_off += o.comparisons_off;
                row.comparisons_on += o.comparisons_on;
                row.cache_hits += o.cache_hits;
                row.winners_identical += o.winners_identical;
                row.recall_ok += o.recall_ok;
                row.off_on_identical += u64::from(o.off_on_identical);
                row.resume_identical += u64::from(o.resume_identical);
            }
            row
        })
        .collect()
}

/// Runs the overlap sweep at experiment scale.
pub fn run_overlap(scale: &Scale) -> Table {
    let trials = scale.trials.clamp(2, 6);
    let rows = overlap_sweep(trials, scale.seed ^ 0xCA);

    let mut t = Table::new(
        "serve_overlap",
        &format!(
            "crowd-serve judgment-cache sweep: catalog overlap × cache \
             on/off, {trials} trials per cell (48 jobs/trial, 2 tenants, \
             fault-free shards, shared universe of {OVERLAP_UNIVERSE} items)"
        ),
        &[
            "overlap %",
            "trials",
            "jobs",
            "comparisons off",
            "comparisons on",
            "saved bps",
            "cache hits",
            "winners identical",
            "recall ok",
            "off/on identical",
            "resume identical",
        ],
    )
    .with_notes(
        "Cost falls monotonically with overlap while recall is unchanged: \
         `comparisons on` never exceeds `comparisons off`, shrinks as the \
         overlap percentage grows, and every job's winner is the \
         catalog's true maximum in both legs (`recall ok = 2 × jobs`, \
         `winners identical = jobs`). At 0% overlap the cache is \
         invisible — the cache-on run's report, journal body, and event \
         stream are byte-identical to the cache-off run's (`off/on \
         identical = trials`; the column is vacuously true elsewhere). \
         `resume identical` kills the cache-on run mid-tick and resumes \
         it from the write-ahead journal through a rebuilt, warm cache — \
         it must equal `trials` in every row.",
    );
    for row in &rows {
        let saved_bps = if row.comparisons_off == 0 {
            "-".to_string()
        } else {
            let saved = row.comparisons_off - row.comparisons_on.min(row.comparisons_off);
            ((saved * 10_000 + row.comparisons_off / 2) / row.comparisons_off).to_string()
        };
        t.push_row(vec![
            OVERLAPS[row.overlap].to_string(),
            row.trials.to_string(),
            row.jobs.to_string(),
            row.comparisons_off.to_string(),
            row.comparisons_on.to_string(),
            saved_bps,
            row.cache_hits.to_string(),
            row.winners_identical.to_string(),
            row.recall_ok.to_string(),
            row.off_on_identical.to_string(),
            row.resume_identical.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_resumes_identically_at_both_loads() {
        for (load, label) in LOADS.iter().enumerate() {
            let o = run_trial(load, 0, 41, 0);
            assert!(o.resume_identical, "load {label}: {o:?}");
        }
    }

    #[test]
    fn overload_sheds_and_underload_does_not() {
        let under = run_trial(0, 0, 43, 1);
        let over = run_trial(1, 0, 43, 1);
        assert_eq!(under.report.shed, 0, "half load must not shed: {under:?}");
        assert!(over.report.shed > 0, "double load must shed: {over:?}");
    }

    #[test]
    fn admitted_jobs_are_fully_accounted() {
        let o = run_trial(1, 0, 47, 2);
        let admitted: u64 = o.report.tenants.iter().map(|t| t.admitted).sum();
        let (d0, d1, d2, d3) = o.degraded;
        assert_eq!(
            admitted,
            o.completed_ok + d0 + d1 + d2 + d3,
            "every admitted job completes clean or labelled: {o:?}"
        );
    }

    #[test]
    fn zero_overlap_makes_the_cache_invisible() {
        let o = run_overlap_trial(0, 51, 0);
        assert!(o.off_on_identical, "{o:?}");
        assert_eq!(o.cache_hits, 0, "{o:?}");
        assert_eq!(o.comparisons_on, o.comparisons_off, "{o:?}");
        assert_eq!(o.winners_identical, o.jobs, "{o:?}");
        assert_eq!(o.recall_ok, 2 * o.jobs, "{o:?}");
        assert!(o.resume_identical, "{o:?}");
    }

    #[test]
    fn high_overlap_cuts_cost_without_touching_recall() {
        let o = run_overlap_trial(1, 51, 0); // 50% overlap
        assert!(o.cache_hits > 0, "{o:?}");
        assert!(
            o.comparisons_on * 4 <= o.comparisons_off * 3,
            "50% overlap must save at least a quarter of the comparisons: {o:?}"
        );
        assert_eq!(o.winners_identical, o.jobs, "{o:?}");
        assert_eq!(o.recall_ok, 2 * o.jobs, "{o:?}");
        assert!(o.resume_identical, "warm-cache resume must match: {o:?}");
    }

    #[test]
    fn cost_falls_monotonically_with_overlap() {
        let rows = overlap_sweep(2, 53);
        assert_eq!(rows.len(), OVERLAPS.len());
        for pair in rows.windows(2) {
            assert!(
                pair[1].comparisons_on <= pair[0].comparisons_on,
                "more overlap must not cost more: {pair:?}"
            );
        }
        for row in &rows {
            assert_eq!(row.winners_identical, row.jobs, "{row:?}");
            assert_eq!(row.recall_ok, 2 * row.jobs, "{row:?}");
            assert_eq!(row.off_on_identical, row.trials, "{row:?}");
            assert_eq!(row.resume_identical, row.trials, "{row:?}");
        }
    }

    #[test]
    fn overlap_table_shape() {
        let t = run_overlap(&Scale::quick());
        assert_eq!(t.rows.len(), OVERLAPS.len());
        for row in &t.rows {
            assert_eq!(row[10], row[1], "resume must be identical: {row:?}");
            assert_eq!(row[9], row[1], "off/on gate must pass: {row:?}");
        }
        let md = t.to_markdown();
        assert!(md.contains("cache hits"), "{md}");
    }

    #[test]
    fn slo_monitoring_fires_deterministically_in_the_sweep() {
        let rows = sweep(3, Scale::quick().seed ^ 0x5E);
        for row in &rows {
            assert!(
                row.slo_breaches > 0,
                "every cell queues enough to breach the 10-tick objective: {row:?}"
            );
            assert!(
                row.slo_burn_max_bps > 2_000,
                "a breach implies burn above the error budget: {row:?}"
            );
        }
        // Double load burns at least as hot as half load (shedding keeps
        // admitted-job latency bounded, but the survivors run closer to
        // the edge), and the whole table is reproducible.
        let burn = |load: usize| {
            rows.iter()
                .filter(|r| r.load == load)
                .map(|r| r.slo_burn_max_bps)
                .max()
                .unwrap_or(0)
        };
        assert!(burn(1) >= burn(0), "{rows:?}");
        assert_eq!(rows, sweep(3, Scale::quick().seed ^ 0x5E));
    }

    #[test]
    fn table_shape() {
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), LOADS.len() * BREAKERS.len());
        for row in &t.rows {
            // resume identical == trials in every cell.
            assert_eq!(row[16], row[2], "resume must be identical: {row:?}");
            // offered == admitted + shed.
            let offered: u64 = row[3].parse().unwrap();
            let admitted: u64 = row[4].parse().unwrap();
            let shed: u64 = row[5].parse().unwrap();
            assert_eq!(offered, admitted + shed, "{row:?}");
        }
        let md = t.to_markdown();
        assert!(md.contains("breaker trips"), "{md}");
    }
}
