//! Overload sweep of the crowd-serve service layer: offered load crossed
//! with the circuit-breaker layer, measuring what the service sheds, what
//! it degrades, and proving kill+resume equivalence in every cell.
//!
//! Each trial drives a two-tenant [`CrowdServe`] with a seeded arrival
//! process at one of two offered loads — *half* capacity (every job
//! admits and completes cleanly) and *double* capacity (the token buckets
//! and the bounded queue must shed) — with the per-worker circuit
//! breakers either enabled or disabled. A mildly faulty naive shard makes
//! the breaker column meaningful: with breakers on, failure streaks
//! quarantine workers and the `trips` column is nonzero.
//!
//! Every trial also re-runs itself killed mid-tick by [`ServeKill`] and
//! resumed from the durable write-ahead journal; `resume identical`
//! counts trials whose resumed run matched the uninterrupted one on the
//! report, the final journal bytes, *and* the event stream (after
//! dropping the recovery bookkeeping events). It must equal `trials` in
//! every row.
//!
//! Expected shape: the half-load rows shed little or nothing and
//! complete almost everything cleanly; the double-load rows shed hard, and every admitted job
//! still terminates — either clean or labelled with an explicit
//! degradation reason. No row may hang, panic, or fail to resume.

use crate::engine;
use crate::report::Table;
use crate::scale::Scale;
use crowd_core::model::WorkerClass;
use crowd_obs::{install_recorder, Event, Recorder};
use crowd_platform::fault::{FaultConfig, LatencyModel};
use crowd_platform::serve::{
    ArrivalPlan, BreakerPolicy, CrowdServe, ServeConfig, ServeKill, ServeReport, ShardSpec,
    TenantId, TenantPolicy,
};
use std::sync::Arc;

/// Offered-load labels, in sweep order: arrival rate as a fraction of
/// what the shard windows and token buckets can absorb.
pub const LOADS: [&str; 2] = ["0.5x", "2x"];

/// Breaker-layer labels, in sweep order.
pub const BREAKERS: [&str; 2] = ["on", "off"];

/// Arrival rate (jobs per tick, as `num/den`) for a load index.
fn rate_for(load: usize) -> (u64, u64) {
    match load {
        0 => (1, 2), // one job every other tick: well under capacity
        _ => (3, 1), // three jobs per tick: roughly double capacity
    }
}

/// The swept service config: two tenants with tight budgets, two naive
/// shards (one mildly faulty) and a small expert shard.
fn config_for(breakers: usize) -> ServeConfig {
    let policy = if breakers == 0 {
        BreakerPolicy::default_on()
    } else {
        BreakerPolicy::disabled()
    };
    ServeConfig::basic()
        .with_tenants(vec![
            TenantPolicy::new(TenantId(0), 400, 8),
            TenantPolicy::new(TenantId(1), 200, 4),
        ])
        .with_shards(vec![
            ShardSpec::honest(WorkerClass::Naive, 12, 36).with_fault(
                FaultConfig::none()
                    .with_no_answer(0.10)
                    .with_abandon(0.05)
                    .with_latency(LatencyModel::Geometric { p: 0.7, cap: 6 })
                    .with_timeout_steps(4),
            ),
            ShardSpec::honest(WorkerClass::Naive, 12, 36),
            ShardSpec::honest(WorkerClass::Expert, 4, 12),
        ])
        .with_queue_cap(4)
        .with_breaker(policy)
}

/// What one sweep trial established.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeTrialOutcome {
    /// The uninterrupted run's service-wide report.
    pub report: ServeReport,
    /// Jobs that completed with no degradation label.
    pub completed_ok: u64,
    /// Per-reason degradation tallies, summed over tenants:
    /// `(deadline, expert, budget, dead_letters)`.
    pub degraded: (u64, u64, u64, u64),
    /// Worst per-tenant p99 job latency, in ticks.
    pub p99_latency_ticks: u64,
    /// The killed-and-resumed run matched the uninterrupted one on the
    /// report, the final journal bytes, and the event stream.
    pub resume_identical: bool,
}

/// Ticks generous enough that every swept run drains naturally.
const MAX_TICKS: u64 = 600;

fn is_recovery_event(event: &Event) -> bool {
    matches!(
        event,
        Event::RecoveryStarted { .. } | Event::RecoveryCompleted { .. }
    )
}

/// Runs one trial: uninterrupted baseline, a mid-tick kill of the same
/// run, resume from the durable journal, and the equivalence check.
pub fn run_trial(load: usize, breakers: usize, base_seed: u64, t: u64) -> ServeTrialOutcome {
    let (num, den) = rate_for(load);
    let seed = base_seed ^ t.wrapping_mul(0x9E37_79B9);
    let plan = ArrivalPlan::new(seed ^ 0xA1, num, den, 48, 2)
        .with_catalog(4, 9)
        .with_deadline(40);
    let config = config_for(breakers);

    // Leg 1: uninterrupted baseline.
    let base_rec = Arc::new(Recorder::new());
    let (base_report, base_journal) = {
        let _guard = install_recorder(base_rec.clone());
        let mut service = CrowdServe::new(config.clone(), seed).expect("config is valid");
        let report = service
            .run(&plan, MAX_TICKS)
            .expect("no chaos: cannot crash");
        (report, service.journal().durable().to_vec())
    };

    // Leg 2: the same run killed mid-tick; only durable bytes survive.
    let durable = {
        let _guard = install_recorder(Arc::new(Recorder::new()));
        let mut doomed = CrowdServe::new(config.clone(), seed)
            .expect("config is valid")
            .with_chaos(ServeKill::MidTick(2 + t % 5));
        let _ = doomed.run(&plan, MAX_TICKS);
        doomed.journal().durable().to_vec()
    };

    // Leg 3: resume from the wreckage and compare every channel.
    let resumed_rec = Arc::new(Recorder::new());
    let resume_identical = {
        let _guard = install_recorder(resumed_rec.clone());
        match CrowdServe::resume(config, seed, &plan, &durable, MAX_TICKS) {
            Ok((report, resumed)) => {
                let events: Vec<Event> = resumed_rec
                    .events()
                    .into_iter()
                    .filter(|e| !is_recovery_event(e))
                    .collect();
                report == base_report
                    && resumed.journal().durable() == &base_journal[..]
                    && events == base_rec.events()
            }
            Err(_) => false,
        }
    };

    let completed_ok = base_report.tenants.iter().map(|t| t.completed_ok).sum();
    let degraded = base_report.tenants.iter().fold((0, 0, 0, 0), |acc, t| {
        (
            acc.0 + t.degraded_deadline,
            acc.1 + t.degraded_expert,
            acc.2 + t.degraded_budget,
            acc.3 + t.degraded_dead_letters,
        )
    });
    let p99_latency_ticks = base_report
        .tenants
        .iter()
        .map(|t| t.p99_latency_ticks)
        .max()
        .unwrap_or(0);
    ServeTrialOutcome {
        report: base_report,
        completed_ok,
        degraded,
        p99_latency_ticks,
        resume_identical,
    }
}

/// One aggregated sweep cell: a load level with the breaker layer on or
/// off, summed over trials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSweepRow {
    /// Index into [`LOADS`].
    pub load: usize,
    /// Index into [`BREAKERS`].
    pub breakers: usize,
    /// Trials run in this cell.
    pub trials: u64,
    /// Jobs offered (submitted) across trials.
    pub offered: u64,
    /// Jobs admitted (immediately or via the queue).
    pub admitted: u64,
    /// Jobs shed by admission control.
    pub shed: u64,
    /// Jobs completed with no degradation label.
    pub completed_ok: u64,
    /// Degradations: deadline lapsed.
    pub deg_deadline: u64,
    /// Degradations: expert pool exhausted (crowd fallback).
    pub deg_expert: u64,
    /// Degradations: reserved comparison budget exhausted.
    pub deg_budget: u64,
    /// Degradations: a pair dead-lettered mid-tournament.
    pub deg_dead_letters: u64,
    /// Circuit-breaker trips.
    pub trips: u64,
    /// Worst per-tenant p99 job latency seen in any trial, in ticks.
    pub p99_latency_ticks: u64,
    /// Comparisons charged across tenants.
    pub comparisons: u64,
    /// Trials whose killed-and-resumed run matched the uninterrupted one
    /// byte-for-byte (must equal `trials`).
    pub resume_identical: u64,
}

/// Sweeps [`LOADS`] × [`BREAKERS`], `trials` trials per cell. Trials fan
/// out over the parallel engine; aggregation stays in
/// `(load, breakers, trial)` order, so rows are identical at any
/// `--jobs` count.
pub fn sweep(trials: u64, base_seed: u64) -> Vec<ServeSweepRow> {
    let items: Vec<(usize, usize, u64)> = (0..LOADS.len())
        .flat_map(|l| (0..BREAKERS.len()).flat_map(move |b| (0..trials).map(move |t| (l, b, t))))
        .collect();
    let outcomes = engine::parallel_map(items, |(l, b, t)| run_trial(l, b, base_seed, t));
    let per_cell = trials as usize;
    (0..LOADS.len())
        .flat_map(|l| (0..BREAKERS.len()).map(move |b| (l, b)))
        .enumerate()
        .map(|(cell, (l, b))| {
            let slice = &outcomes[cell * per_cell..(cell + 1) * per_cell];
            let mut row = ServeSweepRow {
                load: l,
                breakers: b,
                trials,
                offered: 0,
                admitted: 0,
                shed: 0,
                completed_ok: 0,
                deg_deadline: 0,
                deg_expert: 0,
                deg_budget: 0,
                deg_dead_letters: 0,
                trips: 0,
                p99_latency_ticks: 0,
                comparisons: 0,
                resume_identical: 0,
            };
            for o in slice {
                for tenant in &o.report.tenants {
                    row.offered += tenant.offered;
                    row.admitted += tenant.admitted;
                }
                row.shed += o.report.shed;
                row.completed_ok += o.completed_ok;
                row.deg_deadline += o.degraded.0;
                row.deg_expert += o.degraded.1;
                row.deg_budget += o.degraded.2;
                row.deg_dead_letters += o.degraded.3;
                row.trips += o.report.breaker_trips;
                row.p99_latency_ticks = row.p99_latency_ticks.max(o.p99_latency_ticks);
                row.comparisons += o.report.comparisons;
                row.resume_identical += u64::from(o.resume_identical);
            }
            row
        })
        .collect()
}

/// Runs the sweep at experiment scale.
pub fn run(scale: &Scale) -> Table {
    // Each trial is three full service runs (baseline, doomed, resumed);
    // a handful per cell keeps the four-cell sweep in seconds.
    let trials = scale.trials.clamp(2, 6);
    let rows = sweep(trials, scale.seed ^ 0x5E);

    let mut t = Table::new(
        "serve_sweep",
        &format!(
            "crowd-serve overload sweep: offered load × circuit breakers, \
             {trials} trials per cell (48 jobs/trial, 2 tenants, \
             3 shards, queue cap 4)"
        ),
        &[
            "load",
            "breakers",
            "trials",
            "offered",
            "admitted",
            "shed",
            "completed ok",
            "deg deadline",
            "deg expert",
            "deg budget",
            "deg dead-letter",
            "breaker trips",
            "p99 ticks",
            "comparisons",
            "resume identical",
        ],
    )
    .with_notes(
        "Every offered job is either admitted or shed; every admitted job \
         terminates clean or with an explicit degradation label — \
         `admitted = completed ok + the four degradation columns` in every \
         row, and nothing hangs. The double-load rows must shed; the \
         half-load rows shed little or nothing. `resume identical` counts trials whose \
         mid-tick-killed run, resumed from the write-ahead journal, \
         matched the uninterrupted run on the report, the final journal \
         bytes, and the event stream — it must equal `trials` everywhere. \
         Breaker trips appear only in the `on` rows (the faulty shard \
         produces failure streaks); with breakers off the same faults are \
         retried blindly instead of quarantined.",
    );
    for row in &rows {
        t.push_row(vec![
            LOADS[row.load].to_string(),
            BREAKERS[row.breakers].to_string(),
            row.trials.to_string(),
            row.offered.to_string(),
            row.admitted.to_string(),
            row.shed.to_string(),
            row.completed_ok.to_string(),
            row.deg_deadline.to_string(),
            row.deg_expert.to_string(),
            row.deg_budget.to_string(),
            row.deg_dead_letters.to_string(),
            row.trips.to_string(),
            row.p99_latency_ticks.to_string(),
            row.comparisons.to_string(),
            row.resume_identical.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_resumes_identically_at_both_loads() {
        for (load, label) in LOADS.iter().enumerate() {
            let o = run_trial(load, 0, 41, 0);
            assert!(o.resume_identical, "load {label}: {o:?}");
        }
    }

    #[test]
    fn overload_sheds_and_underload_does_not() {
        let under = run_trial(0, 0, 43, 1);
        let over = run_trial(1, 0, 43, 1);
        assert_eq!(under.report.shed, 0, "half load must not shed: {under:?}");
        assert!(over.report.shed > 0, "double load must shed: {over:?}");
    }

    #[test]
    fn admitted_jobs_are_fully_accounted() {
        let o = run_trial(1, 0, 47, 2);
        let admitted: u64 = o.report.tenants.iter().map(|t| t.admitted).sum();
        let (d0, d1, d2, d3) = o.degraded;
        assert_eq!(
            admitted,
            o.completed_ok + d0 + d1 + d2 + d3,
            "every admitted job completes clean or labelled: {o:?}"
        );
    }

    #[test]
    fn table_shape() {
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), LOADS.len() * BREAKERS.len());
        for row in &t.rows {
            // resume identical == trials in every cell.
            assert_eq!(row[14], row[2], "resume must be identical: {row:?}");
            // offered == admitted + shed.
            let offered: u64 = row[3].parse().unwrap();
            let admitted: u64 = row[4].parse().unwrap();
            let shed: u64 = row[5].parse().unwrap();
            assert_eq!(offered, admitted + shed, "{row:?}");
        }
        let md = t.to_markdown();
        assert!(md.contains("breaker trips"), "{md}");
    }
}
