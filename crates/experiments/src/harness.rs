//! Shared machinery for the simulation experiments (Sections 5.1–5.2).
//!
//! All of Figures 3–7 (and the worst-case Figures 9–10) measure the same
//! three approaches over the same planted instances:
//!
//! * **Alg 1** — the two-phase expert-aware algorithm;
//! * **2-MaxFind-naïve** — 2-MaxFind over the whole input with naïve
//!   workers only;
//! * **2-MaxFind-expert** — 2-MaxFind over the whole input with experts
//!   only.
//!
//! [`run_trial`] executes one approach on one instance and reports the
//! true rank of the returned element and the comparison tally — everything
//! the figures aggregate.

use crowd_core::algorithms::{expert_max_find, two_max_find, ExpertMaxConfig};
use crowd_core::element::Instance;
use crowd_core::model::{ExpertModel, TiePolicy, WorkerClass};
use crowd_core::oracle::{ComparisonCounts, ComparisonOracle, SimulatedOracle};
use crowd_datasets::synthetic::{planted_instance, PlantedInstance};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The three approaches compared throughout Section 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Approach {
    /// Algorithm 1 (two-phase, naïve filter + expert 2-MaxFind).
    Alg1,
    /// 2-MaxFind over the whole input, naïve workers only.
    TwoMaxFindNaive,
    /// 2-MaxFind over the whole input, experts only.
    TwoMaxFindExpert,
}

impl Approach {
    /// All three, in the paper's plotting order.
    pub const ALL: [Approach; 3] = [
        Approach::TwoMaxFindExpert,
        Approach::Alg1,
        Approach::TwoMaxFindNaive,
    ];

    /// The label used in the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            Approach::Alg1 => "Alg 1",
            Approach::TwoMaxFindNaive => "2-MaxFind-naive",
            Approach::TwoMaxFindExpert => "2-MaxFind-expert",
        }
    }
}

/// The outcome of one trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialResult {
    /// True rank of the returned element (1 = the actual maximum).
    pub rank: usize,
    /// Comparisons performed, by class.
    pub counts: ComparisonCounts,
}

/// Runs one `approach` over a planted instance.
///
/// `un_estimate` is the `un(n)` value handed to Algorithm 1 (pass
/// `planted.un` for the exact value, or a scaled value for the
/// estimation-factor experiments; ignored by the baselines). Workers follow
/// the paper's analysis model: `T(δ, 0)` with uniform-random arbitrary
/// answers.
pub fn run_trial(
    approach: Approach,
    planted: &PlantedInstance,
    un_estimate: usize,
    seed: u64,
) -> TrialResult {
    let instance = &planted.instance;
    let model = ExpertModel::exact(planted.delta_n, planted.delta_e, TiePolicy::UniformRandom);
    // The `ObservedOracle` wrapper turns the algorithms' trace events into
    // structured `crowd-obs` events (phase transitions, per-round survivor
    // and comparison counts). With no recorder installed — every direct
    // library use — it is a pass-through.
    let mut oracle = crowd_obs::ObservedOracle::new(SimulatedOracle::new(
        instance.clone(),
        model,
        StdRng::seed_from_u64(seed),
    ));
    let winner = match approach {
        Approach::Alg1 => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
            expert_max_find(
                &mut oracle,
                &instance.ids(),
                &ExpertMaxConfig::new(un_estimate.max(1)),
                &mut rng,
            )
            .winner
        }
        Approach::TwoMaxFindNaive => {
            two_max_find(&mut oracle, WorkerClass::Naive, &instance.ids()).winner
        }
        Approach::TwoMaxFindExpert => {
            two_max_find(&mut oracle, WorkerClass::Expert, &instance.ids()).winner
        }
    };
    TrialResult {
        rank: instance.rank(winner),
        counts: oracle.counts(),
    }
}

/// A fresh planted instance for trial `t` of a sweep point.
pub fn planted_for(n: usize, un: usize, ue: usize, base_seed: u64, t: u64) -> PlantedInstance {
    let mut rng = StdRng::seed_from_u64(base_seed.wrapping_mul(1_000_003) ^ (t << 20) ^ n as u64);
    planted_instance(n, un, ue, &mut rng)
}

/// Scales a true `un` by an estimation factor, clamping to at least 1
/// (Section 5.2's estimation-factor methodology).
pub fn scaled_un(un: usize, factor: f64) -> usize {
    ((un as f64 * factor).round() as usize).max(1)
}

/// The estimation factors swept in Figures 6, 7 and 10.
pub const ESTIMATION_FACTORS: [f64; 6] = [0.2, 0.5, 0.8, 1.0, 1.2, 2.0];

/// Average true rank over `trials` runs of `approach` at one sweep point.
pub fn average_rank(
    approach: Approach,
    n: usize,
    un: usize,
    ue: usize,
    un_factor: f64,
    trials: u64,
    base_seed: u64,
) -> (f64, ComparisonCounts) {
    // Trials are independent (each seeds its own instance and oracle), so
    // fan them out; accumulation stays in trial order, making the result
    // identical to the serial loop at any job count.
    let results = crate::engine::parallel_map((0..trials).collect(), |t| {
        let planted = planted_for(n, un, ue, base_seed, t);
        run_trial(
            approach,
            &planted,
            scaled_un(un, un_factor),
            base_seed ^ (t * 7 + 1),
        )
    });
    let mut rank_sum = 0.0;
    let mut counts = ComparisonCounts::zero();
    for result in results {
        rank_sum += result.rank as f64;
        counts += result.counts;
    }
    let avg_counts = ComparisonCounts {
        naive: counts.naive / trials,
        expert: counts.expert / trials,
    };
    (rank_sum / trials as f64, avg_counts)
}

/// Runs one approach against the ground truth with a *perfect* oracle —
/// used by tests as a sanity reference.
pub fn perfect_reference(instance: &Instance) -> usize {
    use crowd_core::oracle::PerfectOracle;
    let mut oracle = PerfectOracle::new(instance.clone());
    let out = two_max_find(&mut oracle, WorkerClass::Expert, &instance.ids());
    instance.rank(out.winner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_paper_legends() {
        assert_eq!(Approach::Alg1.label(), "Alg 1");
        assert_eq!(Approach::TwoMaxFindNaive.label(), "2-MaxFind-naive");
        assert_eq!(Approach::TwoMaxFindExpert.label(), "2-MaxFind-expert");
        assert_eq!(Approach::ALL.len(), 3);
    }

    #[test]
    fn scaled_un_rounds_and_clamps() {
        assert_eq!(scaled_un(10, 0.2), 2);
        assert_eq!(scaled_un(10, 1.2), 12);
        assert_eq!(scaled_un(10, 0.05), 1);
        assert_eq!(scaled_un(3, 0.5), 2); // 1.5 rounds to 2
    }

    #[test]
    fn trial_ranks_are_sane() {
        let planted = planted_for(300, 10, 5, 42, 0);
        for approach in Approach::ALL {
            let r = run_trial(approach, &planted, 10, 7);
            assert!(r.rank >= 1 && r.rank <= 300, "{approach:?} rank {}", r.rank);
        }
    }

    #[test]
    fn alg1_uses_both_classes_baselines_use_one() {
        let planted = planted_for(400, 10, 5, 43, 0);
        let alg1 = run_trial(Approach::Alg1, &planted, 10, 1);
        assert!(alg1.counts.naive > 0 && alg1.counts.expert > 0);
        let naive = run_trial(Approach::TwoMaxFindNaive, &planted, 10, 1);
        assert!(naive.counts.naive > 0 && naive.counts.expert == 0);
        let expert = run_trial(Approach::TwoMaxFindExpert, &planted, 10, 1);
        assert!(expert.counts.naive == 0 && expert.counts.expert > 0);
    }

    #[test]
    fn expert_and_alg1_beat_naive_on_average() {
        let trials = 8;
        let (rank_expert, _) = average_rank(Approach::TwoMaxFindExpert, 500, 25, 5, 1.0, trials, 9);
        let (rank_alg1, _) = average_rank(Approach::Alg1, 500, 25, 5, 1.0, trials, 9);
        let (rank_naive, _) = average_rank(Approach::TwoMaxFindNaive, 500, 25, 5, 1.0, trials, 9);
        assert!(
            rank_expert <= rank_alg1 + 1.0,
            "expert {rank_expert} vs alg1 {rank_alg1}"
        );
        assert!(
            rank_alg1 < rank_naive,
            "alg1 {rank_alg1} should beat naive {rank_naive}"
        );
    }

    #[test]
    fn perfect_reference_is_rank_one() {
        let planted = planted_for(200, 5, 2, 44, 0);
        assert_eq!(perfect_reference(&planted.instance), 1);
    }

    #[test]
    fn planted_for_is_deterministic() {
        let a = planted_for(100, 5, 2, 1, 3);
        let b = planted_for(100, 5, 2, 1, 3);
        assert_eq!(a.instance, b.instance);
        let c = planted_for(100, 5, 2, 1, 4);
        assert_ne!(a.instance, c.instance);
    }
}
