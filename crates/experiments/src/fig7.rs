//! Figure 7 — Algorithm 1's average cost under mis-estimation of `un(n)`:
//! `C(n)` vs `n` for the six estimation factors, at `cn = 1`,
//! `ce ∈ {10, 20, 50}` (six panels).
//!
//! Expected shape: "the cost has a smooth linear behavior; an estimation
//! factor of 2 doubles the cost" — cost scales roughly linearly with the
//! estimation factor, because Phase 1 performs `O(n · un_est)` naïve
//! comparisons.

use crate::harness::{average_rank, Approach, ESTIMATION_FACTORS};
use crate::report::{fmt_f64, Table};
use crate::scale::Scale;
use crowd_core::cost::CostModel;
use crowd_core::oracle::ComparisonCounts;

/// Average comparison counts per (n, estimation factor) for Algorithm 1.
pub fn factor_counts(scale: &Scale, un: usize, ue: usize) -> Vec<(usize, Vec<ComparisonCounts>)> {
    scale
        .n_grid
        .iter()
        .map(|&n| {
            let counts = ESTIMATION_FACTORS
                .iter()
                .map(|&f| average_rank(Approach::Alg1, n, un, ue, f, scale.trials, scale.seed).1)
                .collect();
            (n, counts)
        })
        .collect()
}

/// Builds one priced panel from measured counts.
pub fn panel_from_counts(
    id: &str,
    un: usize,
    ue: usize,
    ce: f64,
    counts: &[(usize, Vec<ComparisonCounts>)],
) -> Table {
    let prices = CostModel::with_ratio(ce);
    let headers: Vec<String> = std::iter::once("n".to_string())
        .chain(ESTIMATION_FACTORS.iter().map(|f| format!("factor {f}")))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        id,
        &format!("Alg 1 average cost vs n under un-estimation factors, ce={ce}, un={un}, ue={ue}"),
        &headers_ref,
    )
    .with_notes("Expected: cost scales ~linearly with the estimation factor.");
    for (n, per_factor) in counts {
        let mut row = vec![n.to_string()];
        for c in per_factor {
            row.push(fmt_f64(prices.cost(*c), 0));
        }
        t.push_row(row);
    }
    t
}

/// Runs all six panels (fig7a–fig7f).
pub fn run(scale: &Scale) -> Vec<Table> {
    let measured: Vec<_> = crate::fig3::SETTINGS
        .iter()
        .map(|&(un, ue)| (un, ue, factor_counts(scale, un, ue)))
        .collect();
    let mut tables = Vec::with_capacity(6);
    let mut panel = 'a';
    for &ce in &crate::fig5::EXPERT_PRICES {
        for (un, ue, counts) in &measured {
            tables.push(panel_from_counts(
                &format!("fig7{panel}"),
                *un,
                *ue,
                ce,
                counts,
            ));
            panel = (panel as u8 + 1) as char;
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_scales_roughly_linearly_with_factor() {
        let scale = Scale::quick();
        let counts = factor_counts(&scale, 20, 5);
        let t = panel_from_counts("fig7x", 20, 5, 10.0, &counts);
        for row in &t.rows {
            let c1: f64 = row[4].parse().unwrap(); // factor 1
            let c2: f64 = row[6].parse().unwrap(); // factor 2
            let ratio = c2 / c1;
            assert!(
                (1.3..=3.0).contains(&ratio),
                "doubling the factor changed cost by {ratio}, expected ~2"
            );
        }
    }

    #[test]
    fn underestimation_is_cheaper() {
        let scale = Scale::quick();
        let counts = factor_counts(&scale, 20, 5);
        let t = panel_from_counts("fig7y", 20, 5, 10.0, &counts);
        for row in &t.rows {
            let c02: f64 = row[1].parse().unwrap();
            let c1: f64 = row[4].parse().unwrap();
            assert!(
                c02 < c1,
                "factor 0.2 ({c02}) should cost less than factor 1 ({c1})"
            );
        }
    }

    #[test]
    fn run_emits_six_panels() {
        let tables = run(&Scale::quick());
        assert_eq!(tables.len(), 6);
        assert_eq!(tables[5].id, "fig7f");
    }
}
