//! Figure 10 — Algorithm 1's *worst-case* cost under mis-estimation of
//! `un(n)`: the theoretical bound `cn·4·n·un_est + ce·2·(2·un_est)^{3/2}`
//! priced for the six estimation factors, `ce ∈ {10, 20, 50}` (six panels).
//!
//! Expected shape: like Figure 7 but from the closed-form bound — the
//! worst-case cost scales linearly in the estimation factor through the
//! dominant naïve term.

use crate::harness::{scaled_un, ESTIMATION_FACTORS};
use crate::report::{fmt_f64, Table};
use crate::scale::Scale;
use crowd_core::bounds;
use crowd_core::cost::CostModel;

/// Builds one panel.
pub fn run_panel(id: &str, scale: &Scale, un: usize, ue: usize, ce: f64) -> Table {
    let prices = CostModel::with_ratio(ce);
    let headers: Vec<String> = std::iter::once("n".to_string())
        .chain(ESTIMATION_FACTORS.iter().map(|f| format!("factor {f}")))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        id,
        &format!(
            "Alg 1 worst-case cost vs n under un-estimation factors, ce={ce}, un={un}, ue={ue}"
        ),
        &headers_ref,
    )
    .with_notes(
        "Worst case = theoretical bound 4·n·un_est naive + 2·(2·un_est)^1.5 \
         expert comparisons, as in the paper. ue is fixed by the instance \
         and does not enter the bound.",
    );
    let _ = ue;
    for &n in &scale.n_grid {
        let mut row = vec![n.to_string()];
        for &f in &ESTIMATION_FACTORS {
            let u = scaled_un(un, f);
            row.push(fmt_f64(
                bounds::algorithm1_cost_upper_bound(n, u, &prices),
                0,
            ));
        }
        t.push_row(row);
    }
    t
}

/// Runs all six panels (fig10a–fig10f).
pub fn run(scale: &Scale) -> Vec<Table> {
    let mut tables = Vec::with_capacity(6);
    let mut panel = 'a';
    for &ce in &crate::fig5::EXPERT_PRICES {
        for &(un, ue) in &crate::fig3::SETTINGS {
            tables.push(run_panel(&format!("fig10{panel}"), scale, un, ue, ce));
            panel = (panel as u8 + 1) as char;
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_cost_scales_with_factor() {
        let t = run_panel("fig10x", &Scale::quick(), 10, 5, 10.0);
        for row in &t.rows {
            let c1: f64 = row[4].parse().unwrap(); // factor 1
            let c2: f64 = row[6].parse().unwrap(); // factor 2
            let ratio = c2 / c1;
            assert!(
                (1.8..=2.6).contains(&ratio),
                "factor 2 should roughly double the bound, got {ratio}"
            );
        }
    }

    #[test]
    fn bound_is_linear_in_n_per_factor() {
        let t = run_panel("fig10y", &Scale::quick(), 10, 5, 10.0);
        let first: f64 = t.rows[0][4].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[4].parse().unwrap();
        assert!(last > first);
    }

    #[test]
    fn run_emits_six_panels() {
        assert_eq!(run(&Scale::quick()).len(), 6);
    }
}
