//! Deterministic parallel execution of independent work items.
//!
//! Everything the experiments fan out — whole experiments in
//! [`run_experiments`](crate::run_experiments), seed replications in
//! [`harness::average_rank`](crate::harness::average_rank) — is a list of
//! items whose results depend only on the item (each carries its own seed),
//! never on execution order. [`parallel_map`] exploits that: items are
//! claimed from a shared counter by up to [`jobs`] scoped threads
//! (`std::thread::scope`, no dependencies) and results land in
//! per-item slots, so the returned `Vec` is in input order and
//! **byte-identical** to what a serial run produces, at any job count.
//!
//! The job count is a process-wide setting (`--jobs N` on the `repro`
//! binary): `0` (the default) means one thread per available core,
//! `1` forces the serial path (no threads are spawned at all).
//!
//! Worker threads inherit the spawner's
//! [`TallySink`](crowd_core::trace::TallySink) stack, so comparison tallies
//! keep attributing to the experiment that logically owns the work even
//! when several experiments run concurrently.
//!
//! [`Recorder`](crowd_obs::Recorder) stacks are handled differently: a
//! sink only accumulates commutative totals, but an event log is ordered.
//! When the caller has recorders installed, each item runs inside
//! [`crowd_obs::record_segment`] on its worker thread and the captured
//! segments are [`crowd_obs::replay`]ed in input order after the join —
//! so the caller's event log (and metrics) are byte-identical to the
//! serial run's, at any job count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// `0` = use all available cores.
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count; `0` restores the default
/// (one worker per available core).
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::SeqCst);
}

/// The effective worker count: the value of [`set_jobs`], or the number of
/// available cores when unset.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        n => n,
    }
}

/// Maps `f` over `items` on up to [`jobs`] threads, returning results in
/// input order.
///
/// With one worker (or one item) this runs inline on the calling thread —
/// exactly the serial loop. With more, items are claimed in order from an
/// atomic counter; because `f(item)` must not depend on execution order
/// (every experiment seeds its own RNGs), the output is identical either
/// way.
///
/// # Panics
///
/// A panic inside `f` propagates to the caller (from the serial path
/// directly, from the parallel path when the thread scope joins).
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    // Spawning more CPU-bound workers than the machine has cores is pure
    // scheduling overhead (the work is deterministic either way), so the
    // requested job count is capped at the available parallelism.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let workers = jobs().min(items.len()).min(cores);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let sinks = crowd_core::trace::current_sinks();
    // Observability capture: when the caller has recorders installed, each
    // item's events and metrics are buffered in a per-item segment on the
    // worker thread and replayed below in input order, so the caller's
    // event log is byte-identical to a serial run. With no recorder
    // installed (the common case) nothing is captured at all.
    let capture = !crowd_obs::current_recorders().is_empty();
    let next = AtomicUsize::new(0);
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<U>>> = work.iter().map(|_| Mutex::new(None)).collect();
    let segments: Vec<Mutex<Option<crowd_obs::Segment>>> =
        work.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _guard = crowd_core::trace::install_sinks(&sinks);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= work.len() {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .expect("work slot poisoned")
                        .take()
                        .expect("each index is claimed exactly once");
                    let result = if capture {
                        let (result, segment) = crowd_obs::record_segment(|| f(item));
                        *segments[i].lock().expect("segment slot poisoned") = Some(segment);
                        result
                    } else {
                        f(item)
                    };
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                }
            });
        }
    });

    if capture {
        for segment in segments {
            if let Some(segment) = segment.into_inner().expect("segment slot poisoned") {
                crowd_obs::replay(segment);
            }
        }
    }

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed index stored a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_core::model::WorkerClass;
    use crowd_core::trace::{install_sink, TallySink};
    use std::sync::Arc;

    /// Serializes tests that touch the process-wide job count.
    static JOBS_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn results_are_in_input_order() {
        let _l = JOBS_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let items: Vec<u64> = (0..100).collect();
        let serial = parallel_map(items.clone(), |x| x * x);
        set_jobs(4);
        let parallel = parallel_map(items, |x| x * x);
        set_jobs(0);
        assert_eq!(serial, parallel);
        assert_eq!(serial[7], 49);
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = parallel_map(Vec::new(), |x: u32| x);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(vec![5], |x| x + 1), vec![6]);
    }

    #[test]
    fn jobs_defaults_to_available_cores() {
        let _l = JOBS_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_jobs(0);
        assert!(jobs() >= 1);
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
    }

    #[test]
    fn recorder_capture_is_byte_identical_across_job_counts() {
        use crowd_obs::{install_recorder, Event, Recorder, SampleValue};
        let _l = JOBS_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());

        let work = |i: u32| {
            crowd_obs::emit(Event::RunStarted {
                name: format!("item-{i}"),
            });
            crowd_obs::counter_add("engine_items_total", &[], 1);
            crowd_obs::observe("engine_item_value", &[], u64::from(i));
            i * 3
        };

        let run_with = |jobs: usize| {
            set_jobs(jobs);
            let rec = Arc::new(Recorder::new());
            let out = {
                let _g = install_recorder(rec.clone());
                parallel_map((0..16u32).collect(), work)
            };
            set_jobs(0);
            (out, rec)
        };

        let (out1, rec1) = run_with(1);
        let (out4, rec4) = run_with(4);
        assert_eq!(out1, out4);
        assert_eq!(rec1.log().to_jsonl(), rec4.log().to_jsonl());
        assert_eq!(rec1.metrics().snapshot(), rec4.metrics().snapshot());
        assert_eq!(
            rec4.metrics().snapshot()[1].value,
            SampleValue::Counter { value: 16 }
        );
    }

    #[test]
    fn workers_inherit_the_tally_sink_stack() {
        use crowd_core::element::Instance;
        use crowd_core::oracle::{ComparisonOracle, PerfectOracle};
        let _l = JOBS_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let sink = Arc::new(TallySink::new());
        let _g = install_sink(sink.clone());
        set_jobs(4);
        let _ = parallel_map((0..8u32).collect(), |_| {
            let inst = Instance::new(vec![1.0, 2.0, 3.0]);
            let mut o = PerfectOracle::new(inst.clone());
            o.compare(WorkerClass::Naive, inst.ids()[0], inst.ids()[1]);
        });
        set_jobs(0);
        assert_eq!(sink.counts().naive, 8);
    }
}
