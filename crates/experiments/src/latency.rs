//! The paper's time model (Section 3, Remark): the number of *logical*
//! steps is the time-complexity measure of Venetis et al., and each logical
//! step `s` spans `⌈|B_s| / |W|⌉` *physical* steps. This experiment runs
//! Phase 1 both ways on the platform — sequentially (one job per
//! comparison) and batched (one job per round) — across worker-pool sizes,
//! and reports the wall-clock (physical-step) speedup.
//!
//! Expected shape: identical comparison counts and identical survivors, but
//! the batched run's physical steps shrink roughly like `1/|W|` while the
//! sequential run's equal its comparison count regardless of pool size.

use crate::report::Table;
use crate::scale::Scale;
use crowd_core::algorithms::{filter_candidates, FilterConfig};
use crowd_core::element::Instance;
use crowd_core::model::{TiePolicy, WorkerClass};
use crowd_platform::{
    batched_filter, Behavior, Platform, PlatformConfig, PlatformOracle, WorkerPool,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Pool sizes to sweep.
pub const POOL_SIZES: [usize; 3] = [10, 50, 200];

fn build_platform(instance: &Instance, workers: usize, delta: f64, seed: u64) -> Platform<StdRng> {
    let mut pool = WorkerPool::new();
    pool.hire_many(
        workers,
        WorkerClass::Naive,
        "crowd",
        Behavior::Threshold {
            delta,
            epsilon: 0.0,
            tie: TiePolicy::UniformRandom,
        },
    );
    Platform::new(
        instance.clone(),
        pool,
        PlatformConfig::paper_default().without_gold(),
        StdRng::seed_from_u64(seed),
    )
}

/// One measurement: sequential vs batched physical steps at one pool size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyRow {
    /// Worker-pool size `|W|`.
    pub workers: usize,
    /// Comparisons performed (identical in both drives).
    pub comparisons: u64,
    /// Physical steps of the sequential (one-unit-job) drive.
    pub sequential_steps: u64,
    /// Physical steps of the batched (one-job-per-round) drive.
    pub batched_steps: u64,
    /// Batched logical steps (rounds).
    pub batched_rounds: u64,
}

/// Measures one pool size.
///
/// # Errors
///
/// Propagates the [`PlatformError`](crowd_platform::PlatformError) of a batched run that the platform
/// could not schedule (an empty or depleted pool) — the caller decides
/// whether that pool size is skipped or fatal.
pub fn measure(
    n: usize,
    un: usize,
    workers: usize,
    seed: u64,
) -> Result<LatencyRow, crowd_platform::PlatformError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let planted = crowd_datasets::synthetic::planted_instance(n, un, un.div_ceil(2), &mut rng);
    let instance = &planted.instance;

    let sequential_platform = build_platform(instance, workers, planted.delta_n, seed ^ 1);
    let mut oracle = PlatformOracle::new(sequential_platform);
    filter_candidates(&mut oracle, &instance.ids(), &FilterConfig::new(un));
    let sequential_platform = oracle.into_platform();

    let mut batched_platform = build_platform(instance, workers, planted.delta_n, seed ^ 1);
    let batched = batched_filter(
        &mut batched_platform,
        WorkerClass::Naive,
        &instance.ids(),
        &FilterConfig::new(un),
    )?;

    Ok(LatencyRow {
        workers,
        comparisons: batched_platform.counts().naive,
        sequential_steps: sequential_platform.physical_clock(),
        batched_steps: batched.physical_steps,
        batched_rounds: batched.logical_steps,
    })
}

/// Runs the sweep.
pub fn run(scale: &Scale) -> Table {
    // The time-model demonstration does not need the largest grid size:
    // sequential driving submits one platform job per comparison, so cap
    // the sweep at a size whose ~100k jobs run in seconds.
    let n = (*scale.n_grid.last().unwrap_or(&1000)).min(2000);
    let un = (n / 100).max(2);
    let mut t = Table::new(
        "latency",
        &format!("Physical-step latency of Phase 1, sequential vs batched (n={n}, un={un})"),
        &[
            "workers",
            "comparisons",
            "sequential physical steps",
            "batched physical steps",
            "batched rounds",
            "speedup",
        ],
    )
    .with_notes(
        "The paper's time model: a batch of m comparisons takes ceil(m/|W|) \
         physical steps. Sequential driving wastes the pool; batching each \
         filter round gives a ~|W|-fold wall-clock speedup at identical \
         comparison counts.",
    );
    for &w in &POOL_SIZES {
        // A pool the platform cannot schedule is a dead letter for that
        // sweep point, not a reason to abort the whole table.
        let row = match measure(n, un, w, scale.seed ^ 0x1a7) {
            Ok(row) => row,
            Err(e) => {
                eprintln!("latency: skipping pool of {w}: {e}");
                continue;
            }
        };
        t.push_row(vec![
            row.workers.to_string(),
            row.comparisons.to_string(),
            row.sequential_steps.to_string(),
            row.batched_steps.to_string(),
            row.batched_rounds.to_string(),
            format!(
                "{:.1}x",
                row.sequential_steps as f64 / row.batched_steps.max(1) as f64
            ),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_is_faster_and_scales_with_pool() {
        let small = measure(300, 5, 10, 1).expect("healthy pool of 10");
        let large = measure(300, 5, 100, 1).expect("healthy pool of 100");
        // Same workload either way.
        assert!(small.sequential_steps >= small.comparisons);
        // Batched beats sequential at any pool size.
        assert!(small.batched_steps < small.sequential_steps / 2);
        // More workers, fewer physical steps.
        assert!(large.batched_steps < small.batched_steps);
    }

    #[test]
    fn rounds_match_filter_rounds() {
        let row = measure(400, 5, 50, 2).expect("healthy pool of 50");
        // A handful of logical rounds, as in Lemma 3's log-style shrink.
        assert!(row.batched_rounds >= 1 && row.batched_rounds <= 10);
    }

    #[test]
    fn table_shape() {
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), POOL_SIZES.len());
        assert!(t.to_markdown().contains("speedup"));
    }
}
