//! Section 5.3 — evaluation of search results, on the full platform
//! simulator.
//!
//! The paper's most realistic application: two queries, 50 Google results
//! each, crowd workers (CrowdFlower) as naïve comparators and algorithms
//! researchers as external experts. The two-phase algorithm was run with
//! `un(50) ∈ {6, 8, 10}`; "in both queries and for all these values the
//! maximum was promoted to the second round (and the experts identified
//! it, of course)". Naïve-only 2-MaxFind, run twice per query, found the
//! best result in only 1 of 4 runs.
//!
//! This reproduction drives the *whole* `crowd-platform` stack: a hired
//! crowd of threshold workers (with a couple of spammers), gold-question
//! quality control, per-judgment billing, and an external expert panel —
//! the algorithms talk to it only through the oracle adapter.

use crate::report::Table;
use crate::scale::Scale;
use crowd_core::algorithms::{filter_candidates, two_max_find, two_max_find_naive, FilterConfig};
use crowd_core::cost::CostModel;
use crowd_core::model::{TiePolicy, WorkerClass};
use crowd_datasets::search::SearchResultSet;
use crowd_platform::{
    Behavior, Platform, PlatformConfig, PlatformOracle, SpamStrategy, WorkerPool,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The `un(50)` values the paper sweeps.
pub const UN_VALUES: [usize; 3] = [6, 8, 10];

/// Builds the platform for one query's result set: a crowd of naïve
/// threshold workers (plus spammers, whom gold questions will catch) and a
/// small external expert panel.
pub fn build_platform(results: &SearchResultSet, seed: u64) -> Platform<StdRng> {
    let instance = results.to_instance();
    let mut pool = WorkerPool::new();
    pool.hire_many(
        30,
        WorkerClass::Naive,
        "crowdflower",
        Behavior::Threshold {
            delta: results.naive_delta(),
            epsilon: 0.05,
            tie: TiePolicy::UniformRandom,
        },
    );
    pool.hire(
        WorkerClass::Naive,
        "crowdflower",
        Behavior::Spammer(SpamStrategy::Random),
    );
    pool.hire(
        WorkerClass::Naive,
        "crowdflower",
        Behavior::Spammer(SpamStrategy::AlwaysFirst),
    );
    pool.hire_many(
        4,
        WorkerClass::Expert,
        "algorithms-researchers",
        Behavior::Threshold {
            delta: results.expert_delta(),
            epsilon: 0.0,
            tie: TiePolicy::UniformRandom,
        },
    );
    let config = PlatformConfig::paper_default().with_payment(CostModel::with_ratio(25.0));
    let mut platform = Platform::new(instance.clone(), pool, config, StdRng::seed_from_u64(seed));
    // Gold pairs: comparisons with large relevance gaps, whose answers the
    // requester knows.
    let ids = instance.ids();
    let mut gold = Vec::new();
    for i in 0..ids.len() {
        for j in (i + 1)..ids.len() {
            if instance.distance(ids[i], ids[j]) > 3.0 * results.naive_delta() {
                gold.push((ids[i], ids[j]));
                if gold.len() >= 20 {
                    break;
                }
            }
        }
        if gold.len() >= 20 {
            break;
        }
    }
    platform.set_gold_pairs(gold);
    platform
}

/// Outcome of one two-phase run on a query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Whether the true best result survived Phase 1.
    pub max_promoted: bool,
    /// Whether the expert phase returned the true best result.
    pub max_found: bool,
    /// Total money spent on the platform.
    pub total_cost: f64,
    /// Judgments paid for.
    pub judgments: u64,
}

/// Runs the two-phase algorithm for one query at one `un` value.
pub fn run_query(results: &SearchResultSet, un: usize, seed: u64) -> QueryOutcome {
    let instance = results.to_instance();
    let platform = build_platform(results, seed);
    let mut oracle = PlatformOracle::new(platform);

    let phase1 = filter_candidates(&mut oracle, &instance.ids(), &FilterConfig::new(un));
    let max_promoted = phase1.survivors.contains(&instance.max_element());
    let phase2 = two_max_find(&mut oracle, WorkerClass::Expert, &phase1.survivors);
    let max_found = phase2.winner == instance.max_element();

    let platform = oracle.into_platform();
    QueryOutcome {
        max_promoted,
        max_found,
        total_cost: platform.ledger().total(),
        judgments: platform.ledger().judgments(),
    }
}

/// Runs naïve-only 2-MaxFind once on a query; returns whether it found the
/// best result.
pub fn run_naive_only(results: &SearchResultSet, seed: u64) -> bool {
    let instance = results.to_instance();
    let platform = build_platform(results, seed);
    let mut oracle = PlatformOracle::new(platform);
    let out = two_max_find_naive(&mut oracle, &instance.ids());
    out.winner == instance.max_element()
}

/// Runs the full Section 5.3 reproduction.
pub fn run(scale: &Scale) -> Table {
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x53);
    let queries = SearchResultSet::paper_queries(&mut rng);

    let mut t = Table::new(
        "search_eval",
        "Search-result evaluation: two-phase algorithm vs naive-only 2-MaxFind",
        &[
            "query",
            "un(50)",
            "max promoted to round 2",
            "experts found max",
            "platform cost",
            "judgments",
        ],
    )
    .with_notes(
        "Paper: for un(50) in {6, 8, 10} the maximum was always promoted \
         and the experts identified it; naive-only 2-MaxFind succeeded in \
         only 1 of 4 runs. Platform: 30 honest + 2 spam naive workers, \
         gold-question QC, 4 external experts at 25x pay.",
    );

    let mut naive_successes = 0u32;
    let mut naive_runs = 0u32;
    for (qi, q) in queries.iter().enumerate() {
        for (ui, &un) in UN_VALUES.iter().enumerate() {
            let out = run_query(q, un, scale.seed ^ ((qi as u64) << 12) ^ ((ui as u64) << 4));
            t.push_row(vec![
                q.query().to_string(),
                un.to_string(),
                out.max_promoted.to_string(),
                out.max_found.to_string(),
                format!("{:.0}", out.total_cost),
                out.judgments.to_string(),
            ]);
        }
        // Two naive-only runs per query, as in the paper.
        for r in 0..2u64 {
            naive_runs += 1;
            if run_naive_only(q, scale.seed ^ 0xA11 ^ ((qi as u64) << 8) ^ r) {
                naive_successes += 1;
            }
        }
    }
    t.push_row(vec![
        "(both)".into(),
        "-".into(),
        "-".into(),
        format!("naive-only: {naive_successes}/{naive_runs} successes"),
        "-".into(),
        "-".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query(seed: u64) -> SearchResultSet {
        let mut rng = StdRng::seed_from_u64(seed);
        SearchResultSet::synthesize("steiner tree best approximation", 50, 8, &mut rng)
    }

    #[test]
    fn two_phase_promotes_and_finds_the_max() {
        let q = query(1);
        for &un in &UN_VALUES {
            let out = run_query(&q, un, 42 + un as u64);
            assert!(out.max_promoted, "un={un}: max not promoted");
            assert!(out.max_found, "un={un}: experts failed to identify the max");
            assert!(out.total_cost > 0.0);
            assert!(out.judgments > 0);
        }
    }

    #[test]
    fn naive_only_is_unreliable() {
        // Over several runs, naive-only 2-MaxFind must fail at least once
        // (the near-cluster is invisible to naive workers), unlike the
        // two-phase algorithm.
        let q = query(2);
        let successes = (0..8).filter(|&s| run_naive_only(&q, 100 + s)).count();
        assert!(
            successes < 8,
            "naive-only should not be reliable: {successes}/8"
        );
    }

    #[test]
    fn platform_billing_reflects_expert_premium() {
        let q = query(3);
        let out = run_query(&q, 8, 7);
        // Phase 2 uses experts at 25x: the per-judgment average must exceed
        // the naive price.
        assert!(out.total_cost > out.judgments as f64);
    }

    #[test]
    fn full_run_emits_rows_for_both_queries() {
        let t = run(&Scale::quick());
        // 2 queries × 3 un values + the naive-only summary row.
        assert_eq!(t.rows.len(), 7);
        assert!(t.to_markdown().contains("asymmetric tsp"));
    }
}
