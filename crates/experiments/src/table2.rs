//! Table 2 — the CARS CrowdFlower experiment (Section 5.3).
//!
//! Same protocol as Table 1, on the CARS catalog: downsample 50 cars, run
//! the two-phase algorithm with `un = 5`, naïve comparisons from the
//! calibrated CARS crowd, experts *simulated* by the majority of 7 naïve
//! votes.
//!
//! Expected result — the paper's central negative finding: the most
//! expensive car reliably *reaches* the final round (Phase 1 works — it
//! only needs coarse discrimination), but the simulated experts **fail to
//! rank it first** (majority voting cannot crack the sub-20% price gaps),
//! and some cars far from the top-10 sneak into the final round. Repeated
//! naïve-only 2-MaxFind fails outright: the paper got 0/14 successes.
//! "Clearly a truly informed expert opinion is required in this case" —
//! which the companion run with *real* (threshold) experts demonstrates.

use crate::report::Table;
use crate::scale::Scale;
use crate::table1::FinalRound;
use crowd_core::algorithms::{filter_candidates, two_max_find_naive, FilterConfig};
use crowd_core::element::Instance;
use crowd_core::model::{ProbabilisticModel, ThresholdModel, TiePolicy, WorkerClass};
use crowd_core::oracle::{MajorityOracle, ModelOracle, SimulatedExpertOracle};
use crowd_core::tournament::Tournament;
use crowd_datasets::cars::{CarsCatalog, CarsWorkerModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs one two-phase experiment on CARS with simulated (majority-of-7)
/// experts.
pub fn run_two_phase_cars(instance: &Instance, un: usize, seed: u64) -> FinalRound {
    let oracle = ModelOracle::new(
        instance.clone(),
        CarsWorkerModel::calibrated(),
        ProbabilisticModel::perfect(), // never reached: experts are simulated
        StdRng::seed_from_u64(seed),
    );
    // Platform-style aggregation: 5 judgments per unit. On CARS this
    // converges to the crowd's shared prior, not the truth — the point of
    // the experiment.
    let oracle = MajorityOracle::new(oracle, 5, 1);
    let mut oracle = SimulatedExpertOracle::paper_default(oracle);
    let phase1 = filter_candidates(&mut oracle, &instance.ids(), &FilterConfig::new(un));
    let last_round = Tournament::all_play_all(&mut oracle, WorkerClass::Expert, &phase1.survivors);
    let ranking = last_round.ranking();
    FinalRound {
        candidates: phase1.survivors.len(),
        true_ranks: ranking.iter().map(|&(e, _)| instance.rank(e)).collect(),
        winner_rank: instance.rank(ranking[0].0),
    }
}

/// Runs one two-phase experiment on CARS with *real* experts: threshold
/// workers who discern price differences down to `delta_e` dollars.
pub fn run_two_phase_cars_real_experts(
    instance: &Instance,
    un: usize,
    delta_e: f64,
    seed: u64,
) -> FinalRound {
    let oracle = ModelOracle::new(
        instance.clone(),
        CarsWorkerModel::calibrated(),
        ThresholdModel::exact(delta_e, TiePolicy::UniformRandom),
        StdRng::seed_from_u64(seed),
    );
    // 5 judgments per naive unit; real experts judge once each.
    let mut oracle = MajorityOracle::new(oracle, 5, 1);
    let phase1 = filter_candidates(&mut oracle, &instance.ids(), &FilterConfig::new(un));
    let last_round = Tournament::all_play_all(&mut oracle, WorkerClass::Expert, &phase1.survivors);
    let ranking = last_round.ranking();
    FinalRound {
        candidates: phase1.survivors.len(),
        true_ranks: ranking.iter().map(|&(e, _)| instance.rank(e)).collect(),
        winner_rank: instance.rank(ranking[0].0),
    }
}

/// Success count of repeated naïve-only 2-MaxFind on CARS (paper: 0/14).
pub fn naive_only_successes(instance: &Instance, repetitions: u64, seed: u64) -> u64 {
    (0..repetitions)
        .filter(|&r| {
            let inner = ModelOracle::new(
                instance.clone(),
                CarsWorkerModel::calibrated(),
                ProbabilisticModel::perfect(),
                StdRng::seed_from_u64(seed ^ (r << 16) ^ 0xca5),
            );
            let mut oracle = MajorityOracle::new(inner, 5, 1);
            let out = two_max_find_naive(&mut oracle, &instance.ids());
            instance.rank(out.winner) == 1
        })
        .count() as u64
}

/// Runs the Table 2 reproduction.
pub fn run(scale: &Scale) -> Table {
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x72);
    let catalog = CarsCatalog::paper_default(&mut rng).downsample(50, &mut rng);
    let instance = catalog.to_instance();

    let exp1 = run_two_phase_cars(&instance, 5, scale.seed ^ 0x721);
    let exp2 = run_two_phase_cars(&instance, 5, scale.seed ^ 0x722);
    let real = run_two_phase_cars_real_experts(&instance, 5, 400.0, scale.seed ^ 0x723);
    let naive_ok = naive_only_successes(&instance, scale.repetitions, scale.seed);

    let depth = exp1
        .true_ranks
        .len()
        .max(exp2.true_ranks.len())
        .max(real.true_ranks.len());
    let mut t = Table::new(
        "table2",
        "CARS: true ranks of the final-round ranking (two simulated-expert experiments + real experts)",
        &[
            "final-round position",
            "Exp. 1 true rank",
            "Exp. 2 true rank",
            "Real experts true rank",
        ],
    )
    .with_notes(&format!(
        "un = 5, n = 50; Exp. 1-2 simulate experts by majority of 7 naive \
         votes (the paper's setup) — expected to FAIL to rank the top car \
         first, though it reaches the final round. The real-expert column \
         uses threshold experts (δe = $400) and should rank it first. \
         Top car reached the final round: exp1 = {}, exp2 = {}. Naive-only \
         2-MaxFind succeeded {}/{} times (paper: 0/14).",
        exp1.true_ranks.contains(&1),
        exp2.true_ranks.contains(&1),
        naive_ok,
        scale.repetitions
    ));
    for i in 0..depth {
        t.push_row(vec![
            (i + 1).to_string(),
            exp1.true_ranks
                .get(i)
                .map_or("-".into(), ToString::to_string),
            exp2.true_ranks
                .get(i)
                .map_or("-".into(), ToString::to_string),
            real.true_ranks
                .get(i)
                .map_or("-".into(), ToString::to_string),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cars_instance(seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        CarsCatalog::paper_default(&mut rng)
            .downsample(50, &mut rng)
            .to_instance()
    }

    #[test]
    fn top_car_reaches_the_final_round() {
        // Phase 1 only needs coarse discrimination, which the CARS crowd
        // has above 20% differences — the max should survive in (nearly)
        // every run.
        let mut reached = 0;
        for seed in 0..10 {
            let instance = cars_instance(100 + seed);
            let out = run_two_phase_cars(&instance, 5, seed);
            if out.true_ranks.contains(&1) {
                reached += 1;
            }
        }
        // See `real_experts_succeed` for why this is not 10/10: downsamples
        // whose top cluster exceeds un = 5 can evict the top car.
        assert!(
            reached >= 7,
            "top car reached the final round only {reached}/10 times"
        );
    }

    #[test]
    fn simulated_experts_often_fail_to_rank_it_first() {
        // The paper's negative result: across runs, the simulated experts
        // misrank the top car a substantial fraction of the time.
        let mut failures = 0;
        for seed in 0..10 {
            let instance = cars_instance(200 + seed);
            let out = run_two_phase_cars(&instance, 5, seed);
            if out.winner_rank != 1 {
                failures += 1;
            }
        }
        assert!(
            failures >= 3,
            "simulated experts failed only {failures}/10 times — the CARS barrier should bite"
        );
    }

    #[test]
    fn real_experts_succeed() {
        let mut ok = 0;
        for seed in 0..10 {
            let instance = cars_instance(300 + seed);
            let out = run_two_phase_cars_real_experts(&instance, 5, 400.0, seed);
            if out.winner_rank == 1 {
                ok += 1;
            }
        }
        // Failures happen exactly when the downsampled top cluster exceeds
        // un = 5 (the paper's value): the crowd's shared misperception then
        // evicts the top car in Phase 1 — the Section 5.2 underestimation
        // regime. The paper's own catalog had only 4 rivals within 20%.
        assert!(ok >= 6, "real experts succeeded only {ok}/10 times");
    }

    #[test]
    fn naive_only_mostly_fails() {
        // Aggregated over catalogs like the sibling tests: any single
        // downsample can get lucky (a tail-heavy draw leaves the shared
        // prior pointing at the true top car), but across catalogs the
        // paper's negative result must dominate (paper: 0/14 successes).
        let mut ok = 0;
        for seed in 0..10 {
            let instance = cars_instance(400 + seed);
            ok += naive_only_successes(&instance, 10, 7);
        }
        assert!(
            ok <= 40,
            "naive-only 2-MaxFind should mostly fail on CARS: {ok}/100"
        );
    }

    #[test]
    fn table_renders() {
        let t = run(&Scale::quick());
        assert_eq!(t.headers.len(), 4);
        assert!(t.notes.contains("paper: 0/14"));
    }
}
