//! Regression pin for the n=1e3 sequential-vs-parallel crossover.
//!
//! The parallel filter once *lost* to the sequential arena filter at this
//! size; the fix (batch-first oracle core + chunked work items) must never
//! change what the filter computes. Under a deterministic oracle the
//! parallel filter is defined to equal [`filter_candidates`] exactly —
//! identical survivors, sizes, rounds and comparison counts — at every
//! `--jobs` value, including the degenerate single-group round and the
//! short-final-group / kept-whole-tail layouts.

use crowd_core::algorithms::{filter_candidates, FilterConfig};
use crowd_core::element::Instance;
use crowd_core::oracle::PerfectOracle;
use crowd_experiments::engine;
use crowd_experiments::par_filter::parallel_filter_candidates;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn uniform_instance(n: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    Instance::new((0..n).map(|_| rng.gen_range(0.0..1000.0)).collect())
}

/// One test function on purpose: it owns the process-wide jobs knob for
/// its whole run, so no sibling test can race it.
#[test]
fn parallel_filter_equals_sequential_at_every_job_count() {
    // (n, un): the bench's n=1e3 tier (un = ⌈n^⅓⌉ = 10), a degenerate
    // single-group instance (n = g = 4·un), a short-final-group layout
    // (second group of 8 > un, still played), and a kept-whole tail
    // (second group of 2 ≤ un, promoted unplayed).
    let cases = [(1000usize, 10usize), (12, 3), (20, 3), (14, 3)];
    for (n, un) in cases {
        let inst = uniform_instance(n, (n + un) as u64);
        for cfg in [
            FilterConfig::new(un),
            FilterConfig::new(un).with_global_losses(),
        ] {
            let mut oracle = PerfectOracle::new(inst.clone());
            let seq = filter_candidates(&mut oracle, &inst.ids(), &cfg);
            for jobs in [1usize, 2, 3, 4, 8] {
                engine::set_jobs(jobs);
                let par = parallel_filter_candidates(
                    |_, _| PerfectOracle::new(inst.clone()),
                    &inst.ids(),
                    &cfg,
                );
                engine::set_jobs(0);
                assert_eq!(
                    seq, par,
                    "sequential/parallel divergence at n = {n}, un = {un}, jobs = {jobs}"
                );
            }
            assert!(seq.survivors.contains(&inst.max_element()));
        }
    }
}
