//! One benchmark per simulation figure of the paper (Figures 2-7, 9, 10):
//! each bench executes the exact experiment harness that regenerates the
//! figure, at quick scale.

use criterion::{criterion_group, criterion_main, Criterion};
use crowd_experiments::Scale;
use std::hint::black_box;

fn scale() -> Scale {
    Scale::quick()
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2_dots", |b| {
        b.iter(|| black_box(crowd_experiments::fig2::run_dots(&scale())))
    });
    c.bench_function("fig2_cars", |b| {
        b.iter(|| black_box(crowd_experiments::fig2::run_cars(&scale())))
    });
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3", |b| {
        b.iter(|| black_box(crowd_experiments::fig3::run(&scale())))
    });
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4", |b| {
        b.iter(|| black_box(crowd_experiments::fig4::run(&scale())))
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5", |b| {
        b.iter(|| black_box(crowd_experiments::fig5::run(&scale())))
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6", |b| {
        b.iter(|| black_box(crowd_experiments::fig6::run(&scale())))
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7", |b| {
        b.iter(|| black_box(crowd_experiments::fig7::run(&scale())))
    });
}

fn bench_fig9(c: &mut Criterion) {
    c.bench_function("fig9", |b| {
        b.iter(|| black_box(crowd_experiments::fig9::run(&scale())))
    });
}

fn bench_fig10(c: &mut Criterion) {
    c.bench_function("fig10", |b| {
        b.iter(|| black_box(crowd_experiments::fig10::run(&scale())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2, bench_fig3, bench_fig4, bench_fig5, bench_fig6, bench_fig7, bench_fig9, bench_fig10
}
criterion_main!(benches);
