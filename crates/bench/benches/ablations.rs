//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * the Appendix A global-loss-counter optimization (on/off);
//! * oracle memoization (on/off) — the other Appendix A optimization;
//! * the three Phase-2 options (2-MaxFind vs randomized vs all-play-all);
//! * the two-phase algorithm vs the multi-class cascade extension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd_bench::bench_oracle;
use crowd_core::algorithms::{
    expert_max_find, filter_candidates, ExpertMaxConfig, FilterConfig, Phase2, RandomizedConfig,
};
use crowd_core::model::TiePolicy;
use crowd_core::multiclass::{cascade_max_find, ClassSpec, ExpertiseLadder, LadderOracle};
use crowd_core::oracle::MemoOracle;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const N: usize = 1500;
const UN: usize = 15;
const UE: usize = 5;

fn bench_global_losses(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_global_losses");
    for (label, on) in [("off", false), ("on", true)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &on, |b, &on| {
            b.iter(|| {
                let (inst, mut oracle) = bench_oracle(N, UN, UE, 21);
                let mut cfg = FilterConfig::new(UN);
                cfg.track_global_losses = on;
                black_box(filter_candidates(&mut oracle, &inst.ids(), &cfg))
            })
        });
    }
    g.finish();
}

fn bench_memoization(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_memoization");
    g.bench_function("off", |b| {
        b.iter(|| {
            let (inst, mut oracle) = bench_oracle(N, UN, UE, 22);
            let mut rng = StdRng::seed_from_u64(23);
            black_box(expert_max_find(
                &mut oracle,
                &inst.ids(),
                &ExpertMaxConfig::new(UN),
                &mut rng,
            ))
        })
    });
    g.bench_function("on", |b| {
        b.iter(|| {
            let (inst, oracle) = bench_oracle(N, UN, UE, 22);
            let mut oracle = MemoOracle::new(oracle);
            let mut rng = StdRng::seed_from_u64(23);
            black_box(expert_max_find(
                &mut oracle,
                &inst.ids(),
                &ExpertMaxConfig::new(UN),
                &mut rng,
            ))
        })
    });
    g.finish();
}

fn bench_phase2_options(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_phase2");
    let options: [(&str, Phase2); 3] = [
        ("two_maxfind", Phase2::TwoMaxFind),
        (
            "randomized",
            Phase2::Randomized(RandomizedConfig::default().with_group_size(8)),
        ),
        ("all_play_all", Phase2::AllPlayAll),
    ];
    for (label, phase2) in options {
        g.bench_function(label, |b| {
            b.iter(|| {
                let (inst, mut oracle) = bench_oracle(N, UN, UE, 24);
                let mut rng = StdRng::seed_from_u64(25);
                let cfg = ExpertMaxConfig::new(UN).with_phase2(phase2);
                black_box(expert_max_find(&mut oracle, &inst.ids(), &cfg, &mut rng))
            })
        });
    }
    g.finish();
}

fn bench_cascade_vs_two_phase(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_cascade");
    g.bench_function("two_phase", |b| {
        b.iter(|| {
            let (inst, mut oracle) = bench_oracle(N, UN, UE, 26);
            let mut rng = StdRng::seed_from_u64(27);
            black_box(expert_max_find(
                &mut oracle,
                &inst.ids(),
                &ExpertMaxConfig::new(UN),
                &mut rng,
            ))
        })
    });
    g.bench_function("three_stage_cascade", |b| {
        b.iter(|| {
            let (inst, _) = bench_oracle(N, UN, UE, 26);
            let ladder = ExpertiseLadder::new(vec![
                ClassSpec::new(10_000.0, 0.0, 1.0),
                ClassSpec::new(1_000.0, 0.0, 10.0),
                ClassSpec::new(100.0, 0.0, 100.0),
            ]);
            let us: Vec<usize> = ladder.classes()[..2]
                .iter()
                .map(|cl| inst.indistinguishable_from_max(cl.delta).max(1))
                .collect();
            let mut oracle = LadderOracle::new(
                inst.clone(),
                &ladder,
                TiePolicy::UniformRandom,
                StdRng::seed_from_u64(28),
            );
            black_box(cascade_max_find(&mut oracle, &ladder, &inst.ids(), &us))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_global_losses, bench_memoization, bench_phase2_options, bench_cascade_vs_two_phase
}
criterion_main!(benches);
