//! One benchmark per CrowdFlower-style experiment: Table 1 (DOTS),
//! Table 2 (CARS), the Section 5.3 search evaluation (full platform
//! stack), and the Section 5.2 phase-1 survival sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use crowd_experiments::Scale;
use std::hint::black_box;

fn scale() -> Scale {
    Scale::quick()
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_dots", |b| {
        b.iter(|| black_box(crowd_experiments::table1::run(&scale())))
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_cars", |b| {
        b.iter(|| black_box(crowd_experiments::table2::run(&scale())))
    });
}

fn bench_search_eval(c: &mut Criterion) {
    c.bench_function("search_eval", |b| {
        b.iter(|| black_box(crowd_experiments::search_eval::run(&scale())))
    });
}

fn bench_phase1_survival(c: &mut Criterion) {
    c.bench_function("phase1_survival", |b| {
        b.iter(|| black_box(crowd_experiments::phase1_survival::run(&scale())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_table2, bench_search_eval, bench_phase1_survival
}
criterion_main!(benches);
