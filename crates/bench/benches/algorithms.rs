//! Microbenchmarks of the core algorithms across input sizes.
//!
//! These quantify the asymptotic story of Section 4: the Phase-1 filter is
//! `O(n·un)`, 2-MaxFind is `O(n^{3/2})`, the randomized algorithm is
//! `Θ(n)` (with large constants), and the full two-phase algorithm is
//! dominated by its naïve phase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowd_bench::bench_oracle;
use crowd_core::algorithms::{
    expert_max_find, filter_candidates, near_sort, randomized_max_find, top_k_find, two_max_find,
    ExpertMaxConfig, FilterConfig, RandomizedConfig, TopKConfig,
};
use crowd_core::model::WorkerClass;
use crowd_core::tournament::Tournament;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const SIZES: [usize; 3] = [500, 1000, 2000];
const UN: usize = 10;
const UE: usize = 5;

fn bench_filter(c: &mut Criterion) {
    let mut g = c.benchmark_group("filter_phase1");
    for n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let (inst, mut oracle) = bench_oracle(n, UN, UE, 7);
                black_box(filter_candidates(
                    &mut oracle,
                    &inst.ids(),
                    &FilterConfig::new(UN),
                ))
            })
        });
    }
    g.finish();
}

fn bench_two_maxfind(c: &mut Criterion) {
    let mut g = c.benchmark_group("two_maxfind");
    for n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let (inst, mut oracle) = bench_oracle(n, UN, UE, 8);
                black_box(two_max_find(&mut oracle, WorkerClass::Expert, &inst.ids()))
            })
        });
    }
    g.finish();
}

fn bench_randomized(c: &mut Criterion) {
    let mut g = c.benchmark_group("randomized_maxfind");
    for n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let (inst, mut oracle) = bench_oracle(n, UN, UE, 9);
                let mut rng = StdRng::seed_from_u64(10);
                black_box(randomized_max_find(
                    &mut oracle,
                    WorkerClass::Expert,
                    &inst.ids(),
                    &RandomizedConfig::default().with_group_size(16),
                    &mut rng,
                ))
            })
        });
    }
    g.finish();
}

fn bench_expert_max(c: &mut Criterion) {
    let mut g = c.benchmark_group("expert_max_full");
    for n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let (inst, mut oracle) = bench_oracle(n, UN, UE, 11);
                let mut rng = StdRng::seed_from_u64(12);
                black_box(expert_max_find(
                    &mut oracle,
                    &inst.ids(),
                    &ExpertMaxConfig::new(UN),
                    &mut rng,
                ))
            })
        });
    }
    g.finish();
}

fn bench_all_play_all(c: &mut Criterion) {
    let mut g = c.benchmark_group("all_play_all");
    for n in [50usize, 100, 200] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let (inst, mut oracle) = bench_oracle(n, 5, 2, 13);
                black_box(Tournament::all_play_all(
                    &mut oracle,
                    WorkerClass::Naive,
                    &inst.ids(),
                ))
            })
        });
    }
    g.finish();
}

fn bench_top_k(c: &mut Criterion) {
    let mut g = c.benchmark_group("top_k");
    for k in [1usize, 5, 20] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let (inst, mut oracle) = bench_oracle(1000, UN, UE, 14);
                black_box(top_k_find(
                    &mut oracle,
                    &inst.ids(),
                    &TopKConfig::new(k, UN),
                ))
            })
        });
    }
    g.finish();
}

fn bench_near_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("near_sort");
    for n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let (inst, mut oracle) = bench_oracle(n, UN, UE, 15);
                black_box(near_sort(&mut oracle, WorkerClass::Naive, &inst.ids()))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_filter, bench_two_maxfind, bench_randomized, bench_expert_max, bench_all_play_all, bench_top_k, bench_near_sort
}
criterion_main!(benches);
