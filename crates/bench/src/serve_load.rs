//! The `serve_load` benchmark pipeline: throughput and tail latency of
//! the crowd-serve service layer under seeded load, written to
//! `SERVE_results.json`.
//!
//! Mirrors the [`crate::pipeline`] split: the `meta` half (admission,
//! shedding, degradation, breaker, and latency statistics per scenario)
//! is fully deterministic — byte-identical on any machine at any job
//! count — and is committed as the CI baseline; the `run`/`timings`
//! halves carry machine-local wall-clock measurements and are
//! informational only.

use crowd_core::model::WorkerClass;
use crowd_obs::{install_recorder, Recorder};
use crowd_platform::fault::{FaultConfig, LatencyModel};
use crowd_platform::serve::{
    ArrivalPlan, CrowdServe, ServeConfig, ShardSpec, TenantId, TenantPolicy,
};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Default seed, shared with the committed `SERVE_results.json`.
pub const DEFAULT_SEED: u64 = 45223;

/// Report schema version.
pub const SCHEMA: u32 = 1;

/// Ticks generous enough that every scenario drains naturally.
const MAX_TICKS: u64 = 2_000;

/// One load scenario: a label plus the arrival rate (jobs per tick as
/// `num/den`) driven at the shared service config.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioSpec {
    /// Display label, e.g. `"0.5x"`.
    pub label: String,
    /// Arrival-rate numerator.
    pub rate_num: u64,
    /// Arrival-rate denominator.
    pub rate_den: u64,
    /// Jobs offered over the run.
    pub total_jobs: u64,
}

/// The standard scenario set: arrival-rate multipliers of the nominal
/// one-job-per-tick load. `0.5x` is comfortably inside the admission
/// envelope; `2x` is far outside it and must shed.
pub fn scenarios() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec {
            label: "0.5x".into(),
            rate_num: 1,
            rate_den: 2,
            total_jobs: 240,
        },
        ScenarioSpec {
            // At one job per tick the token buckets' reservation envelope
            // is already the binding constraint, so this rate sheds too —
            // the shed-rate column makes that knee visible.
            label: "1x".into(),
            rate_num: 1,
            rate_den: 1,
            total_jobs: 240,
        },
        ScenarioSpec {
            label: "2x".into(),
            rate_num: 3,
            rate_den: 1,
            total_jobs: 240,
        },
    ]
}

/// The benchmarked service config: two tenants with tight budgets, two
/// naive shards (one mildly faulty, so breakers and retries do real
/// work) and a small expert shard.
pub fn bench_config() -> ServeConfig {
    ServeConfig::basic()
        .with_tenants(vec![
            TenantPolicy::new(TenantId(0), 600, 16),
            TenantPolicy::new(TenantId(1), 300, 8),
        ])
        .with_shards(vec![
            ShardSpec::honest(WorkerClass::Naive, 12, 36).with_fault(
                FaultConfig::none()
                    .with_no_answer(0.10)
                    .with_abandon(0.05)
                    .with_latency(LatencyModel::Geometric { p: 0.7, cap: 6 })
                    .with_timeout_steps(4),
            ),
            ShardSpec::honest(WorkerClass::Naive, 12, 36),
            ShardSpec::honest(WorkerClass::Expert, 4, 12),
        ])
        .with_queue_cap(4)
}

/// Deterministic statistics of one scenario — part of the CI baseline.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioMeta {
    /// Scenario label.
    pub label: String,
    /// Logical ticks the run took to drain.
    pub ticks: u64,
    /// Jobs offered (submitted) across tenants.
    pub offered: u64,
    /// Jobs admitted, immediately or via the queue.
    pub admitted: u64,
    /// Jobs shed by admission control.
    pub shed: u64,
    /// Shed rate in basis points of offered load (deterministic integer).
    pub shed_bps: u64,
    /// Jobs that completed with no degradation label.
    pub completed_ok: u64,
    /// Jobs that completed with an explicit degradation label.
    pub degraded: u64,
    /// Comparisons charged across tenants.
    pub comparisons: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Pairs dead-lettered mid-tournament.
    pub dead_letters: u64,
    /// Worst per-tenant p99 job latency, in ticks.
    pub p99_latency_ticks: u64,
    /// Worst per-tenant max job latency, in ticks.
    pub max_latency_ticks: u64,
    /// Durable write-ahead journal bytes the run produced.
    pub journal_bytes: u64,
}

/// Wall-clock measurements of one scenario — informational only.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioTiming {
    /// Wall-clock nanoseconds for the whole run.
    pub wall_nanos: u64,
    /// Completed jobs per wall-clock second.
    pub jobs_per_sec: f64,
    /// Charged comparisons per wall-clock second.
    pub comparisons_per_sec: f64,
}

/// The deterministic half of a [`ServeLoadReport`] — the CI baseline.
#[derive(Debug, Clone, Serialize)]
pub struct ServeLoadMeta {
    /// Report schema version.
    pub schema: u32,
    /// Seed every scenario derives its streams from.
    pub seed: u64,
    /// Per-scenario deterministic statistics.
    pub scenarios: Vec<ScenarioMeta>,
}

/// The full `serve_load` report, as written to `SERVE_results.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ServeLoadReport {
    /// Deterministic statistics (byte-identical on any machine).
    pub meta: ServeLoadMeta,
    /// Wall-clock measurements (informational).
    pub timings: Vec<ScenarioTiming>,
}

impl ServeLoadReport {
    /// The report as pretty-printed JSON, newline-terminated.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (the report is a plain value tree,
    /// so it cannot).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes") + "\n"
    }

    /// Only the deterministic [`ServeLoadMeta`] half as pretty-printed
    /// JSON — what CI diffs against the committed baseline.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (it cannot; see [`Self::to_json`]).
    pub fn metadata_json(&self) -> String {
        serde_json::to_string_pretty(&self.meta).expect("metadata serializes") + "\n"
    }
}

/// Runs every scenario in order and assembles the report.
pub fn run_serve_load(seed: u64) -> ServeLoadReport {
    let mut metas = Vec::new();
    let mut timings = Vec::new();
    for (idx, spec) in scenarios().iter().enumerate() {
        let plan = ArrivalPlan::new(
            seed ^ (idx as u64).wrapping_mul(0x9E37_79B9),
            spec.rate_num,
            spec.rate_den,
            spec.total_jobs,
            2,
        )
        .with_catalog(4, 9)
        .with_deadline(40);
        // A scoped recorder keeps obs traffic off the global sink; the
        // deterministic numbers come from the service report itself.
        let _guard = install_recorder(Arc::new(Recorder::new()));
        let started = Instant::now();
        let mut service = CrowdServe::new(bench_config(), seed).expect("config is valid");
        let report = service
            .run(&plan, MAX_TICKS)
            .expect("no chaos plan: the run cannot crash");
        let nanos = started.elapsed().as_nanos() as u64;

        let offered: u64 = report.tenants.iter().map(|t| t.offered).sum();
        let admitted: u64 = report.tenants.iter().map(|t| t.admitted).sum();
        let completed_ok: u64 = report.tenants.iter().map(|t| t.completed_ok).sum();
        let degraded: u64 = report.tenants.iter().map(|t| t.degraded).sum();
        let completed = report.jobs.len() as u64;
        metas.push(ScenarioMeta {
            label: spec.label.clone(),
            ticks: report.ticks,
            offered,
            admitted,
            shed: report.shed,
            shed_bps: (report.shed * 10_000).checked_div(offered).unwrap_or(0),
            completed_ok,
            degraded,
            comparisons: report.comparisons,
            breaker_trips: report.breaker_trips,
            dead_letters: report.dead_letters,
            p99_latency_ticks: report
                .tenants
                .iter()
                .map(|t| t.p99_latency_ticks)
                .max()
                .unwrap_or(0),
            max_latency_ticks: report
                .tenants
                .iter()
                .map(|t| t.max_latency_ticks)
                .max()
                .unwrap_or(0),
            journal_bytes: service.journal().durable().len() as u64,
        });
        timings.push(ScenarioTiming {
            wall_nanos: nanos,
            jobs_per_sec: if nanos == 0 {
                0.0
            } else {
                completed as f64 * 1e9 / nanos as f64
            },
            comparisons_per_sec: if nanos == 0 {
                0.0
            } else {
                report.comparisons as f64 * 1e9 / nanos as f64
            },
        });
    }
    ServeLoadReport {
        meta: ServeLoadMeta {
            schema: SCHEMA,
            seed,
            scenarios: metas,
        },
        timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_is_deterministic() {
        let a = run_serve_load(DEFAULT_SEED);
        let b = run_serve_load(DEFAULT_SEED);
        assert_eq!(a.metadata_json(), b.metadata_json());
    }

    #[test]
    fn scenarios_cover_under_and_overload() {
        let report = run_serve_load(DEFAULT_SEED);
        assert_eq!(report.meta.scenarios.len(), 3);
        let under = &report.meta.scenarios[0];
        let over = &report.meta.scenarios[2];
        assert_eq!(under.shed, 0, "half load must not shed: {under:?}");
        assert!(over.shed > 0, "double load must shed: {over:?}");
        for s in &report.meta.scenarios {
            assert_eq!(s.offered, s.admitted + s.shed, "{s:?}");
            assert_eq!(s.admitted, s.completed_ok + s.degraded, "{s:?}");
        }
    }
}
