//! The `serve_load` benchmark pipeline: throughput and tail latency of
//! the crowd-serve service layer under seeded load, written to
//! `SERVE_results.json`.
//!
//! Mirrors the [`crate::pipeline`] split: the `meta` half (admission,
//! shedding, degradation, breaker, and latency statistics per scenario)
//! is fully deterministic — byte-identical on any machine at any job
//! count — and is committed as the CI baseline; the `run`/`timings`
//! halves carry machine-local wall-clock measurements and are
//! informational only.

use crowd_core::model::WorkerClass;
use crowd_obs::{install_recorder, Recorder};
use crowd_platform::fault::{FaultConfig, LatencyModel};
use crowd_platform::serve::{
    ArrivalPlan, CrowdServe, ServeConfig, ShardSpec, SloPolicy, TenantId, TenantPolicy,
};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Default seed, shared with the committed `SERVE_results.json`.
pub const DEFAULT_SEED: u64 = 45223;

/// Report schema version. v2: rounded `shed_bps` that is omitted (not
/// zero) when no load was offered, latency columns omitted when no job
/// completed, a `4x` scenario, catalog overlap, and judgment-cache
/// columns. v3: per-scenario SLO columns (`slo_breaches`,
/// `slo_burn_max_bps`) from the per-tenant sliding-window monitors.
pub const SCHEMA: u32 = 3;

/// Ticks generous enough that every scenario drains naturally.
const MAX_TICKS: u64 = 2_000;

/// One load scenario: a label plus the arrival rate (jobs per tick as
/// `num/den`) driven at the shared service config.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioSpec {
    /// Display label, e.g. `"0.5x"`.
    pub label: String,
    /// Arrival-rate numerator.
    pub rate_num: u64,
    /// Arrival-rate denominator.
    pub rate_den: u64,
    /// Jobs offered over the run.
    pub total_jobs: u64,
    /// Catalog overlap percentage fed to the arrival plan (see
    /// [`ArrivalPlan::with_overlap`]).
    pub overlap_percent: u32,
}

/// Shared-universe size used by every scenario's arrival plan.
const OVERLAP_UNIVERSE: u32 = 12;

/// The standard scenario set: arrival-rate multipliers of the nominal
/// one-job-per-tick load. `0.5x` is comfortably inside the admission
/// envelope; `2x` and `4x` are far outside it and must shed. Every
/// scenario runs at 50% catalog overlap so the judgment-cache columns
/// measure real cross-job reuse at each load tier.
pub fn scenarios() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec {
            label: "0.5x".into(),
            rate_num: 1,
            rate_den: 2,
            total_jobs: 240,
            overlap_percent: 50,
        },
        ScenarioSpec {
            // At one job per tick the token buckets' reservation envelope
            // is already the binding constraint, so this rate sheds too —
            // the shed-rate column makes that knee visible.
            label: "1x".into(),
            rate_num: 1,
            rate_den: 1,
            total_jobs: 240,
            overlap_percent: 50,
        },
        ScenarioSpec {
            label: "2x".into(),
            rate_num: 3,
            rate_den: 1,
            total_jobs: 240,
            overlap_percent: 50,
        },
        ScenarioSpec {
            // Deep overload: most of the offered load must shed, and the
            // latency columns exercise their no-completions edge case in
            // tests at this tier.
            label: "4x".into(),
            rate_num: 6,
            rate_den: 1,
            total_jobs: 240,
            overlap_percent: 50,
        },
    ]
}

/// The benchmarked service config: two tenants with tight budgets, two
/// naive shards (one mildly faulty, so breakers and retries do real
/// work) and a small expert shard.
pub fn bench_config() -> ServeConfig {
    ServeConfig::basic()
        .with_tenants(vec![
            TenantPolicy::new(TenantId(0), 600, 16),
            TenantPolicy::new(TenantId(1), 300, 8),
        ])
        .with_shards(vec![
            ShardSpec::honest(WorkerClass::Naive, 12, 36).with_fault(
                FaultConfig::none()
                    .with_no_answer(0.10)
                    .with_abandon(0.05)
                    .with_latency(LatencyModel::Geometric { p: 0.7, cap: 6 })
                    .with_timeout_steps(4),
            ),
            ShardSpec::honest(WorkerClass::Naive, 12, 36),
            ShardSpec::honest(WorkerClass::Expert, 4, 12),
        ])
        .with_queue_cap(4)
        // Tighter than the serve sweep's posture: this config's generous
        // buckets and warm cache keep p99 under 10 ticks at every load,
        // so the objective sits at 5 ticks to make queue pressure visible
        // in the SLO columns.
        .with_slo(
            SloPolicy::default_on()
                .with_latency_objective(5)
                .with_bad_budget_bps(2_000),
        )
}

/// Deterministic statistics of one scenario — part of the CI baseline.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioMeta {
    /// Scenario label.
    pub label: String,
    /// Logical ticks the run took to drain.
    pub ticks: u64,
    /// Jobs offered (submitted) across tenants.
    pub offered: u64,
    /// Jobs admitted, immediately or via the queue.
    pub admitted: u64,
    /// Jobs shed by admission control.
    pub shed: u64,
    /// Shed rate in basis points of offered load, rounded to the nearest
    /// basis point. `None` when the scenario offered no load at all —
    /// "nothing offered" is not the same fact as "nothing shed".
    pub shed_bps: Option<u64>,
    /// Jobs that completed with no degradation label.
    pub completed_ok: u64,
    /// Jobs that completed with an explicit degradation label.
    pub degraded: u64,
    /// Comparisons charged across tenants.
    pub comparisons: u64,
    /// Pair verdicts served from the cross-job judgment cache.
    pub cache_hits: u64,
    /// Comparisons (votes) those hits would otherwise have bought.
    pub cache_saved_comparisons: u64,
    /// Cache hit rate in basis points of lookups, rounded. `None` when
    /// the run performed no lookups.
    pub cache_hit_rate_bps: Option<u64>,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Pairs dead-lettered mid-tournament.
    pub dead_letters: u64,
    /// SLO breach transitions, summed over tenants.
    pub slo_breaches: u64,
    /// Worst per-tenant error-budget burn over the run, in basis points.
    pub slo_burn_max_bps: u32,
    /// Worst p99 job latency over tenants that completed at least one
    /// job, in ticks. `None` when no tenant completed anything — folding
    /// a default 0 here would report "instant" for "no data".
    pub p99_latency_ticks: Option<u64>,
    /// Worst max job latency over tenants that completed at least one
    /// job, in ticks; `None` under the same no-completions rule.
    pub max_latency_ticks: Option<u64>,
    /// Durable write-ahead journal bytes the run produced.
    pub journal_bytes: u64,
}

/// `numer · 10000 / denom`, rounded to the nearest basis point; `None`
/// when `denom` is zero (the ratio is undefined, not zero).
fn ratio_bps(numer: u64, denom: u64) -> Option<u64> {
    if denom == 0 {
        return None;
    }
    Some((numer.saturating_mul(10_000) + denom / 2) / denom)
}

/// Wall-clock measurements of one scenario — informational only.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioTiming {
    /// Wall-clock nanoseconds for the whole run.
    pub wall_nanos: u64,
    /// Completed jobs per wall-clock second.
    pub jobs_per_sec: f64,
    /// Charged comparisons per wall-clock second.
    pub comparisons_per_sec: f64,
}

/// The deterministic half of a [`ServeLoadReport`] — the CI baseline.
#[derive(Debug, Clone, Serialize)]
pub struct ServeLoadMeta {
    /// Report schema version.
    pub schema: u32,
    /// Seed every scenario derives its streams from.
    pub seed: u64,
    /// Per-scenario deterministic statistics.
    pub scenarios: Vec<ScenarioMeta>,
}

/// The full `serve_load` report, as written to `SERVE_results.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ServeLoadReport {
    /// Deterministic statistics (byte-identical on any machine).
    pub meta: ServeLoadMeta,
    /// Wall-clock measurements (informational).
    pub timings: Vec<ScenarioTiming>,
}

impl ServeLoadReport {
    /// The report as pretty-printed JSON, newline-terminated.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (the report is a plain value tree,
    /// so it cannot).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes") + "\n"
    }

    /// Only the deterministic [`ServeLoadMeta`] half as pretty-printed
    /// JSON — what CI diffs against the committed baseline.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (it cannot; see [`Self::to_json`]).
    pub fn metadata_json(&self) -> String {
        serde_json::to_string_pretty(&self.meta).expect("metadata serializes") + "\n"
    }
}

/// Runs every scenario in order and assembles the report.
pub fn run_serve_load(seed: u64) -> ServeLoadReport {
    let mut metas = Vec::new();
    let mut timings = Vec::new();
    for (idx, spec) in scenarios().iter().enumerate() {
        let plan = ArrivalPlan::new(
            seed ^ (idx as u64).wrapping_mul(0x9E37_79B9),
            spec.rate_num,
            spec.rate_den,
            spec.total_jobs,
            2,
        )
        .with_catalog(4, 9)
        .with_deadline(40)
        .with_overlap(spec.overlap_percent, OVERLAP_UNIVERSE);
        // A scoped recorder keeps obs traffic off the global sink; the
        // deterministic numbers come from the service report itself.
        let _guard = install_recorder(Arc::new(Recorder::new()));
        let started = Instant::now();
        let mut service = CrowdServe::new(bench_config(), seed).expect("config is valid");
        let report = service
            .run(&plan, MAX_TICKS)
            .expect("no chaos plan: the run cannot crash");
        let nanos = started.elapsed().as_nanos() as u64;

        let offered: u64 = report.tenants.iter().map(|t| t.offered).sum();
        let admitted: u64 = report.tenants.iter().map(|t| t.admitted).sum();
        let completed_ok: u64 = report.tenants.iter().map(|t| t.completed_ok).sum();
        let degraded: u64 = report.tenants.iter().map(|t| t.degraded).sum();
        let completed = report.jobs.len() as u64;
        let cache = service.cache_stats();
        // Latency aggregation only over tenants that completed a job;
        // a tenant with nothing completed has no latency distribution,
        // and folding its default 0 would corrupt the worst-case view.
        let finished = || {
            report
                .tenants
                .iter()
                .filter(|t| t.completed_ok + t.degraded > 0)
        };
        metas.push(ScenarioMeta {
            label: spec.label.clone(),
            ticks: report.ticks,
            offered,
            admitted,
            shed: report.shed,
            shed_bps: ratio_bps(report.shed, offered),
            completed_ok,
            degraded,
            comparisons: report.comparisons,
            cache_hits: cache.hits,
            cache_saved_comparisons: cache.saved_comparisons,
            cache_hit_rate_bps: ratio_bps(cache.hits, cache.lookups),
            breaker_trips: report.breaker_trips,
            dead_letters: report.dead_letters,
            slo_breaches: report.tenants.iter().map(|t| t.slo_breaches).sum(),
            slo_burn_max_bps: report
                .tenants
                .iter()
                .map(|t| t.slo_burn_max_bps)
                .max()
                .unwrap_or(0),
            p99_latency_ticks: finished().map(|t| t.p99_latency_ticks).max(),
            max_latency_ticks: finished().map(|t| t.max_latency_ticks).max(),
            journal_bytes: service.journal().durable().len() as u64,
        });
        timings.push(ScenarioTiming {
            wall_nanos: nanos,
            jobs_per_sec: if nanos == 0 {
                0.0
            } else {
                completed as f64 * 1e9 / nanos as f64
            },
            comparisons_per_sec: if nanos == 0 {
                0.0
            } else {
                report.comparisons as f64 * 1e9 / nanos as f64
            },
        });
    }
    ServeLoadReport {
        meta: ServeLoadMeta {
            schema: SCHEMA,
            seed,
            scenarios: metas,
        },
        timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_is_deterministic() {
        let a = run_serve_load(DEFAULT_SEED);
        let b = run_serve_load(DEFAULT_SEED);
        assert_eq!(a.metadata_json(), b.metadata_json());
    }

    #[test]
    fn scenarios_cover_under_and_overload() {
        let report = run_serve_load(DEFAULT_SEED);
        assert_eq!(report.meta.scenarios.len(), 4);
        let under = &report.meta.scenarios[0];
        let over = &report.meta.scenarios[2];
        assert_eq!(under.shed, 0, "half load must not shed: {under:?}");
        assert_eq!(
            under.shed_bps,
            Some(0),
            "offered load with zero shed is a real 0"
        );
        assert!(over.shed > 0, "double load must shed: {over:?}");
        for s in &report.meta.scenarios {
            assert_eq!(s.offered, s.admitted + s.shed, "{s:?}");
            assert_eq!(s.admitted, s.completed_ok + s.degraded, "{s:?}");
            assert!(
                s.cache_hits > 0,
                "50% overlap must produce cache hits: {s:?}"
            );
            assert!(s.cache_saved_comparisons >= s.cache_hits, "{s:?}");
        }
    }

    #[test]
    fn slo_burn_tracks_the_load_gradient() {
        let report = run_serve_load(DEFAULT_SEED);
        let s = &report.meta.scenarios;
        assert_eq!(
            (s[0].slo_breaches, s[0].slo_burn_max_bps),
            (0, 0),
            "half load stays inside the objective: {:?}",
            s[0]
        );
        assert_eq!(
            s[1].slo_breaches, 0,
            "1x burns budget without breaching: {:?}",
            s[1]
        );
        assert!(s[1].slo_burn_max_bps > 0, "{:?}", s[1]);
        for over in &s[2..] {
            assert!(
                over.slo_breaches > 0,
                "overload tiers must breach the objective: {over:?}"
            );
            assert!(over.slo_burn_max_bps > 2_000, "{over:?}");
        }
    }

    #[test]
    fn shed_bps_rounds_to_nearest_and_distinguishes_no_offered_load() {
        // 1/3 shed = 3333.33… bps: truncation said 3333, and so does
        // rounding; 2/3 = 6666.67 bps must round *up* to 6667.
        assert_eq!(ratio_bps(1, 3), Some(3333));
        assert_eq!(ratio_bps(2, 3), Some(6667));
        assert_eq!(ratio_bps(1, 2), Some(5000));
        assert_eq!(ratio_bps(0, 7), Some(0));
        // Zero offered load is "no data", not "0 bps shed".
        assert_eq!(ratio_bps(0, 0), None);
        assert_eq!(ratio_bps(5, 0), None);
    }

    #[test]
    fn latency_columns_skip_tenants_with_no_completions_at_4x() {
        // The 4x overload tier, but with budgets so tight that no job
        // is ever admitted: every tenant finishes the run with zero
        // completions, and the worst-per-tenant latency columns must
        // say "no data", not fold a default 0.
        let spec = scenarios().pop().expect("4x scenario exists");
        assert_eq!(spec.label, "4x");
        let plan = ArrivalPlan::new(
            DEFAULT_SEED,
            spec.rate_num,
            spec.rate_den,
            spec.total_jobs,
            2,
        )
        .with_catalog(4, 9)
        .with_deadline(40);
        let config = bench_config().with_tenants(vec![
            TenantPolicy::new(TenantId(0), 1, 0),
            TenantPolicy::new(TenantId(1), 1, 0),
        ]);
        let mut service = CrowdServe::new(config, DEFAULT_SEED).expect("config is valid");
        let report = service.run(&plan, MAX_TICKS).expect("no chaos plan");
        assert!(report.jobs.is_empty(), "budgets admit nothing");
        let finished: Vec<_> = report
            .tenants
            .iter()
            .filter(|t| t.completed_ok + t.degraded > 0)
            .collect();
        assert!(finished.is_empty());
        let p99: Option<u64> = finished.iter().map(|t| t.p99_latency_ticks).max();
        let max: Option<u64> = finished.iter().map(|t| t.max_latency_ticks).max();
        assert_eq!(p99, None, "no completions anywhere must surface as None");
        assert_eq!(max, None);
        // And the shed column still reports a real rate for the load
        // that *was* offered and entirely shed.
        let offered: u64 = report.tenants.iter().map(|t| t.offered).sum();
        assert!(offered > 0);
        assert_eq!(ratio_bps(report.shed, offered), Some(10_000));
    }
}
