//! The reproducible benchmark pipeline behind the `bench` binary.
//!
//! Times the three hot paths of the reproduction — sequential Phase-1
//! filtering, the [`parallel_filter_candidates`] fan-out, 2-MaxFind on the
//! Phase-1 survivors, and the full two-phase run — across catalog-size
//! tiers, and assembles a [`BenchReport`] that the binary writes as
//! `BENCH_results.json`.
//!
//! The report is split in three on purpose (schema 3):
//!
//! * [`BenchMeta`] holds everything deterministic — comparison counts,
//!   rounds, survivor/peak candidate-set sizes and the `⌈m/w⌉`
//!   physical-step estimate. Every RNG is seeded from the report seed (per
//!   group via [`group_seed`] on the parallel path), so this half is
//!   **byte-identical at any `--jobs` count**; CI diffs it against the
//!   committed baseline and fails on comparison-count drift.
//! * [`RunInfo`] describes how the run was configured on this machine
//!   (the `--jobs` worker count). It is neither part of the deterministic
//!   baseline nor a measurement.
//! * [`BenchTimings`] holds wall-clock numbers and throughput — nothing
//!   else. These vary run to run and are informational only.
//!
//! The split is load-bearing: [`BenchReport::metadata_json`] serializes
//! *only* [`BenchMeta`], so no machine-dependent field (`jobs`,
//! `wall_nanos`, `comparisons_per_sec`) can ever poison the CI drift
//! diff. Schema 2 kept `jobs` inside the timings block; schema 3 moved it
//! to [`RunInfo`] so the timings half is measurements only.

use crowd_core::algorithms::{
    expert_max_find, filter_candidates, two_max_find, ExpertMaxConfig, FilterConfig, FilterOutcome,
};
use crowd_core::element::Instance;
use crowd_core::model::{ExpertModel, TiePolicy, WorkerClass};
use crowd_core::oracle::{ComparisonCounts, SimulatedOracle};
use crowd_experiments::runner::nominal_physical_steps;
use crowd_experiments::{group_seed, parallel_filter_candidates};
use crowd_obs::{names as metric_names, MetricSample, Recorder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Default report seed (the binary's `--seed` default).
pub const DEFAULT_SEED: u64 = 0xB0A7;

/// One catalog-size tier of the benchmark.
#[derive(Debug, Clone, Copy)]
pub struct TierSpec {
    /// Catalog size `n`.
    pub n: usize,
    /// Planted `un(n)`.
    pub un: usize,
    /// Planted `ue(n)`.
    pub ue: usize,
}

/// The tier for a catalog size `n`, at the pipeline's default worker
/// parameters: `un = ⌈n^(1/3)⌉` (so Phase 1 has real work at every size)
/// and `ue = max(2, un/4)`.
pub fn tier_for(n: usize) -> TierSpec {
    let un = (n as f64).cbrt().ceil() as usize;
    TierSpec {
        n,
        un,
        ue: (un / 4).max(2),
    }
}

/// The tiers of a named tier set: `small` is n ∈ {10³, 10⁴}, `full` adds
/// n = 10⁵ (the CI smoke tier, where the parallel filter must win), and
/// `large` adds n = 10⁶ for offline scaling runs. Unknown names return
/// `None`.
pub fn tiers(name: &str) -> Option<Vec<TierSpec>> {
    match name {
        "small" => Some(vec![tier_for(1_000), tier_for(10_000)]),
        "full" => Some(vec![tier_for(1_000), tier_for(10_000), tier_for(100_000)]),
        "large" => Some(vec![
            tier_for(1_000),
            tier_for(10_000),
            tier_for(100_000),
            tier_for(1_000_000),
        ]),
        _ => None,
    }
}

/// Deterministic statistics of one benchmark section.
#[derive(Debug, Clone, Serialize)]
pub struct SectionMeta {
    /// Naïve comparisons performed.
    pub naive_comparisons: u64,
    /// Expert comparisons performed.
    pub expert_comparisons: u64,
    /// Rounds executed (filter rounds, or 2-MaxFind elimination rounds).
    pub rounds: usize,
    /// Peak candidate-set size: the largest working set after the first
    /// shrink — i.e. the biggest survivor set any later round (or the
    /// expert phase) had to carry.
    pub peak_candidates: usize,
    /// Elements alive when the section finished (1 for a max-find).
    pub survivors: usize,
    /// Physical-step estimate under the paper's `⌈m/w⌉` batch-latency rule
    /// with the nominal pools of [`crowd_experiments::runner`].
    pub physical_steps: u64,
}

/// Wall-clock measurements of one section (informational, non-deterministic).
#[derive(Debug, Clone, Serialize)]
pub struct SectionTiming {
    /// Wall-clock time, nanoseconds.
    pub wall_nanos: u64,
    /// Comparisons answered per second of wall time.
    pub comparisons_per_sec: f64,
}

/// Deterministic half of one tier's results.
#[derive(Debug, Clone, Serialize)]
pub struct TierMeta {
    /// Catalog size.
    pub n: usize,
    /// Planted `un(n)`.
    pub un: usize,
    /// Planted `ue(n)`.
    pub ue: usize,
    /// Sequential arena filter ([`filter_candidates`]).
    pub filter: SectionMeta,
    /// Parallel filter ([`parallel_filter_candidates`]).
    pub filter_parallel: SectionMeta,
    /// 2-MaxFind (expert class) on the sequential filter's survivors.
    pub expert: SectionMeta,
    /// Full two-phase [`expert_max_find`] run.
    pub full: SectionMeta,
}

/// Wall-clock half of one tier's results.
#[derive(Debug, Clone, Serialize)]
pub struct TierTiming {
    /// Catalog size (to pair with the matching [`TierMeta`]).
    pub n: usize,
    /// Sequential filter timing.
    pub filter: SectionTiming,
    /// Parallel filter timing.
    pub filter_parallel: SectionTiming,
    /// Expert-phase timing.
    pub expert: SectionTiming,
    /// Full two-phase timing.
    pub full: SectionTiming,
}

/// The deterministic half of a [`BenchReport`] — the CI baseline.
#[derive(Debug, Clone, Serialize)]
pub struct BenchMeta {
    /// Report schema version.
    pub schema: u32,
    /// Tier-set label (`"small"` or `"full"`).
    pub tier: String,
    /// Seed every section derives its RNG streams from.
    pub seed: u64,
    /// Per-tier deterministic statistics.
    pub tiers: Vec<TierMeta>,
    /// Aggregated `crowd-obs` metrics of the whole run: per-tier histograms
    /// of round survivor-set sizes ([`crowd_obs::names::ROUND_SURVIVORS`])
    /// and section comparison totals
    /// ([`crowd_obs::names::ROUND_COMPARISONS`]), labelled by catalog size
    /// and section. Derived from the deterministic counts, so this section
    /// is part of the CI baseline.
    pub metrics: Vec<MetricSample>,
}

/// Machine-local run configuration — how the benchmark was invoked, not
/// what it measured and not part of the deterministic baseline.
#[derive(Debug, Clone, Serialize)]
pub struct RunInfo {
    /// Worker threads the run was allowed to use.
    pub jobs: usize,
}

/// The wall-clock half of a [`BenchReport`]: measurements only.
#[derive(Debug, Clone, Serialize)]
pub struct BenchTimings {
    /// Per-tier wall-clock measurements.
    pub tiers: Vec<TierTiming>,
}

/// A full benchmark report, as written to `BENCH_results.json`.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Deterministic statistics (byte-identical at any job count).
    pub meta: BenchMeta,
    /// Run configuration (machine-local, informational).
    pub run: RunInfo,
    /// Wall-clock measurements (informational).
    pub timings: BenchTimings,
}

impl BenchReport {
    /// The report as pretty-printed JSON, newline-terminated.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (the report is a plain value tree, so
    /// it cannot).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes") + "\n"
    }

    /// Only the deterministic [`BenchMeta`] half as pretty-printed JSON —
    /// what the determinism test and the CI baseline check compare.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (it cannot; see [`Self::to_json`]).
    pub fn metadata_json(&self) -> String {
        serde_json::to_string_pretty(&self.meta).expect("metadata serializes") + "\n"
    }
}

/// Runs every tier and assembles the report. `label` is the tier-set name
/// recorded in the metadata (use [`tiers`] to resolve the standard sets).
pub fn run_bench(label: &str, specs: &[TierSpec], seed: u64) -> BenchReport {
    let mut metas = Vec::with_capacity(specs.len());
    let mut timings = Vec::with_capacity(specs.len());
    // A scoped recorder collects each tier's histograms; the snapshot lands
    // in the report's deterministic half (the values are derived from the
    // section counts, never from wall time).
    let recorder = Arc::new(Recorder::new());
    {
        let _guard = crowd_obs::install_recorder(recorder.clone());
        for spec in specs {
            let (meta, timing) = run_tier(*spec, seed);
            metas.push(meta);
            timings.push(timing);
        }
    }
    BenchReport {
        meta: BenchMeta {
            schema: 3,
            tier: label.to_string(),
            seed,
            tiers: metas,
            metrics: recorder.metrics().snapshot(),
        },
        run: RunInfo {
            jobs: crowd_experiments::engine::jobs(),
        },
        timings: BenchTimings { tiers: timings },
    }
}

/// Runs one tier: plant the instance, then time each section on a fresh
/// oracle seeded from `seed` (so sections are independent and the metadata
/// does not depend on section order or job count).
pub fn run_tier(spec: TierSpec, seed: u64) -> (TierMeta, TierTiming) {
    let (instance, model) = setup(spec, seed);
    let ids = instance.ids();
    let cfg = FilterConfig::new(spec.un);

    // Sequential arena filter.
    let mut oracle = fresh_oracle(&instance, &model, seed ^ 1);
    let started = Instant::now();
    let seq = filter_candidates(&mut oracle, &ids, &cfg);
    let filter_timing = timing_of(started, &seq.comparisons);
    let seq_meta = filter_meta(&seq);

    // Parallel filter: one oracle per (round, group), seeded from the
    // group coordinates — byte-identical at any job count.
    let started = Instant::now();
    let par = parallel_filter_candidates(
        |round, group| fresh_oracle(&instance, &model, group_seed(seed, round, group)),
        &ids,
        &cfg,
    );
    let par_timing = timing_of(started, &par.comparisons);
    let par_meta = filter_meta(&par);

    // Expert phase (2-MaxFind) on the sequential filter's survivors.
    let mut oracle = fresh_oracle(&instance, &model, seed ^ 2);
    let started = Instant::now();
    let expert = two_max_find(&mut oracle, WorkerClass::Expert, &seq.survivors);
    let expert_timing = timing_of(started, &expert.comparisons);
    let expert_meta = SectionMeta {
        naive_comparisons: expert.comparisons.naive,
        expert_comparisons: expert.comparisons.expert,
        rounds: expert.rounds,
        peak_candidates: seq.survivors.len(),
        survivors: 1,
        physical_steps: nominal_physical_steps(&expert.comparisons),
    };

    // Full two-phase run.
    let mut oracle = fresh_oracle(&instance, &model, seed ^ 3);
    let mut rng = StdRng::seed_from_u64(seed ^ 4);
    let started = Instant::now();
    let full = expert_max_find(&mut oracle, &ids, &ExpertMaxConfig::new(spec.un), &mut rng);
    let full_timing = timing_of(started, &full.total_comparisons);
    let full_meta = SectionMeta {
        naive_comparisons: full.total_comparisons.naive,
        expert_comparisons: full.total_comparisons.expert,
        rounds: full.phase1.rounds,
        peak_candidates: peak_after_first_round(&full.phase1.sizes),
        survivors: 1,
        physical_steps: nominal_physical_steps(&full.total_comparisons),
    };

    record_tier_metrics(
        spec,
        &[
            ("filter", &seq_meta),
            ("filter_parallel", &par_meta),
            ("expert", &expert_meta),
            ("full", &full_meta),
        ],
        &[
            ("filter", &seq.sizes),
            ("filter_parallel", &par.sizes),
            ("full", &full.phase1.sizes),
        ],
    );

    (
        TierMeta {
            n: spec.n,
            un: spec.un,
            ue: spec.ue,
            filter: seq_meta,
            filter_parallel: par_meta,
            expert: expert_meta,
            full: full_meta,
        },
        TierTiming {
            n: spec.n,
            filter: filter_timing,
            filter_parallel: par_timing,
            expert: expert_timing,
            full: full_timing,
        },
    )
}

/// Feeds one tier's deterministic statistics into any installed `crowd-obs`
/// recorder: a histogram observation per section comparison total (by
/// class) and one per round survivor-set size. A no-op when the tier runs
/// outside [`run_bench`]'s recorder scope.
fn record_tier_metrics(
    spec: TierSpec,
    sections: &[(&str, &SectionMeta)],
    round_sizes: &[(&str, &Vec<usize>)],
) {
    let n = spec.n.to_string();
    for (section, meta) in sections {
        for (class, performed) in [
            ("naive", meta.naive_comparisons),
            ("expert", meta.expert_comparisons),
        ] {
            crowd_obs::observe(
                metric_names::ROUND_COMPARISONS,
                &[("class", class), ("n", &n), ("section", section)],
                performed,
            );
        }
    }
    for (section, sizes) in round_sizes {
        for &size in sizes.iter() {
            crowd_obs::observe(
                metric_names::ROUND_SURVIVORS,
                &[("n", &n), ("section", section)],
                size as u64,
            );
        }
    }
}

/// Plants the tier's instance and worker model from the report seed.
fn setup(spec: TierSpec, seed: u64) -> (Instance, ExpertModel) {
    let mut rng = StdRng::seed_from_u64(seed ^ (spec.n as u64));
    let planted = crowd_datasets::synthetic::planted_instance(spec.n, spec.un, spec.ue, &mut rng);
    let model = ExpertModel::exact(planted.delta_n, planted.delta_e, TiePolicy::UniformRandom);
    (planted.instance, model)
}

/// A simulated oracle borrowing the planted instance, with its own RNG
/// stream. Borrowing matters on the parallel path: one oracle is built per
/// (round, group), and cloning the instance there used to dominate the
/// runtime at large `n`.
fn fresh_oracle<'a>(
    instance: &'a Instance,
    model: &ExpertModel,
    seed: u64,
) -> SimulatedOracle<StdRng, &'a Instance> {
    SimulatedOracle::new(instance, model.clone(), StdRng::seed_from_u64(seed))
}

/// [`SectionMeta`] of a filter outcome.
fn filter_meta(out: &FilterOutcome) -> SectionMeta {
    SectionMeta {
        naive_comparisons: out.comparisons.naive,
        expert_comparisons: out.comparisons.expert,
        rounds: out.rounds,
        peak_candidates: peak_after_first_round(&out.sizes),
        survivors: out.survivors.len(),
        physical_steps: nominal_physical_steps(&out.comparisons),
    }
}

/// The largest survivor set after any completed round (the first entry is
/// the input size `n`; with no rounds that trivial value is the peak, and
/// an empty trace has none).
fn peak_after_first_round(sizes: &[usize]) -> usize {
    match sizes.split_first() {
        Some((first, rest)) => rest.iter().copied().max().unwrap_or(*first),
        None => 0,
    }
}

/// Timing of a section that performed `counts` comparisons since `started`.
fn timing_of(started: Instant, counts: &ComparisonCounts) -> SectionTiming {
    let nanos = started.elapsed().as_nanos() as u64;
    let total = counts.naive + counts.expert;
    let comparisons_per_sec = if nanos == 0 {
        0.0
    } else {
        total as f64 * 1e9 / nanos as f64
    };
    SectionTiming {
        wall_nanos: nanos,
        comparisons_per_sec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_experiments::engine;

    fn tiny() -> Vec<TierSpec> {
        vec![TierSpec {
            n: 240,
            un: 6,
            ue: 2,
        }]
    }

    #[test]
    fn metadata_is_byte_identical_across_job_counts() {
        engine::set_jobs(1);
        let serial = run_bench("tiny", &tiny(), 9);
        engine::set_jobs(4);
        let parallel = run_bench("tiny", &tiny(), 9);
        engine::set_jobs(0);
        assert_eq!(serial.metadata_json(), parallel.metadata_json());
        // The run-info half is allowed to differ; the jobs field must.
        assert_eq!(serial.run.jobs, 1);
        assert_eq!(parallel.run.jobs, 4);
    }

    /// The schema-3 guarantee: the CI-diffed half contains no
    /// machine-dependent field — not the job count and not a single
    /// wall-clock or throughput number.
    #[test]
    fn metadata_carries_no_machine_dependent_fields() {
        let report = run_bench("tiny", &tiny(), 3);
        assert_eq!(report.meta.schema, 3);
        let meta = report.metadata_json();
        for forbidden in ["\"jobs\"", "\"wall_nanos\"", "\"comparisons_per_sec\""] {
            assert!(
                !meta.contains(forbidden),
                "metadata_json leaked the machine-dependent field {forbidden}"
            );
        }
        // The full report still carries all three halves.
        let full = report.to_json();
        for required in ["\"jobs\"", "\"wall_nanos\"", "\"comparisons_per_sec\""] {
            assert!(full.contains(required));
        }
    }

    #[test]
    fn report_json_carries_both_halves() {
        let report = run_bench("tiny", &tiny(), 5);
        let parsed = serde_json::from_str_value(&report.to_json()).expect("valid JSON");
        let meta: serde::Value = serde::field(&parsed, "meta").expect("meta half");
        let tiers: Vec<serde::Value> = serde::field(&meta, "tiers").expect("tier list");
        assert_eq!(tiers.len(), 1);
        let filter: serde::Value = serde::field(&tiers[0], "filter").expect("filter section");
        let naive: u64 = serde::field(&filter, "naive_comparisons").expect("naive count");
        assert!(naive > 0, "the filter must do naive work");
        let steps: u64 = serde::field(&filter, "physical_steps").expect("physical steps");
        assert!(steps > 0);
        let timings: serde::Value = serde::field(&parsed, "timings").expect("timings half");
        let trs: Vec<serde::Value> = serde::field(&timings, "tiers").expect("timing tiers");
        assert_eq!(trs.len(), 1);
        // The deterministic half carries the metrics section: survivor-size
        // and comparison histograms recorded through crowd-obs.
        let metrics: Vec<serde::Value> = serde::field(&meta, "metrics").expect("metrics section");
        assert!(!metrics.is_empty(), "metrics section must not be empty");
        let names: Vec<String> = metrics
            .iter()
            .map(|m| serde::field(m, "name").expect("metric name"))
            .collect();
        assert!(names.iter().any(|n| n == metric_names::ROUND_SURVIVORS));
        assert!(names.iter().any(|n| n == metric_names::ROUND_COMPARISONS));
    }

    #[test]
    fn sections_agree_on_the_planted_instance() {
        let (meta, _) = run_tier(tier_for(600), 11);
        // Both filter paths must shrink below 2·un and keep an expert-phase
        // workload of at least one element.
        assert!(meta.filter.survivors < 2 * meta.un);
        assert!(meta.filter_parallel.survivors < 2 * meta.un);
        assert!(meta.filter.survivors >= 1);
        // The full run's totals dominate its phase-1 share.
        assert!(meta.full.naive_comparisons >= meta.filter.naive_comparisons / 2);
        assert!(meta.full.expert_comparisons > 0);
    }

    #[test]
    fn named_tier_sets_resolve() {
        assert_eq!(tiers("small").expect("small set").len(), 2);
        assert_eq!(tiers("full").expect("full set").len(), 3);
        assert_eq!(tiers("large").expect("large set").len(), 4);
        assert!(tiers("bogus").is_none());
        let t = tier_for(1_000);
        assert_eq!((t.un, t.ue), (10, 2));
    }

    #[test]
    fn peak_handles_degenerate_size_traces() {
        assert_eq!(peak_after_first_round(&[]), 0);
        assert_eq!(peak_after_first_round(&[7]), 7);
        assert_eq!(peak_after_first_round(&[100, 40, 60, 12]), 60);
    }
}
