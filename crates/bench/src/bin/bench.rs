//! Benchmark runner writing `BENCH_results.json`.
//!
//! ```text
//! bench [--tier small|full|large] [--jobs N] [--seed S] [--out FILE]
//! ```
//!
//! Times sequential Phase-1 filtering, the parallel filter, 2-MaxFind on
//! the survivors, and the full two-phase run across catalog-size tiers
//! (`small`: n ∈ {10³, 10⁴}; `full` adds 10⁵; `large` adds 10⁶). The
//! report's `meta` half is
//! deterministic — byte-identical at any `--jobs` count — so CI can diff
//! it against the committed baseline; only the `run` and `timings` halves
//! vary between machines and runs.

use crowd_bench::pipeline::{self, BenchReport};
use crowd_experiments::engine;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut tier = String::from("small");
    let mut seed = pipeline::DEFAULT_SEED;
    let mut out = PathBuf::from("BENCH_results.json");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tier" => match args.next() {
                Some(name) if pipeline::tiers(&name).is_some() => tier = name,
                _ => {
                    eprintln!("--tier requires one of: small full large");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => engine::set_jobs(n),
                _ => {
                    eprintln!("--jobs requires a worker count >= 1");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match args.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed requires an integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(path) => out = PathBuf::from(path),
                None => {
                    eprintln!("--out requires a file argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: bench [--tier small|full|large] [--jobs N] [--seed S] [--out FILE]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    let specs = pipeline::tiers(&tier).expect("tier validated above");
    let report = pipeline::run_bench(&tier, &specs, seed);
    print_summary(&report);
    match std::fs::write(&out, report.to_json()) {
        Ok(()) => {
            eprintln!("wrote {}", out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to write {}: {e}", out.display());
            ExitCode::FAILURE
        }
    }
}

/// One line per tier and section: comparisons, wall time, throughput.
fn print_summary(report: &BenchReport) {
    println!(
        "tier set {:?}, seed {}, jobs {}",
        report.meta.tier, report.meta.seed, report.run.jobs
    );
    for (meta, timing) in report.meta.tiers.iter().zip(&report.timings.tiers) {
        println!("n = {} (un = {}, ue = {}):", meta.n, meta.un, meta.ue);
        for (name, m, t) in [
            ("filter", &meta.filter, &timing.filter),
            ("filter-par", &meta.filter_parallel, &timing.filter_parallel),
            ("expert", &meta.expert, &timing.expert),
            ("full", &meta.full, &timing.full),
        ] {
            println!(
                "  {name:<10} {:>10} naive + {:>6} expert cmp  {:>9.3} ms  {:>12.0} cmp/s  ({} survivors, {} steps)",
                m.naive_comparisons,
                m.expert_comparisons,
                t.wall_nanos as f64 / 1e6,
                t.comparisons_per_sec,
                m.survivors,
                m.physical_steps,
            );
        }
    }
}
