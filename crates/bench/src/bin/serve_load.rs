//! Benchmark runner writing `SERVE_results.json`.
//!
//! ```text
//! serve_load [--seed S] [--out FILE]
//! ```
//!
//! Drives the crowd-serve service layer through the standard load
//! scenarios (half capacity, at capacity, double capacity) and reports
//! jobs/sec, p99 job latency, shed rate, and breaker trips. The report's
//! `meta` half is deterministic — byte-identical on any machine — so CI
//! can diff it against the committed baseline; only the `timings` half
//! varies between machines and runs.

use crowd_bench::serve_load::{self, ServeLoadReport};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut seed = serve_load::DEFAULT_SEED;
    let mut out = PathBuf::from("SERVE_results.json");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed requires an integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(path) => out = PathBuf::from(path),
                None => {
                    eprintln!("--out requires a file argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: serve_load [--seed S] [--out FILE]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = serve_load::run_serve_load(seed);
    print_summary(&report);
    match std::fs::write(&out, report.to_json()) {
        Ok(()) => {
            eprintln!("wrote {}", out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to write {}: {e}", out.display());
            ExitCode::FAILURE
        }
    }
}

/// One line per scenario: admission split, cache reuse, tail latency,
/// throughput. Undefined ratios (`None`) print as `-` instead of a fake
/// zero.
fn print_summary(report: &ServeLoadReport) {
    let pct = |bps: Option<u64>| match bps {
        Some(bps) => format!("{:>5.2}%", bps as f64 / 100.0),
        None => format!("{:>6}", "-"),
    };
    let ticks = |t: Option<u64>| match t {
        Some(t) => format!("{t:>3}"),
        None => format!("{:>3}", "-"),
    };
    println!("seed {}", report.meta.seed);
    for (meta, timing) in report.meta.scenarios.iter().zip(&report.timings) {
        println!(
            "{:<5} {:>4} offered  {:>4} admitted  {:>4} shed ({})  \
             {:>4} ok  {:>4} degraded  cache {:>4} hits ({})  {:>3} trips  \
             p99 {} ticks  slo {:>2} breaches (burn {})  \
             {:>8.0} jobs/s  {:>10.0} cmp/s",
            meta.label,
            meta.offered,
            meta.admitted,
            meta.shed,
            pct(meta.shed_bps),
            meta.completed_ok,
            meta.degraded,
            meta.cache_hits,
            pct(meta.cache_hit_rate_bps),
            meta.breaker_trips,
            ticks(meta.p99_latency_ticks),
            meta.slo_breaches,
            pct(Some(u64::from(meta.slo_burn_max_bps))),
            timing.jobs_per_sec,
            timing.comparisons_per_sec,
        );
    }
}
