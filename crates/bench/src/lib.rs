//! # crowd-bench
//!
//! Criterion benchmarks for the reproduction: one benchmark group per
//! table/figure of the paper (`benches/figures.rs`, `benches/tables.rs`)
//! plus microbenchmarks of the core algorithms (`benches/algorithms.rs`).
//!
//! Run with `cargo bench -p crowd-bench`. The figure/table benches execute
//! the same code paths as the `repro` binary at a reduced scale, so their
//! wall-clock numbers double as a regression guard on the experiment
//! harness itself.
//!
//! The crate also ships the `bench` binary (see [`pipeline`]): a
//! reproducible benchmark pipeline whose deterministic metadata half is
//! committed as `BENCH_results.json` and diffed in CI.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod pipeline;
pub mod serve_load;

use crowd_core::element::Instance;
use crowd_core::model::{ExpertModel, TiePolicy};
use crowd_core::oracle::SimulatedOracle;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A planted benchmark instance with its oracle, at the paper's default
/// worker parameters.
pub fn bench_oracle(
    n: usize,
    un: usize,
    ue: usize,
    seed: u64,
) -> (Instance, SimulatedOracle<StdRng>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let planted = crowd_datasets::synthetic::planted_instance(n, un, ue, &mut rng);
    let model = ExpertModel::exact(planted.delta_n, planted.delta_e, TiePolicy::UniformRandom);
    let oracle = SimulatedOracle::new(
        planted.instance.clone(),
        model,
        StdRng::seed_from_u64(seed ^ 1),
    );
    (planted.instance, oracle)
}
