//! Workspace-local, std-only stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros — with single-shot timing instead of statistical
//! sampling. Each registered closure runs **once** per invocation and its
//! wall-clock time is printed. This keeps `cargo test` (which executes
//! `harness = false` bench binaries) and `cargo bench` fast and dependency
//! free while still exercising every bench code path.

use std::fmt::Display;
use std::time::Instant;

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to bench closures; `iter` runs the routine once and times it.
pub struct Bencher {
    label: String,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        let elapsed = start.elapsed();
        drop(out);
        println!("bench {:<40} {:>12.3?}", self.label, elapsed);
    }
}

/// Top-level driver handed to each bench function.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    _sample_size: usize,
}

impl Criterion {
    /// Accepted for compatibility; the stand-in always runs one shot.
    pub fn sample_size(mut self, n: usize) -> Self {
        self._sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            label: name.to_string(),
        };
        f(&mut b);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmark cases.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            label: format!("{}/{}", self.name, id),
        };
        f(&mut b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            label: format!("{}/{}", self.name, id),
        };
        f(&mut b, input);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

/// Bundle bench functions with a shared `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_closures_run_exactly_once() {
        let mut runs = 0;
        let mut c = Criterion::default().sample_size(10);
        c.bench_function("counting", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn groups_run_with_inputs() {
        let mut seen = Vec::new();
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("group");
            for n in [2usize, 4] {
                g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                    b.iter(|| seen.push(n))
                });
            }
            g.finish();
        }
        assert_eq!(seen, vec![2, 4]);
    }

    #[test]
    fn benchmark_ids_format_as_expected() {
        assert_eq!(BenchmarkId::from_parameter(500).to_string(), "500");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
