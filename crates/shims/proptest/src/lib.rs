//! Workspace-local, std-only stand-in for `proptest`.
//!
//! Supports the subset of the proptest API the workspace's property tests
//! use: range and `any::<T>()` strategies, `Just`, `prop_map`, `prop_oneof!`,
//! `prop::collection::vec`, and the `proptest! { ... }` test macro with
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Differences from upstream, by design:
//! - **Deterministic**: every case is seeded from a hash of the test name and
//!   the case index, so failures reproduce exactly across runs and machines.
//! - **No shrinking**: a failing case panics with its assertion message and
//!   case number; the inputs are re-derivable from the deterministic seed.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A generator of values of type [`Strategy::Value`].
///
/// Unlike upstream proptest there is no value tree or shrinking: a strategy
/// simply draws one value from the test RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returning a clone of a fixed value (`Just(x)`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T` (`any::<u64>()`).
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Uniform choice among boxed alternatives; built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

pub mod collection {
    use super::*;

    /// Strategy for vectors of `element` values with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(...)` resolves as upstream.
pub mod prop {
    pub use crate::collection;
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Marker returned by `prop_assume!` when a case's preconditions fail; the
/// runner draws a replacement case instead of counting it.
#[derive(Debug, Clone, Copy)]
pub struct TestCaseRejection;

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Drive one property: run `cfg.cases` accepted cases, drawing replacements
/// for rejected ones, each seeded deterministically from `(name, index)`.
pub fn run_proptest<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseRejection>,
{
    let base = fnv1a(name);
    let mut accepted = 0u32;
    let mut index = 0u64;
    // Generous rejection allowance: properties with narrow prop_assume!
    // filters still converge, but a vacuous filter fails loudly.
    let max_attempts = u64::from(cfg.cases.max(1)) * 50 + 1_000;
    while accepted < cfg.cases {
        assert!(
            index < max_attempts,
            "proptest `{name}`: only {accepted}/{} cases accepted after {index} attempts \
             (prop_assume! rejects nearly everything?)",
            cfg.cases
        );
        let mut rng =
            StdRng::seed_from_u64(base.wrapping_add(index.wrapping_mul(0x9E3779B97F4A7C15)));
        if case(&mut rng).is_ok() {
            accepted += 1;
        }
        index += 1;
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests. Supports an optional `#![proptest_config(expr)]`
/// header followed by `fn name(arg in strategy, ...) { body }` items, each
/// carrying its usual outer attributes (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            $crate::run_proptest(&__cfg, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert inside a proptest case. Panics (failing the test) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            panic!("prop_assert!({}) failed", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!("prop_assert!({}) failed: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            panic!(
                "prop_assert_eq!({}, {}) failed: left = {:?}, right = {:?}",
                stringify!($left), stringify!($right), __l, __r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            panic!(
                "prop_assert_eq!({}, {}) failed: left = {:?}, right = {:?}: {}",
                stringify!($left), stringify!($right), __l, __r, format!($($fmt)+)
            );
        }
    }};
}

/// Discard the current case (drawing a replacement) when `cond` is false.
/// Only valid inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseRejection);
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(::std::boxed::Box::new($strategy) as _),+])
    };
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn strategies_are_deterministic_per_seed() {
        let s = collection::vec(0.0f64..10.0, 3..=5);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let x = (5usize..9).generate(&mut rng);
            assert!((5..9).contains(&x));
            let y = (2usize..=4).generate(&mut rng);
            assert!((2..=4).contains(&y));
            let f = (0.5f64..1.5).generate(&mut rng);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn union_draws_every_alternative() {
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline itself: generation, mapping, assume, asserts.
        #[test]
        fn macro_pipeline_works(n in 1usize..50, xs in prop::collection::vec(0u32..10, 0..8), flip in any::<u64>()) {
            prop_assume!(n != 13);
            let doubled = (0usize..1).prop_map(move |z| z + 2 * n);
            let mut rng = StdRng::seed_from_u64(flip);
            let d = doubled.generate(&mut rng);
            prop_assert_eq!(d, 2 * n);
            prop_assert!(xs.len() < 8, "len was {}", xs.len());
        }
    }

    #[test]
    #[should_panic(expected = "prop_assume! rejects nearly everything")]
    fn vacuous_assume_fails_loudly() {
        run_proptest(&ProptestConfig::with_cases(4), "vacuous", |_rng| {
            Err(TestCaseRejection)
        });
    }
}
