//! Workspace-local, std-only stand-in for the `rand` crate.
//!
//! The build environment resolves crates through a restricted registry with
//! no network access, so the workspace vendors the small slice of the
//! `rand 0.8` API it actually uses: [`RngCore`], [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha-based `StdRng`, but every consumer
//! in this workspace only relies on *determinism* (same seed ⇒ same
//! stream), never on a specific stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core random-number-generator interface: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it into a full seed
    /// with SplitMix64 (deterministic, well-mixed).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Maps 64 random bits to a float in `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

/// Uniform sampling from range expressions, as used by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types [`Rng::gen_range`] can sample uniformly.
///
/// The blanket `SampleRange` impls below are generic over this trait (rather
/// than one impl per concrete range type) so that type inference can unify a
/// range's element type with the sample type before float-literal fallback,
/// mirroring upstream rand.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples from `[low, high)`, or `[low, high]` when `inclusive`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_uniform(rng, start, end, true)
    }
}

/// Draws a uniform integer in `[0, n)` via Lemire's widening-multiply
/// method with rejection (unbiased).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    let threshold = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t, inclusive: bool) -> $t {
                if inclusive {
                    assert!(low <= high, "empty range");
                    let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let off = uniform_below(rng, span + 1);
                    ((low as $wide).wrapping_add(off as $wide)) as $t
                } else {
                    assert!(low < high, "empty range");
                    let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                    let off = uniform_below(rng, span);
                    ((low as $wide).wrapping_add(off as $wide)) as $t
                }
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t, inclusive: bool) -> $t {
                if inclusive {
                    assert!(low <= high, "empty range");
                    low + (high - low) * (unit_f64(rng.next_u64()) as $t)
                } else {
                    assert!(low < high, "empty range");
                    let u = unit_f64(rng.next_u64()) as $t;
                    let v = low + (high - low) * u;
                    // Floating rounding can land exactly on `high`; fold the
                    // (probability ~2⁻⁵³) overshoot back onto `low`.
                    if v >= high { low } else { v }
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Random operations on slices.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Shuffling and sampling on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns `amount` distinct elements sampled without replacement
        /// (all elements, in random order, if `amount >= len`).
        fn choose_multiple<'a, R: RngCore + ?Sized>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose_multiple<'a, R: RngCore + ?Sized>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + uniform_below(rng, (indices.len() - i) as u64) as usize;
                indices.swap(i, j);
            }
            indices[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(-5.0..5.0);
            assert!((-5.0..5.0).contains(&y));
            let z: u64 = rng.gen_range(0..=3);
            assert!(z <= 3);
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all 10 values appear in 1000 draws"
        );
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac = {frac}");
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn choose_multiple_is_distinct_subset() {
        let mut rng = StdRng::seed_from_u64(6);
        let v: Vec<u32> = (0..20).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 7).copied().collect();
        assert_eq!(picked.len(), 7);
        let mut d = picked.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 7, "samples are distinct");
        assert!(picked.iter().all(|x| *x < 20));
        // Oversampling returns everything.
        assert_eq!(v.choose_multiple(&mut rng, 99).count(), 20);
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn trait_objects_work() {
        let mut rng = StdRng::seed_from_u64(10);
        let dynrng: &mut dyn RngCore = &mut rng;
        let x = dynrng.next_u64();
        let _ = x;
        // Rng methods on &mut dyn RngCore, as the model code uses them.
        let r: &mut dyn RngCore = &mut rng;
        assert!((0.0..1.0).contains(&r.gen_range(0.0..1.0)));
    }
}
