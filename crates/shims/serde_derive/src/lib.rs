//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! workspace-local `serde` stand-in.
//!
//! The build environment resolves crates through a restricted registry, so the
//! usual `syn`/`quote` stack is unavailable. Instead this crate walks the raw
//! [`proc_macro::TokenStream`] of the derived item directly. The supported
//! grammar is deliberately the subset the workspace actually uses:
//!
//! - non-generic structs: named-field, tuple (newtype included), and unit
//! - non-generic enums with unit, tuple, or struct variants, externally
//!   tagged as upstream serde does by default
//!
//! Generic items and `#[serde(...)]` attributes are rejected with a
//! compile-time panic naming the offending item, so misuse fails loudly at
//! expansion time rather than producing bad impls.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the fields of a struct or enum variant.
enum Fields {
    Unit,
    /// Tuple fields; the payload is the arity.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes_and_vis(&tokens, &mut pos);

    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    pos += 1;

    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    pos += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported by the workspace serde stand-in");
        }
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream(), &name))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unexpected token after `struct {name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected `{{` after `enum {name}`, found {other:?}"),
            };
            Item::Enum {
                variants: parse_variants(body, &name),
                name,
            }
        }
        other => panic!("serde_derive: `{other}` items cannot derive Serialize/Deserialize"),
    }
    // Trailing tokens (e.g. a `where` clause) cannot occur: generics are
    // rejected above and the workspace derives only plain items.
}

/// Advance `pos` past any leading `#[...]` attributes (including expanded doc
/// comments) and an optional `pub` / `pub(...)` visibility.
fn skip_attributes_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1;
                match tokens.get(*pos) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *pos += 1,
                    other => panic!("serde_derive: malformed attribute, found {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *pos += 1; // pub(crate) / pub(super) / ...
                    }
                }
            }
            _ => return,
        }
    }
}

/// Split a delimited group's tokens at top-level commas, dropping empty
/// segments (trailing commas). Angle brackets are not token groups, so a
/// `<`/`>` depth counter keeps commas inside generic arguments (e.g.
/// `HashMap<K, V>`) from splitting a field.
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0usize;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                current.push(tt);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
                current.push(tt);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !current.is_empty() {
                    segments.push(std::mem::take(&mut current));
                }
            }
            _ => current.push(tt),
        }
    }
    if !current.is_empty() {
        segments.push(current);
    }
    segments
}

/// Parse `{ a: T, pub b: U, ... }` field lists into field names.
fn parse_named_fields(stream: TokenStream, owner: &str) -> Vec<String> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|seg| {
            let mut pos = 0;
            skip_attributes_and_vis(&seg, &mut pos);
            match seg.get(pos) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected field name in `{owner}`, found {other:?}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream).len()
}

/// Parse enum variants: `Name`, `Name(T, ...)`, or `Name = disc`.
fn parse_variants(stream: TokenStream, owner: &str) -> Vec<(String, Fields)> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|seg| {
            let mut pos = 0;
            skip_attributes_and_vis(&seg, &mut pos);
            let vname = match seg.get(pos) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => {
                    panic!("serde_derive: expected variant name in `{owner}`, found {other:?}")
                }
            };
            pos += 1;
            let fields = match seg.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream(), owner))
                }
                // `None` or `= discriminant` — either way a unit variant.
                _ => Fields::Unit,
            };
            (vname, fields)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Fields::Named(names) => {
            let pairs: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n#[allow(unused_variables, clippy::all)]\nimpl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(vname, fields)| match fields {
            Fields::Unit => format!(
                "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
            ),
            Fields::Tuple(1) => format!(
                "{name}::{vname}(ref __f0) => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_value(__f0))]),"
            ),
            Fields::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("ref __f{i}")).collect();
                let items: Vec<String> =
                    (0..*n).map(|i| format!("::serde::Serialize::to_value(__f{i})")).collect();
                format!(
                    "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from(\"{vname}\"), \
                     ::serde::Value::Array(::std::vec![{}]))]),",
                    binders.join(", "),
                    items.join(", ")
                )
            }
            Fields::Named(names) => {
                let binders: Vec<String> = names.iter().map(|f| format!("ref {f}")).collect();
                let pairs: Vec<String> = names
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                        )
                    })
                    .collect();
                format!(
                    "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from(\"{vname}\"), \
                     ::serde::Value::Object(::std::vec![{}]))]),",
                    binders.join(", "),
                    pairs.join(", ")
                )
            }
        })
        .collect();
    format!(
        "#[automatically_derived]\n#[allow(unused_variables, clippy::all)]\nimpl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match *self {{\n{}\n}}\n\
             }}\n\
         }}",
        arms.join("\n")
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!(
            "match __v {{\n\
                 ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                 _ => ::std::result::Result::Err(::serde::Error(::std::string::String::from(\n\
                     \"expected null for unit struct {name}\"))),\n\
             }}"
        ),
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Array(__items) if __items.len() == {n} =>\n\
                         ::std::result::Result::Ok({name}({})),\n\
                     _ => ::std::result::Result::Err(::serde::Error(::std::string::String::from(\n\
                         \"expected array of length {n} for tuple struct {name}\"))),\n\
                 }}",
                items.join(", ")
            )
        }
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: ::serde::field(__v, \"{f}\")?,"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{\n{}\n}})",
                inits.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n#[allow(unused_variables, clippy::all)]\nimpl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, f)| matches!(f, Fields::Unit))
        .map(|(vname, _)| format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"))
        .collect();
    let payload_arms: Vec<String> = variants
        .iter()
        .filter_map(|(vname, fields)| match fields {
            Fields::Unit => None,
            Fields::Tuple(1) => Some(format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                 ::serde::Deserialize::from_value(__inner)?)),"
            )),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                Some(format!(
                    "\"{vname}\" => match __inner {{\n\
                         ::serde::Value::Array(__items) if __items.len() == {n} =>\n\
                             ::std::result::Result::Ok({name}::{vname}({})),\n\
                         _ => ::std::result::Result::Err(::serde::Error(::std::string::String::from(\n\
                             \"expected array of length {n} for variant {name}::{vname}\"))),\n\
                     }},",
                    items.join(", ")
                ))
            }
            Fields::Named(names) => {
                let inits: Vec<String> = names
                    .iter()
                    .map(|f| format!("{f}: ::serde::field(__inner, \"{f}\")?,"))
                    .collect();
                Some(format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{\n{}\n}}),",
                    inits.join("\n")
                ))
            }
        })
        .collect();
    format!(
        "#[automatically_derived]\n#[allow(unused_variables, clippy::all)]\nimpl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit}\n\
                         __other => ::std::result::Result::Err(::serde::Error(::std::format!(\n\
                             \"unknown unit variant `{{__other}}` for enum {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                         let (__tag, __inner) = &__fields[0];\n\
                         match __tag.as_str() {{\n\
                             {payload}\n\
                             __other => ::std::result::Result::Err(::serde::Error(::std::format!(\n\
                                 \"unknown variant `{{__other}}` for enum {name}\"))),\n\
                         }}\n\
                     }},\n\
                     _ => ::std::result::Result::Err(::serde::Error(::std::string::String::from(\n\
                         \"expected string or single-key object for enum {name}\"))),\n\
                 }}\n\
             }}\n\
         }}",
        unit = unit_arms.join("\n"),
        payload = payload_arms.join("\n"),
    )
}
