//! Workspace-local, std-only JSON front-end for the `serde` stand-in.
//!
//! Serialization lowers a type to [`serde::Value`] and prints it as JSON;
//! deserialization parses JSON into a `Value` and lifts it back through
//! `serde::Deserialize`. The printer is deterministic: object keys keep the
//! order the `Value` carries (struct declaration order from the derive, sorted
//! order for map/set containers), so equal values always print byte-identically.

use serde::{Deserialize, Serialize, Value};

/// Error raised by JSON printing or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to JSON indented with two spaces per level.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize `value` to a compact JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Rust's shortest-roundtrip formatting; may omit ".0", which
                // still parses back as a numerically equal value.
                out.push_str(&x.to_string());
            } else {
                // JSON has no NaN/Infinity literal; match serde_json's lossy
                // default of writing null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

/// Parse JSON text and deserialize it into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_complete(s)?;
    T::from_value(&value).map_err(|e| Error(e.0))
}

/// Parse JSON bytes (must be UTF-8) and deserialize into `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Parse JSON text into the raw [`Value`] tree.
pub fn from_str_value(s: &str) -> Result<Value> {
    parse_value_complete(s)
}

fn parse_value_complete(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => *pos += 1,
            _ => break,
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<()> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error(format!("expected `{lit}` at byte {pos}", pos = *pos)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error("unexpected end of input".to_string())),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => {
                        return Err(Error(format!(
                            "expected `,` or `]` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error(format!("expected `:` at byte {pos}", pos = *pos)));
                }
                *pos += 1;
                let val = parse_value(bytes, pos)?;
                fields.push((key, val));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => {
                        return Err(Error(format!(
                            "expected `,` or `}}` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(other) => Err(Error(format!(
            "unexpected byte {other:#04x} at byte {pos}",
            pos = *pos
        ))),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error(format!("expected string at byte {pos}", pos = *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error("unterminated string".to_string())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low half.
                            expect(bytes, pos, "\\u")?;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error("invalid low surrogate".to_string()));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        let c = char::from_u32(code)
                            .ok_or_else(|| Error(format!("invalid unicode escape {code:#x}")))?;
                        out.push(c);
                        // parse_hex4 leaves pos just past the digits.
                        continue;
                    }
                    other => return Err(Error(format!("invalid escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy a full UTF-8 character (input validated as &str).
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?;
                let c = s.chars().next().expect("non-empty by match");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32> {
    let slice = bytes
        .get(*pos..*pos + 4)
        .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
    let s = std::str::from_utf8(slice).map_err(|_| Error("invalid \\u escape".to_string()))?;
    let v = u32::from_str_radix(s, 16).map_err(|_| Error(format!("invalid \\u escape `{s}`")))?;
    *pos += 4;
    Ok(v)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII by construction");
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
    } else if text.starts_with('-') {
        text.parse::<i64>()
            .map(Value::Int)
            .or_else(|_| text.parse::<f64>().map(Value::Float))
            .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
    } else {
        text.parse::<u64>()
            .map(Value::UInt)
            .or_else(|_| text.parse::<f64>().map(Value::Float))
            .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn float_without_fraction_round_trips_through_integer_token() {
        let json = to_string(&1.0f64).unwrap();
        assert_eq!(from_str::<f64>(&json).unwrap(), 1.0);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\nbreak \"quote\" back\\slash \u{1F980} tab\t";
        let json = to_string(original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""A🦀""#).unwrap(), "A\u{1F980}");
    }

    #[test]
    fn nested_containers_round_trip() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[],[3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_printing_is_indented_and_parseable() {
        let v: Vec<u32> = vec![1, 2];
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "[\n  1,\n  2\n]");
        assert_eq!(from_str::<Vec<u32>>(&pretty).unwrap(), v);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(from_str::<u64>("42 junk").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
    }
}
