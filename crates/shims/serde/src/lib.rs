//! Workspace-local, std-only stand-in for `serde`.
//!
//! The build environment resolves crates through a restricted registry with
//! no network access, so the workspace vendors a minimal serialization
//! framework: a JSON-shaped [`Value`] data model, [`Serialize`] /
//! [`Deserialize`] traits over it, and `#[derive(Serialize, Deserialize)]`
//! macros (re-exported from the companion `serde_derive` proc-macro crate).
//!
//! The wire format intentionally mirrors serde_json's defaults where
//! possible: structs are objects, newtype structs are transparent, unit
//! enum variants are strings, payload variants are externally tagged
//! single-key objects. Maps with non-string keys are encoded as arrays of
//! `[key, value]` pairs (sorted by encoded key, so output is
//! deterministic), which plain serde_json would reject — acceptable here
//! because this workspace is both producer and consumer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every serializable type maps to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (JSON number).
    UInt(u64),
    /// Signed integer (JSON number). Only produced for negative values.
    Int(i64),
    /// Floating-point number (JSON number).
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A (de)serialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an error when `v` has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialization marker traits, mirroring `serde::de`.
pub mod de {
    /// Owned deserialization — identical to [`crate::Deserialize`] in this
    /// stand-in (no lifetimes to erase).
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Extracts and deserializes a named struct field. Used by derive-generated
/// code; public but not part of the supported API.
#[doc(hidden)]
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(inner) => T::from_value(inner).map_err(|e| Error(format!("field {name:?}: {}", e.0))),
        None => Err(Error(format!("missing field {name:?}"))),
    }
}

// ---------------------------------------------------------------- primitives

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(Error(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(Error(format!("expected single-char string, got {other:?}"))),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error(format!("expected null, got {other:?}"))),
        }
    }
}

// --------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error(format!(
                                "expected {expected}-tuple, got {} items", items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error(format!("expected array, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Maps serialize as arrays of `[key, value]` pairs sorted by the encoded
/// key, so arbitrary key types work and output is deterministic.
fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    let mut pairs: Vec<(String, Value)> = entries
        .map(|(k, v)| {
            (
                format!("{:?}", k.to_value()),
                Value::Array(vec![k.to_value(), v.to_value()]),
            )
        })
        .collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Array(pairs.into_iter().map(|(_, v)| v).collect())
}

fn map_from_value<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    match v {
        Value::Array(items) => items.iter().map(<(K, V)>::from_value).collect(),
        other => Err(Error(format!("expected map (pair array), got {other:?}"))),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<(String, Value)> = self
            .iter()
            .map(|x| {
                let v = x.to_value();
                (format!("{v:?}"), v)
            })
            .collect();
        items.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Array(items.into_iter().map(|(_, v)| v).collect())
    }
}
impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(|items| items.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(|items| items.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
        let t = (1u32, "x".to_string());
        assert_eq!(<(u32, String)>::from_value(&t.to_value()).unwrap(), t);
        let mut m = HashMap::new();
        m.insert((1u32, 2u32), 3u64);
        m.insert((4, 5), 6);
        let back: HashMap<(u32, u32), u64> = HashMap::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn map_serialization_is_deterministic() {
        let mut m = HashMap::new();
        for i in 0..50u32 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.to_value(), m.clone().to_value());
    }

    #[test]
    fn errors_name_the_problem() {
        let err = u64::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(err.0.contains("expected integer"));
        let err = field::<u64>(&Value::Object(vec![]), "missing").unwrap_err();
        assert!(err.0.contains("missing field"));
    }
}
