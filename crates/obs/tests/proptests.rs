//! Property tests of the metrics registry's merge algebra.
//!
//! `parallel_map` merges per-worker registries into the caller's in input
//! order, but nothing about the *math* may depend on that order: merge must
//! be associative and commutative (counters and histogram buckets sum,
//! gauges take the max), or the aggregate would vary with scheduling.

use crowd_obs::MetricsRegistry;
use proptest::prelude::*;

const LABELS: [&str; 3] = ["naive", "expert", "gold"];

/// Decodes one opaque case value into a registry operation. The operation
/// kind picks the metric name, so a name never changes type mid-stream.
fn apply(reg: &MetricsRegistry, code: u64) {
    let label = LABELS[(code % 3) as usize];
    let value = (code / 3) % 100_000;
    match (code / 300_000) % 3 {
        0 => reg.counter_add("ops_counter", &[("class", label)], value),
        1 => reg.gauge_set("ops_gauge", &[("class", label)], value as i64 - 50_000),
        _ => reg.observe("ops_hist", &[("class", label)], value),
    }
}

fn registry_from(codes: &[u64]) -> MetricsRegistry {
    let reg = MetricsRegistry::new();
    for &code in codes {
        apply(&reg, code);
    }
    reg
}

fn merged(parts: &[&MetricsRegistry]) -> MetricsRegistry {
    let out = MetricsRegistry::new();
    for part in parts {
        out.merge_from(part);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging two per-worker registries commutes: A⊕B == B⊕A.
    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(any::<u64>(), 0..40),
        b in prop::collection::vec(any::<u64>(), 0..40),
    ) {
        let (ra, rb) = (registry_from(&a), registry_from(&b));
        prop_assert_eq!(
            merged(&[&ra, &rb]).snapshot(),
            merged(&[&rb, &ra]).snapshot()
        );
    }

    /// Merging is associative: (A⊕B)⊕C == A⊕(B⊕C).
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(any::<u64>(), 0..30),
        b in prop::collection::vec(any::<u64>(), 0..30),
        c in prop::collection::vec(any::<u64>(), 0..30),
    ) {
        let (ra, rb, rc) = (registry_from(&a), registry_from(&b), registry_from(&c));
        let left = merged(&[&merged(&[&ra, &rb]), &rc]);
        let right = merged(&[&ra, &merged(&[&rb, &rc])]);
        prop_assert_eq!(left.snapshot(), right.snapshot());
    }

    /// Merging per-worker registries equals applying every operation to one
    /// registry directly — the property `parallel_map` relies on: splitting
    /// work across workers must not change the aggregate.
    #[test]
    fn merge_equals_direct_application(
        a in prop::collection::vec(any::<u64>(), 0..40),
        b in prop::collection::vec(any::<u64>(), 0..40),
    ) {
        let split = merged(&[&registry_from(&a), &registry_from(&b)]);
        let direct = MetricsRegistry::new();
        for &code in a.iter().chain(b.iter()) {
            apply(&direct, code);
        }
        prop_assert_eq!(split.snapshot(), direct.snapshot());
    }
}
