//! Property tests of the metrics registry's merge algebra.
//!
//! `parallel_map` merges per-worker registries into the caller's in input
//! order, but nothing about the *math* may depend on that order: merge must
//! be associative and commutative (counters and histogram buckets sum,
//! gauges take the max), or the aggregate would vary with scheduling.

use crowd_obs::{
    emit, emit_span, install_recorder, record_segment, replay, Event, MetricsRegistry, Recorder,
    Segment, Span, Stage,
};
use proptest::prelude::*;
use std::sync::Arc;

const LABELS: [&str; 3] = ["naive", "expert", "gold"];

/// Decodes one opaque case value into a registry operation. The operation
/// kind picks the metric name, so a name never changes type mid-stream.
fn apply(reg: &MetricsRegistry, code: u64) {
    let label = LABELS[(code % 3) as usize];
    let value = (code / 3) % 100_000;
    match (code / 300_000) % 3 {
        0 => reg.counter_add("ops_counter", &[("class", label)], value),
        1 => reg.gauge_set("ops_gauge", &[("class", label)], value as i64 - 50_000),
        _ => reg.observe("ops_hist", &[("class", label)], value),
    }
}

fn registry_from(codes: &[u64]) -> MetricsRegistry {
    let reg = MetricsRegistry::new();
    for &code in codes {
        apply(&reg, code);
    }
    reg
}

fn merged(parts: &[&MetricsRegistry]) -> MetricsRegistry {
    let out = MetricsRegistry::new();
    for part in parts {
        out.merge_from(part);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging two per-worker registries commutes: A⊕B == B⊕A.
    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(any::<u64>(), 0..40),
        b in prop::collection::vec(any::<u64>(), 0..40),
    ) {
        let (ra, rb) = (registry_from(&a), registry_from(&b));
        prop_assert_eq!(
            merged(&[&ra, &rb]).snapshot(),
            merged(&[&rb, &ra]).snapshot()
        );
    }

    /// Merging is associative: (A⊕B)⊕C == A⊕(B⊕C).
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(any::<u64>(), 0..30),
        b in prop::collection::vec(any::<u64>(), 0..30),
        c in prop::collection::vec(any::<u64>(), 0..30),
    ) {
        let (ra, rb, rc) = (registry_from(&a), registry_from(&b), registry_from(&c));
        let left = merged(&[&merged(&[&ra, &rb]), &rc]);
        let right = merged(&[&ra, &merged(&[&rb, &rc])]);
        prop_assert_eq!(left.snapshot(), right.snapshot());
    }

    /// Merging per-worker registries equals applying every operation to one
    /// registry directly — the property `parallel_map` relies on: splitting
    /// work across workers must not change the aggregate.
    #[test]
    fn merge_equals_direct_application(
        a in prop::collection::vec(any::<u64>(), 0..40),
        b in prop::collection::vec(any::<u64>(), 0..40),
    ) {
        let split = merged(&[&registry_from(&a), &registry_from(&b)]);
        let direct = MetricsRegistry::new();
        for &code in a.iter().chain(b.iter()) {
            apply(&direct, code);
        }
        prop_assert_eq!(split.snapshot(), direct.snapshot());
    }
}

/// One work item's observable behavior in the segment-capture property
/// test: a couple of events, one span, one counter bump.
fn item_work(item: u64) {
    emit(Event::RunStarted {
        name: format!("item-{item}"),
    });
    emit_span(Span {
        tenant: (item % 3) as u32,
        job: item,
        stage: Stage::ShardExec,
        start: item,
        end: item + 1,
        ticks: 1,
    });
    crowd_obs::counter_add("items_total", &[], 1);
    emit(Event::RunFinished {
        name: format!("item-{item}"),
        comparisons_by_class: Default::default(),
        faults: 0,
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The `engine::parallel_map` capture contract: workers buffer each
    /// item into a private segment and may *finish in any order*, but the
    /// caller replays segments in input order — so the spliced log always
    /// equals the serial reference, its `seq` numbers stay strictly
    /// monotone from 0, and the span log sorts identically.
    #[test]
    fn segment_replay_is_completion_order_independent(
        items in prop::collection::vec(0u64..1000, 1..24),
        completion_seed in any::<u64>(),
    ) {
        // Serial reference: run every item inline.
        let serial = Arc::new(Recorder::new());
        {
            let _g = install_recorder(serial.clone());
            for &item in &items {
                item_work(item);
            }
        }

        // "Parallel": capture each item's segment, but in a completion
        // order shuffled by the seed (a worker pool finishes items in
        // whatever order scheduling dictates).
        let mut capture_order: Vec<usize> = (0..items.len()).collect();
        let mut state = completion_seed | 1;
        for i in (1..capture_order.len()).rev() {
            // xorshift64* — deterministic shuffle, no rand dependency.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            capture_order.swap(i, (state as usize) % (i + 1));
        }
        let mut slots: Vec<Option<Segment>> = items.iter().map(|_| None).collect();
        let spliced = Arc::new(Recorder::new());
        {
            let _g = install_recorder(spliced.clone());
            for &slot in &capture_order {
                let ((), seg) = record_segment(|| item_work(items[slot]));
                slots[slot] = Some(seg);
            }
            // Nothing reached the installed recorder while masked.
            prop_assert!(spliced.events().is_empty());
            // Replay in INPUT order, regardless of completion order.
            for seg in &mut slots {
                replay(seg.take().expect("every slot captured"));
            }
        }

        let (a, b) = (serial.log(), spliced.log());
        prop_assert_eq!(a.to_jsonl(), b.to_jsonl());
        for (i, record) in b.records.iter().enumerate() {
            prop_assert_eq!(record.seq, i as u64, "seq must be strictly monotone from 0");
        }
        prop_assert_eq!(serial.span_log().to_jsonl(), spliced.span_log().to_jsonl());
        prop_assert_eq!(
            serde_json::to_string(&serial.metrics().snapshot()).unwrap(),
            serde_json::to_string(&spliced.metrics().snapshot()).unwrap()
        );
    }
}
