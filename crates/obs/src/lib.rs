//! Observability for the max-finding reproduction: one subsystem replacing
//! the three partial tallying paths (`ComparisonCounts` snapshots,
//! `TallySink` totals, ad-hoc manifest fields) that grew alongside it.
//!
//! Three cooperating pieces live here:
//!
//! * [`MetricsRegistry`] — monotonic counters, high-watermark gauges and
//!   fixed-bucket histograms keyed by metric name plus a small label set.
//!   Registries merge deterministically (counters and histogram buckets by
//!   sum, gauges by maximum), which is what lets per-worker registries
//!   aggregate across `parallel_map` fan-out without ordering artifacts.
//! * [`Event`] / [`EventLog`] — a structured, append-only event stream
//!   (`RunStarted`, `RoundCompleted`, `PhaseTransition`, fault and
//!   recovery events, `RunFinished`) serialized as JSONL. Records carry a
//!   **logical-clock sequence number** instead of wall time, so a run's
//!   log is byte-identical at any `--jobs` count.
//! * [`Span`] / [`SpanLog`] — deterministic causal spans on the logical
//!   clock: every completed serve job's latency is partitioned across the
//!   pipeline stages ([`Stage`]) that consumed it, serialized as sorted
//!   JSONL next to the event log and reconciled exactly against
//!   `latency_ticks()` by [`SpanLog::reconcile`].
//! * [`Recorder`] — the thread-local collection point, mirroring
//!   `crowd_core::trace`'s `TallySink` stack: [`install_recorder`] scopes
//!   a recorder to the current thread, [`emit`]/[`counter_add`]/
//!   [`observe`]/[`gauge_set`] feed every installed recorder, and
//!   [`record_segment`]/[`replay`] let a parallel runner buffer one work
//!   item's output on a worker thread and splice it back in input order.
//!
//! Wall-clock time never enters any of these: timings stay segregated in
//! the informational blocks the manifest and bench report already have,
//! so the determinism checks (CI diffs of event logs and metric
//! expositions across job counts) keep passing.
//!
//! The bridge from the existing `crowd-core` seams is [`ObservedOracle`]:
//! it listens to the same [`TraceEvent`](crowd_core::trace::TraceEvent)
//! boundary events `InstrumentedOracle` consumes and turns them into
//! [`Event`]s and round-level histograms. Stack the two freely —
//! `ObservedOracle<InstrumentedOracle<O>>` forwards every event inward.

mod bridge;
mod event;
mod expo;
mod metrics;
mod recorder;
mod span;

pub use bridge::ObservedOracle;
pub use event::{Event, EventLog, LogRecord};
pub use expo::{render_json, render_prometheus};
pub use metrics::{
    BucketCount, Histogram, LabelPair, MetricSample, MetricsRegistry, SampleValue, DEFAULT_BUCKETS,
};
pub use recorder::{
    counter_add, current_recorders, emit, emit_span, gauge_set, install_recorder,
    install_recorders, observe, record_segment, replay, Recorder, RecorderGuard, Segment,
};
pub use span::{stage_label, Span, SpanLog, Stage, StageAccum};

use crowd_core::model::WorkerClass;
use crowd_core::trace::{DeadLetterReason, DegradedReason, FaultKind};

/// Canonical metric names emitted by this workspace's instrumentation.
/// Everything is a `&'static str` constant so call sites cannot drift and
/// docs/tests can reference one authoritative list.
pub mod names {
    /// Counter, labels `{class}`: comparisons performed, from the
    /// per-experiment `TallySink` totals.
    pub const COMPARISONS_TOTAL: &str = "crowd_comparisons_total";
    /// Counter, labels `{class, kind}`: faults recorded by the platform.
    pub const FAULTS_TOTAL: &str = "crowd_faults_total";
    /// Histogram, labels `{class}`: judgment latency in physical steps
    /// (usable answers only).
    pub const LATENCY_STEPS: &str = "crowd_latency_steps";
    /// Histogram, labels `{class}`: attempts consumed per completed unit
    /// (1 = first try).
    pub const RETRY_DEPTH: &str = "crowd_retry_depth";
    /// Counter, labels `{class}`: units dead-lettered after exhausting
    /// retries.
    pub const DEAD_LETTERS_TOTAL: &str = "crowd_dead_letters_total";
    /// Histogram, no labels: survivor-set size after each filter round.
    pub const ROUND_SURVIVORS: &str = "crowd_round_survivors";
    /// Histogram, labels `{class}`: comparisons consumed per filter round.
    pub const ROUND_COMPARISONS: &str = "crowd_round_comparisons";
    /// Gauge (high watermark), no labels: deepest retry attempt seen.
    pub const RETRY_DEPTH_MAX: &str = "crowd_retry_depth_max";
    /// Counter, no labels: journal bytes made durable by checkpoints.
    pub const JOURNAL_BYTES: &str = "crowd_journal_bytes_total";
    /// Counter, no labels: comparisons restored from a journal during
    /// crash recovery instead of re-purchased from workers.
    pub const REPLAYED_COMPARISONS: &str = "crowd_replayed_comparisons_total";
    /// Counter, labels `{tenant, outcome}`: jobs the service finished
    /// sorting, by outcome (`ok` / `degraded`).
    pub const SERVE_JOBS_TOTAL: &str = "crowd_serve_jobs_total";
    /// Counter, labels `{tenant}`: jobs shed by admission control (queue
    /// full, or a budget the tenant can never afford).
    pub const SERVE_SHED_TOTAL: &str = "crowd_serve_shed_total";
    /// Counter, labels `{tenant}`: comparisons charged against a tenant's
    /// token bucket by the service.
    pub const SERVE_COMPARISONS_TOTAL: &str = "crowd_serve_comparisons_total";
    /// Histogram, labels `{tenant}`: completed-job latency in service
    /// ticks, submission to completion.
    pub const SERVE_JOB_LATENCY_TICKS: &str = "crowd_serve_job_latency_ticks";
    /// Counter, labels `{shard}`: circuit-breaker trips quarantining a
    /// worker.
    pub const SERVE_BREAKER_TRIPS_TOTAL: &str = "crowd_serve_breaker_trips_total";
    /// Gauge (high watermark), no labels: deepest admission-queue depth
    /// the service has seen.
    pub const SERVE_QUEUE_DEPTH_MAX: &str = "crowd_serve_queue_depth_max";
    /// Counter, no labels: pair comparisons answered from the cross-job
    /// judgment cache instead of a worker shard.
    pub const SERVE_CACHE_HITS_TOTAL: &str = "crowd_serve_cache_hits_total";
    /// Counter, no labels: judgment-cache lookups that had to fall
    /// through to shard dispatch (absent, stale, or low-confidence).
    pub const SERVE_CACHE_MISSES_TOTAL: &str = "crowd_serve_cache_misses_total";
    /// Counter, no labels: cached verdicts evicted to respect the
    /// configured cache capacity.
    pub const SERVE_CACHE_EVICTIONS_TOTAL: &str = "crowd_serve_cache_evictions_total";
    /// Histogram, labels `{tenant, stage}`: per-completed-job ticks
    /// attributed to each pipeline stage by the causal span layer.
    pub const SERVE_STAGE_TICKS: &str = "crowd_serve_stage_ticks";
    /// Gauge (high watermark), labels `{tenant}`: p99 completed-job
    /// latency in ticks, from the service report.
    pub const SERVE_P99_LATENCY_TICKS: &str = "crowd_serve_p99_latency_ticks";
    /// Gauge (high watermark), labels `{tenant}`: maximum completed-job
    /// latency in ticks, from the service report.
    pub const SERVE_MAX_LATENCY_TICKS: &str = "crowd_serve_max_latency_ticks";
    /// Gauge (high watermark), labels `{tenant}`: worst bad-completion
    /// rate (basis points) the tenant's SLO window has seen.
    pub const SERVE_SLO_BURN_BPS: &str = "crowd_serve_slo_burn_bps";
    /// Counter, labels `{tenant}`: healthy→breached transitions of the
    /// tenant's SLO monitor.
    pub const SERVE_SLO_BREACHES_TOTAL: &str = "crowd_serve_slo_breaches_total";
}

/// A stable one-line description for a metric name, or `None` for names
/// outside the workspace vocabulary. [`render_prometheus`] turns these
/// into `# HELP` lines; keeping them in one table keeps the exposition
/// byte-diffable across call sites.
pub fn metric_help(name: &str) -> Option<&'static str> {
    Some(match name {
        names::COMPARISONS_TOTAL => "Comparisons performed, by worker class.",
        names::FAULTS_TOTAL => "Faults recorded by the platform, by class and kind.",
        names::LATENCY_STEPS => "Judgment latency in physical steps (usable answers only).",
        names::RETRY_DEPTH => "Attempts consumed per completed unit (1 = first try).",
        names::DEAD_LETTERS_TOTAL => "Units dead-lettered after exhausting retries.",
        names::ROUND_SURVIVORS => "Survivor-set size after each filter round.",
        names::ROUND_COMPARISONS => "Comparisons consumed per filter round, by class.",
        names::RETRY_DEPTH_MAX => "Deepest retry attempt seen.",
        names::JOURNAL_BYTES => "Journal bytes made durable by checkpoints.",
        names::REPLAYED_COMPARISONS => "Comparisons restored from a journal during recovery.",
        names::SERVE_JOBS_TOTAL => "Service jobs finished sorting, by tenant and outcome.",
        names::SERVE_SHED_TOTAL => "Jobs shed by admission control, by tenant.",
        names::SERVE_COMPARISONS_TOTAL => "Comparisons charged to tenant token buckets.",
        names::SERVE_JOB_LATENCY_TICKS => {
            "Completed-job latency in service ticks, submission to completion."
        }
        names::SERVE_BREAKER_TRIPS_TOTAL => "Circuit-breaker trips quarantining a worker.",
        names::SERVE_QUEUE_DEPTH_MAX => "Deepest admission-queue depth the service has seen.",
        names::SERVE_CACHE_HITS_TOTAL => "Pair comparisons answered from the judgment cache.",
        names::SERVE_CACHE_MISSES_TOTAL => "Judgment-cache lookups that fell through to shards.",
        names::SERVE_CACHE_EVICTIONS_TOTAL => "Cached verdicts evicted to respect capacity.",
        names::SERVE_STAGE_TICKS => {
            "Per-completed-job ticks attributed to each pipeline stage, by tenant."
        }
        names::SERVE_P99_LATENCY_TICKS => "p99 completed-job latency in ticks, by tenant.",
        names::SERVE_MAX_LATENCY_TICKS => "Maximum completed-job latency in ticks, by tenant.",
        names::SERVE_SLO_BURN_BPS => "Worst SLO window bad-completion rate seen, in basis points.",
        names::SERVE_SLO_BREACHES_TOTAL => "Healthy-to-breached transitions of a tenant's SLO.",
        _ => return None,
    })
}

/// The label value used for a worker class (`"naive"` / `"expert"`).
pub fn class_label(class: WorkerClass) -> &'static str {
    match class {
        WorkerClass::Naive => "naive",
        WorkerClass::Expert => "expert",
    }
}

/// The label value used for a fault kind (snake_case, stable).
pub fn kind_label(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Dropout => "dropout",
        FaultKind::Abandon => "abandon",
        FaultKind::NoAnswer => "no_answer",
        FaultKind::Timeout => "timeout",
        FaultKind::Retry => "retry",
        FaultKind::DeadLetter => "dead_letter",
        FaultKind::ExpertFallback => "expert_fallback",
    }
}

/// The label value used for a dead-letter reason (snake_case, stable).
pub fn reason_label(reason: DeadLetterReason) -> &'static str {
    match reason {
        DeadLetterReason::RetriesExhausted => "retries_exhausted",
        DeadLetterReason::NoFreshWorkers => "no_fresh_workers",
        DeadLetterReason::NoHealthyWorkers => "no_healthy_workers",
        DeadLetterReason::BudgetExhausted => "budget_exhausted",
    }
}

/// The label value used for a degraded-completion reason (snake_case,
/// stable).
pub fn degraded_label(reason: DegradedReason) -> &'static str {
    match reason {
        DegradedReason::DeadlineLapsed => "deadline_lapsed",
        DegradedReason::ExpertExhausted => "expert_exhausted",
        DegradedReason::BudgetExhausted => "budget_exhausted",
        DegradedReason::DeadLetters => "dead_letters",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_distinct() {
        assert_eq!(class_label(WorkerClass::Naive), "naive");
        assert_eq!(class_label(WorkerClass::Expert), "expert");
        let labels: Vec<&str> = FaultKind::ALL.iter().map(|k| kind_label(*k)).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "kind labels must be distinct");
    }

    #[test]
    fn every_canonical_metric_name_has_help_text() {
        let all = [
            names::COMPARISONS_TOTAL,
            names::FAULTS_TOTAL,
            names::LATENCY_STEPS,
            names::RETRY_DEPTH,
            names::DEAD_LETTERS_TOTAL,
            names::ROUND_SURVIVORS,
            names::ROUND_COMPARISONS,
            names::RETRY_DEPTH_MAX,
            names::JOURNAL_BYTES,
            names::REPLAYED_COMPARISONS,
            names::SERVE_JOBS_TOTAL,
            names::SERVE_SHED_TOTAL,
            names::SERVE_COMPARISONS_TOTAL,
            names::SERVE_JOB_LATENCY_TICKS,
            names::SERVE_BREAKER_TRIPS_TOTAL,
            names::SERVE_QUEUE_DEPTH_MAX,
            names::SERVE_CACHE_HITS_TOTAL,
            names::SERVE_CACHE_MISSES_TOTAL,
            names::SERVE_CACHE_EVICTIONS_TOTAL,
            names::SERVE_STAGE_TICKS,
            names::SERVE_P99_LATENCY_TICKS,
            names::SERVE_MAX_LATENCY_TICKS,
            names::SERVE_SLO_BURN_BPS,
            names::SERVE_SLO_BREACHES_TOTAL,
        ];
        for name in all {
            let help = metric_help(name).unwrap_or_else(|| panic!("no help text for {name}"));
            assert!(!help.is_empty() && !help.contains('\n'), "{name}: {help:?}");
        }
        assert_eq!(metric_help("not_a_workspace_metric"), None);
    }

    #[test]
    fn reason_labels_are_distinct() {
        let reasons: Vec<&str> = DeadLetterReason::ALL
            .iter()
            .map(|r| reason_label(*r))
            .collect();
        let mut dedup = reasons.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), reasons.len(), "reason labels must be distinct");
        let degraded: Vec<&str> = DegradedReason::ALL
            .iter()
            .map(|r| degraded_label(*r))
            .collect();
        let mut dedup = degraded.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            degraded.len(),
            "degraded labels must be distinct"
        );
    }
}
