//! Deterministic causal spans on the service's logical clock.
//!
//! A [`Span`] says where one job's ticks went: each completed job emits a
//! small tree of spans keyed by `(tenant, job, stage)` over the stages of
//! the serve pipeline ([`Stage`]). Spans carry **no wall-clock time** —
//! start and end are logical ticks — so a run's span log is byte-identical
//! at any `--jobs` count and across kill+resume, exactly like the event
//! log.
//!
//! The accounting contract: for every completed job, the `ticks` of its
//! spans sum to its submission-to-completion latency. [`StageAccum`]
//! enforces the partition mechanically — the service attributes every
//! tick a job stays alive to exactly one active stage — and
//! [`SpanLog::reconcile`] audits it from the serialized log alone.

use serde::{Deserialize, Serialize};

/// One stage of the serve pipeline, in causal order.
///
/// `Admission` and `Completion` are zero-width boundary markers (their
/// spans always carry `ticks = 0`; their `start` pins the submission and
/// completion ticks). `QueueWait` covers submission-to-admission. The
/// remaining five are *active* stages: every tick between admission and
/// completion is attributed to exactly one of them.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Stage {
    /// The admission decision (marker: `start` = submission tick).
    #[default]
    Admission,
    /// Ticks parked in the bounded admission queue.
    QueueWait,
    /// Active but nothing moved: deficit exhausted, shard windows full,
    /// or the reservation gate stalled the job.
    DispatchWait,
    /// The tick's progress came entirely from the judgment cache.
    CacheLookup,
    /// At least one pair executed cleanly on a worker shard.
    ShardExec,
    /// Shard execution that needed the retry layer (re-assignments or a
    /// dead-lettered pair).
    Retry,
    /// Blocked because every worker of the needed class was quarantined
    /// or dropped out — no healthy shard to dispatch onto.
    BreakerQuarantine,
    /// The completion boundary (marker: `start` = completion tick).
    Completion,
}

impl Stage {
    /// Every stage, in causal pipeline order.
    pub const ALL: [Stage; 8] = [
        Stage::Admission,
        Stage::QueueWait,
        Stage::DispatchWait,
        Stage::CacheLookup,
        Stage::ShardExec,
        Stage::Retry,
        Stage::BreakerQuarantine,
        Stage::Completion,
    ];

    /// The active stages a live job's ticks are attributed to.
    pub const ACTIVE: [Stage; 5] = [
        Stage::DispatchWait,
        Stage::CacheLookup,
        Stage::ShardExec,
        Stage::Retry,
        Stage::BreakerQuarantine,
    ];

    fn active_index(self) -> Option<usize> {
        Stage::ACTIVE.iter().position(|s| *s == self)
    }
}

/// The label value used for a stage in metrics and analyzer output
/// (snake_case, stable).
pub fn stage_label(stage: Stage) -> &'static str {
    match stage {
        Stage::Admission => "admission",
        Stage::QueueWait => "queue_wait",
        Stage::DispatchWait => "dispatch_wait",
        Stage::CacheLookup => "cache_lookup",
        Stage::ShardExec => "shard_exec",
        Stage::Retry => "retry",
        Stage::BreakerQuarantine => "breaker_quarantine",
        Stage::Completion => "completion",
    }
}

/// One causal span: where some of a job's logical ticks went.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Span {
    /// The owning tenant.
    pub tenant: u32,
    /// The service-assigned job id.
    pub job: u64,
    /// The pipeline stage.
    pub stage: Stage,
    /// First tick attributed to the stage (for markers: the boundary).
    pub start: u64,
    /// One past the last tick attributed (equals `start` for markers).
    pub end: u64,
    /// Ticks of the job's latency this stage accounts for. Stages
    /// interleave tick-by-tick, so `ticks ≤ end − start`; the exact
    /// attribution is `ticks`, the `[start, end)` bounds draw the
    /// waterfall.
    pub ticks: u64,
}

impl Span {
    /// The canonical ordering key: `(tenant, job, stage)` first, then the
    /// bounds — what [`SpanLog`] sorts by.
    fn sort_key(&self) -> (u32, u64, Stage, u64, u64, u64) {
        (
            self.tenant,
            self.job,
            self.stage,
            self.start,
            self.end,
            self.ticks,
        )
    }
}

/// Accumulates one job's per-stage tick attribution while it is active.
///
/// The service calls [`record`](StageAccum::record) exactly once per tick
/// a job stays alive past, so the accumulated ticks partition the job's
/// active life; [`job_spans`](StageAccum::job_spans) closes the book at
/// completion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageAccum {
    /// Per active stage: `(ticks, first, last)` — `None` until touched.
    slots: [Option<(u64, u64, u64)>; 5],
}

impl StageAccum {
    /// A fresh accumulator with nothing attributed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attributes one tick to `stage` (which must be an active stage;
    /// markers and queue time are derived, not recorded).
    pub fn record(&mut self, stage: Stage, tick: u64) {
        let Some(i) = stage.active_index() else {
            debug_assert!(false, "only active stages are recorded: {stage:?}");
            return;
        };
        self.slots[i] = Some(match self.slots[i] {
            None => (1, tick, tick),
            Some((t, first, last)) => (t + 1, first.min(tick), last.max(tick)),
        });
    }

    /// Total ticks attributed to active stages so far.
    pub fn ticks(&self) -> u64 {
        self.slots.iter().flatten().map(|(t, _, _)| *t).sum()
    }

    /// Closes the accumulator into the job's span tree: the `Admission`
    /// and `Completion` markers, a `QueueWait` span when the job queued,
    /// and one span per active stage that received ticks.
    ///
    /// When every live tick was recorded exactly once, the spans' `ticks`
    /// sum to `completed − submitted` — the job's latency.
    pub fn job_spans(
        &self,
        tenant: u32,
        job: u64,
        submitted: u64,
        admitted: u64,
        completed: u64,
    ) -> Vec<Span> {
        let mut spans = vec![Span {
            tenant,
            job,
            stage: Stage::Admission,
            start: submitted,
            end: submitted,
            ticks: 0,
        }];
        if admitted > submitted {
            spans.push(Span {
                tenant,
                job,
                stage: Stage::QueueWait,
                start: submitted,
                end: admitted,
                ticks: admitted - submitted,
            });
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some((ticks, first, last)) = slot {
                spans.push(Span {
                    tenant,
                    job,
                    stage: Stage::ACTIVE[i],
                    start: *first,
                    end: last + 1,
                    ticks: *ticks,
                });
            }
        }
        spans.push(Span {
            tenant,
            job,
            stage: Stage::Completion,
            start: completed,
            end: completed,
            ticks: 0,
        });
        spans
    }
}

/// An ordered span log — the in-memory form of a `spans.jsonl` file.
///
/// Construction sorts by `(tenant, job, stage, start, end, ticks)`, so
/// two logs holding the same spans serialize byte-identically no matter
/// what order they were recorded in.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanLog {
    /// The spans, in canonical order.
    pub spans: Vec<Span>,
}

impl SpanLog {
    /// Builds a log, sorting into canonical order.
    pub fn from_spans(mut spans: Vec<Span>) -> Self {
        spans.sort_unstable_by_key(Span::sort_key);
        SpanLog { spans }
    }

    /// Serializes the log as JSONL: one compact JSON span per line,
    /// newline-terminated (empty string for an empty log).
    ///
    /// # Panics
    ///
    /// Panics if a span fails to serialize (it cannot: spans are plain
    /// value trees).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            out.push_str(&serde_json::to_string(span).expect("span serializes"));
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL span log, re-sorting into canonical order. Blank
    /// lines are ignored.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line's parse error, prefixed with its
    /// 1-based line number.
    pub fn from_jsonl(text: &str) -> Result<SpanLog, serde::Error> {
        let mut spans = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let span: Span = serde_json::from_str(line)
                .map_err(|e| serde::Error::msg(format!("line {}: {e}", i + 1)))?;
            spans.push(span);
        }
        Ok(SpanLog::from_spans(spans))
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when the log holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Audits the accounting invariant over a single-run log: for every
    /// job (identified by its `Admission`/`Completion` markers), the
    /// stage `ticks` must sum to exactly `completion − admission` — the
    /// job's latency. Returns one message per violated job.
    pub fn reconcile(&self) -> Result<(), Vec<String>> {
        use std::collections::BTreeMap;
        #[derive(Default)]
        struct Book {
            submitted: Option<u64>,
            completed: Option<u64>,
            ticks: u64,
        }
        let mut books: BTreeMap<(u32, u64), Book> = BTreeMap::new();
        for span in &self.spans {
            let book = books.entry((span.tenant, span.job)).or_default();
            match span.stage {
                Stage::Admission => book.submitted = Some(span.start),
                Stage::Completion => book.completed = Some(span.start),
                _ => book.ticks += span.ticks,
            }
        }
        let mut bad = Vec::new();
        for ((tenant, job), book) in &books {
            match (book.submitted, book.completed) {
                (Some(s), Some(c)) => {
                    let latency = c.saturating_sub(s);
                    if book.ticks != latency {
                        bad.push(format!(
                            "tenant {tenant} job {job}: stages account for {} of {latency} \
                             latency ticks",
                            book.ticks
                        ));
                    }
                }
                _ => bad.push(format!(
                    "tenant {tenant} job {job}: missing admission or completion marker"
                )),
            }
        }
        if bad.is_empty() {
            Ok(())
        } else {
            Err(bad)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spans() -> Vec<Span> {
        let mut acc = StageAccum::new();
        acc.record(Stage::DispatchWait, 3);
        acc.record(Stage::ShardExec, 4);
        acc.record(Stage::ShardExec, 5);
        acc.record(Stage::Retry, 6);
        acc.record(Stage::CacheLookup, 7);
        acc.record(Stage::BreakerQuarantine, 8);
        acc.job_spans(1, 42, 1, 3, 9)
    }

    #[test]
    fn accum_partitions_latency_exactly() {
        let spans = demo_spans();
        let log = SpanLog::from_spans(spans.clone());
        log.reconcile().expect("every tick attributed");
        // queue 2 + active 6 = latency 8.
        let total: u64 = spans.iter().map(|s| s.ticks).sum();
        assert_eq!(total, 8);
        assert_eq!(spans.len(), 2 + 5 + 1, "markers + queue + 5 active stages");
    }

    #[test]
    fn markers_are_zero_width_and_pin_the_boundaries() {
        let spans = demo_spans();
        let adm = spans.iter().find(|s| s.stage == Stage::Admission).unwrap();
        let done = spans.iter().find(|s| s.stage == Stage::Completion).unwrap();
        assert_eq!((adm.start, adm.end, adm.ticks), (1, 1, 0));
        assert_eq!((done.start, done.end, done.ticks), (9, 9, 0));
    }

    #[test]
    fn unqueued_jobs_emit_no_queue_wait_span() {
        let acc = StageAccum::new();
        let spans = acc.job_spans(0, 7, 5, 5, 5);
        assert_eq!(spans.len(), 2, "markers only: {spans:?}");
        SpanLog::from_spans(spans).reconcile().expect("0 == 0");
    }

    #[test]
    fn jsonl_round_trips_and_sorts_canonically() {
        let mut spans = demo_spans();
        spans.reverse();
        let log = SpanLog::from_spans(spans);
        let text = log.to_jsonl();
        assert_eq!(text.lines().count(), log.len());
        let parsed = SpanLog::from_jsonl(&text).expect("log parses");
        assert_eq!(parsed, log);
        // Canonical order: Admission first, Completion last per job.
        assert_eq!(log.spans.first().unwrap().stage, Stage::Admission);
        assert_eq!(log.spans.last().unwrap().stage, Stage::Completion);
    }

    #[test]
    fn reconcile_flags_unattributed_ticks_and_missing_markers() {
        let mut acc = StageAccum::new();
        acc.record(Stage::ShardExec, 3);
        // Latency 4, only 1 tick attributed.
        let log = SpanLog::from_spans(acc.job_spans(0, 1, 2, 2, 6));
        let bad = log.reconcile().expect_err("3 ticks unaccounted");
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("1 of 4"), "{bad:?}");

        let orphan = SpanLog::from_spans(vec![Span {
            tenant: 0,
            job: 9,
            stage: Stage::ShardExec,
            start: 0,
            end: 1,
            ticks: 1,
        }]);
        let bad = orphan.reconcile().expect_err("no markers");
        assert!(bad[0].contains("missing"), "{bad:?}");
    }

    #[test]
    fn stage_labels_are_distinct_and_stable() {
        let labels: Vec<&str> = Stage::ALL.iter().map(|s| stage_label(*s)).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "stage labels must be distinct");
        assert_eq!(stage_label(Stage::QueueWait), "queue_wait");
    }

    #[test]
    fn empty_log_serializes_to_empty_string() {
        assert_eq!(SpanLog::default().to_jsonl(), "");
        assert!(SpanLog::from_jsonl("").unwrap().is_empty());
    }
}
