//! Text exposition of a metrics snapshot: a Prometheus-style text format
//! and a JSON twin. Both render a sorted [`MetricSample`] snapshot, so two
//! equal registries produce byte-identical files — which is what the CI
//! `obs-smoke` diff relies on.

use crate::metrics::{MetricSample, SampleValue};
use std::fmt::Write as _;

/// Renders a snapshot in the Prometheus text exposition format:
///
/// ```text
/// # TYPE crowd_comparisons_total counter
/// crowd_comparisons_total{class="naive"} 96
/// # TYPE crowd_round_survivors histogram
/// crowd_round_survivors_bucket{le="1"} 0
/// ...
/// crowd_round_survivors_bucket{le="+Inf"} 4
/// crowd_round_survivors_sum 33
/// crowd_round_survivors_count 4
/// ```
///
/// One `# HELP` line (for names with a registered description — see
/// [`crate::metric_help`]) and one `# TYPE` line per metric name (samples
/// arrive sorted by name, so label sets of the same metric group under one
/// header). Label values are escaped per the format: backslash, double
/// quote and newline.
///
/// The label block renders into a single reusable buffer across all
/// samples — one histogram sample alone needs the block a dozen times, so
/// a fresh allocation per line showed up in the serve-load profiles.
pub fn render_prometheus(samples: &[MetricSample]) -> String {
    let mut out = String::new();
    let mut labels = String::new();
    let mut last_name: Option<&str> = None;
    for sample in samples {
        if last_name != Some(sample.name.as_str()) {
            if let Some(help) = crate::metric_help(&sample.name) {
                let _ = writeln!(out, "# HELP {} {help}", sample.name);
            }
            let _ = writeln!(out, "# TYPE {} {}", sample.name, sample.type_name());
            last_name = Some(sample.name.as_str());
        }
        match &sample.value {
            SampleValue::Counter { value } => {
                write_label_block(&mut labels, sample, &[]);
                let _ = writeln!(out, "{}{labels} {value}", sample.name);
            }
            SampleValue::Gauge { value } => {
                write_label_block(&mut labels, sample, &[]);
                let _ = writeln!(out, "{}{labels} {value}", sample.name);
            }
            SampleValue::Histogram {
                buckets,
                sum,
                count,
            } => {
                for bucket in buckets {
                    write_label_block(&mut labels, sample, &[("le", &bucket.le)]);
                    let _ = writeln!(out, "{}_bucket{labels} {}", sample.name, bucket.count);
                }
                write_label_block(&mut labels, sample, &[]);
                let _ = writeln!(out, "{}_sum{labels} {sum}", sample.name);
                let _ = writeln!(out, "{}_count{labels} {count}", sample.name);
            }
        }
    }
    out
}

/// Renders a snapshot as pretty-printed JSON (trailing newline) — the
/// machine-readable twin of [`render_prometheus`], written next to it as
/// `metrics.json`.
pub fn render_json(samples: &[MetricSample]) -> String {
    let mut out =
        serde_json::to_string_pretty(&samples.to_vec()).expect("metric snapshot serializes");
    out.push('\n');
    out
}

/// Renders `{a="1",b="2"}` from the sample's labels plus any extra pairs
/// (the histogram `le`) into `buf` — cleared first, left empty when there
/// are no labels. Reusing one buffer keeps the render allocation-free per
/// line.
fn write_label_block(buf: &mut String, sample: &MetricSample, extra: &[(&str, &str)]) {
    buf.clear();
    let pairs = sample
        .labels
        .iter()
        .map(|l| (l.name.as_str(), l.value.as_str()))
        .chain(extra.iter().copied());
    for (i, (k, v)) in pairs.enumerate() {
        buf.push(if i == 0 { '{' } else { ',' });
        buf.push_str(k);
        buf.push_str("=\"");
        escape_label_value_into(buf, v);
        buf.push('"');
    }
    if !buf.is_empty() {
        buf.push('}');
    }
}

/// Escapes a label value per the exposition format into `out`: `\` → `\\`,
/// `"` → `\"`, newline → `\n`.
fn escape_label_value_into(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let r = MetricsRegistry::new();
        r.counter_add("crowd_comparisons_total", &[("class", "naive")], 96);
        r.counter_add("crowd_comparisons_total", &[("class", "expert")], 3);
        r.gauge_set("crowd_retry_depth_max", &[], 2);
        r.observe_with("crowd_round_survivors", &[], &[1, 10, 100], 33);
        r
    }

    #[test]
    fn prometheus_output_has_one_type_line_per_name() {
        let text = render_prometheus(&sample_registry().snapshot());
        assert_eq!(
            text.matches("# TYPE crowd_comparisons_total counter")
                .count(),
            1
        );
        assert!(text.contains("crowd_comparisons_total{class=\"expert\"} 3\n"));
        assert!(text.contains("crowd_comparisons_total{class=\"naive\"} 96\n"));
        assert!(text.contains("# TYPE crowd_retry_depth_max gauge"));
        assert!(text.contains("crowd_retry_depth_max 2\n"));
    }

    #[test]
    fn histograms_render_buckets_sum_and_count() {
        let text = render_prometheus(&sample_registry().snapshot());
        assert!(text.contains("# TYPE crowd_round_survivors histogram"));
        assert!(text.contains("crowd_round_survivors_bucket{le=\"1\"} 0\n"));
        assert!(text.contains("crowd_round_survivors_bucket{le=\"100\"} 1\n"));
        assert!(text.contains("crowd_round_survivors_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("crowd_round_survivors_sum 33\n"));
        assert!(text.contains("crowd_round_survivors_count 1\n"));
    }

    #[test]
    fn known_names_get_a_help_line_before_their_type_line() {
        let r = MetricsRegistry::new();
        r.counter_add(crate::names::COMPARISONS_TOTAL, &[("class", "naive")], 1);
        r.counter_add("made_up_metric_total", &[], 1);
        let text = render_prometheus(&r.snapshot());
        let help_pos = text
            .find("# HELP crowd_comparisons_total ")
            .expect("registered names carry a HELP line");
        let type_pos = text.find("# TYPE crowd_comparisons_total ").unwrap();
        assert!(help_pos < type_pos, "HELP precedes TYPE: {text}");
        assert!(
            !text.contains("# HELP made_up_metric_total"),
            "unregistered names stay HELP-less: {text}"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let r = MetricsRegistry::new();
        r.counter_add("m", &[("k", "a\"b\\c\nd")], 1);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("m{k=\"a\\\"b\\\\c\\nd\"} 1\n"), "{text}");
    }

    #[test]
    fn json_twin_parses_back_to_the_same_snapshot() {
        let snap = sample_registry().snapshot();
        let json = render_json(&snap);
        let parsed: Vec<MetricSample> = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn equal_registries_render_byte_identically() {
        let a = render_prometheus(&sample_registry().snapshot());
        let b = render_prometheus(&sample_registry().snapshot());
        assert_eq!(a, b);
        assert_eq!(
            render_json(&sample_registry().snapshot()),
            render_json(&sample_registry().snapshot())
        );
    }
}
