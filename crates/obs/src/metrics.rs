//! The metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! A registry is a map from `(name, label set)` to a metric cell behind
//! one mutex — every update is a short critical section, and the parallel
//! runners never contend on it anyway: each work item writes into a
//! private per-segment registry ([`crate::record_segment`]) that is merged
//! into its parent at the join. Merging is associative and commutative
//! (counters and histogram buckets add, gauges take the maximum), so the
//! aggregate is independent of worker scheduling.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Default histogram bounds: powers of two from 1 to 2²⁰, plus the
/// implicit `+Inf` bucket. Wide enough for latency steps, retry depths,
/// round sizes and per-round comparison counts alike.
pub const DEFAULT_BUCKETS: [u64; 21] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072,
    262144, 524288, 1048576,
];

/// A fixed-bucket histogram of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bounds of the finite buckets, ascending.
    bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) counts; one extra slot for `+Inf`.
    buckets: Vec<u64>,
    sum: u64,
    count: u64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascend");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            sum: 0,
            count: 0,
        }
    }

    fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram bucket layouts differ for the same metric name"
        );
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Total of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Cumulative bucket counts paired with their rendered `le` bound,
    /// Prometheus-style: ascending bounds, final bucket `+Inf`.
    pub fn cumulative_buckets(&self) -> Vec<BucketCount> {
        let mut running = 0;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, c) in self.buckets.iter().enumerate() {
            running += c;
            let le = match self.bounds.get(i) {
                Some(b) => b.to_string(),
                None => "+Inf".to_string(),
            };
            out.push(BucketCount { le, count: running });
        }
        out
    }
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    /// Sorted by label name, so a label set has one canonical key.
    labels: Vec<(String, String)>,
}

#[derive(Debug, Clone, PartialEq)]
enum MetricCell {
    Counter(u64),
    Gauge(i64),
    Histogram(Histogram),
}

impl MetricCell {
    fn type_name(&self) -> &'static str {
        match self {
            MetricCell::Counter(_) => "counter",
            MetricCell::Gauge(_) => "gauge",
            MetricCell::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named metrics. See the module docs for the concurrency
/// and merge model.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<MetricKey, MetricCell>>,
}

impl Clone for MetricsRegistry {
    fn clone(&self) -> Self {
        MetricsRegistry {
            inner: Mutex::new(self.lock().clone()),
        }
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<MetricKey, MetricCell>> {
        self.inner.lock().expect("metrics registry lock poisoned")
    }

    fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    /// Adds `v` to the monotonic counter `name{labels}` (creating it at
    /// zero first).
    ///
    /// # Panics
    ///
    /// Panics if `name{labels}` already holds a different metric type.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        let mut map = self.lock();
        match map
            .entry(Self::key(name, labels))
            .or_insert(MetricCell::Counter(0))
        {
            MetricCell::Counter(c) => *c += v,
            other => panic!("metric {name} is a {}, not a counter", other.type_name()),
        }
    }

    /// Raises the high-watermark gauge `name{labels}` to `v` if `v`
    /// exceeds its current value.
    ///
    /// Gauges here keep the *maximum* value ever set — that is what makes
    /// merging per-worker registries order-independent. A last-write-wins
    /// gauge cannot be aggregated deterministically across threads.
    ///
    /// # Panics
    ///
    /// Panics if `name{labels}` already holds a different metric type.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: i64) {
        let mut map = self.lock();
        match map
            .entry(Self::key(name, labels))
            .or_insert(MetricCell::Gauge(i64::MIN))
        {
            MetricCell::Gauge(g) => *g = (*g).max(v),
            other => panic!("metric {name} is a {}, not a gauge", other.type_name()),
        }
    }

    /// Records `value` into the histogram `name{labels}` with the
    /// [`DEFAULT_BUCKETS`] layout.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.observe_with(name, labels, &DEFAULT_BUCKETS, value);
    }

    /// Records `value` into the histogram `name{labels}` with an explicit
    /// bucket layout. Every observation of one metric name must use the
    /// same layout.
    ///
    /// # Panics
    ///
    /// Panics if `name{labels}` already holds a different metric type or a
    /// different bucket layout.
    pub fn observe_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64], value: u64) {
        let mut map = self.lock();
        match map
            .entry(Self::key(name, labels))
            .or_insert_with(|| MetricCell::Histogram(Histogram::new(bounds)))
        {
            MetricCell::Histogram(h) => {
                assert_eq!(h.bounds, bounds, "bucket layouts differ for {name}");
                h.observe(value);
            }
            other => panic!("metric {name} is a {}, not a histogram", other.type_name()),
        }
    }

    /// Merges `other` into `self`: counters and histogram buckets add,
    /// gauges keep the maximum. Associative and commutative, so the result
    /// of folding any number of per-worker registries is independent of
    /// fold order.
    ///
    /// # Panics
    ///
    /// Panics if the two registries disagree on a metric's type or bucket
    /// layout.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        let theirs = other.lock().clone();
        let mut mine = self.lock();
        for (key, cell) in theirs {
            match mine.entry(key) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(cell);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let name = e.key().name.clone();
                    match (e.get_mut(), cell) {
                        (MetricCell::Counter(a), MetricCell::Counter(b)) => *a += b,
                        (MetricCell::Gauge(a), MetricCell::Gauge(b)) => *a = (*a).max(b),
                        (MetricCell::Histogram(a), MetricCell::Histogram(b)) => a.merge(&b),
                        (a, b) => panic!(
                            "merge type mismatch for {name}: {} vs {}",
                            a.type_name(),
                            b.type_name()
                        ),
                    }
                }
            }
        }
    }

    /// True when no metric has been touched.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// A sorted, serializable snapshot of every metric — the input of the
    /// exposition writers ([`crate::render_prometheus`] /
    /// [`crate::render_json`]) and the `metrics` section of the bench
    /// report. Ordering is by `(name, labels)`, so two equal registries
    /// snapshot byte-identically.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        self.lock()
            .iter()
            .map(|(key, cell)| MetricSample {
                name: key.name.clone(),
                labels: key
                    .labels
                    .iter()
                    .map(|(k, v)| LabelPair {
                        name: k.clone(),
                        value: v.clone(),
                    })
                    .collect(),
                value: match cell {
                    MetricCell::Counter(c) => SampleValue::Counter { value: *c },
                    MetricCell::Gauge(g) => SampleValue::Gauge { value: *g },
                    MetricCell::Histogram(h) => SampleValue::Histogram {
                        buckets: h.cumulative_buckets(),
                        sum: h.sum(),
                        count: h.count(),
                    },
                },
            })
            .collect()
    }
}

/// One `name=value` label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelPair {
    /// Label name.
    pub name: String,
    /// Label value.
    pub value: String,
}

/// One cumulative histogram bucket: observations `<= le`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// The bucket's inclusive upper bound (`"+Inf"` for the last).
    pub le: String,
    /// Cumulative count of observations at or below `le`.
    pub count: u64,
}

/// The value of one snapshotted metric.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SampleValue {
    /// Monotonic counter.
    Counter {
        /// Current total.
        value: u64,
    },
    /// High-watermark gauge.
    Gauge {
        /// Largest value ever set.
        value: i64,
    },
    /// Fixed-bucket histogram.
    Histogram {
        /// Cumulative buckets, ascending, ending at `+Inf`.
        buckets: Vec<BucketCount>,
        /// Total of observed values.
        sum: u64,
        /// Number of observations.
        count: u64,
    },
}

/// One metric at one label set, snapshotted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricSample {
    /// Metric name.
    pub name: String,
    /// Labels, sorted by name.
    pub labels: Vec<LabelPair>,
    /// The metric's value.
    pub value: SampleValue,
}

impl MetricSample {
    /// The Prometheus type keyword for this sample.
    pub fn type_name(&self) -> &'static str {
        match self.value {
            SampleValue::Counter { .. } => "counter",
            SampleValue::Gauge { .. } => "gauge",
            SampleValue::Histogram { .. } => "histogram",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let r = MetricsRegistry::new();
        r.counter_add("b_total", &[], 1);
        r.counter_add("a_total", &[("class", "naive")], 2);
        r.counter_add("a_total", &[("class", "naive")], 3);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].name, "a_total");
        assert_eq!(snap[0].value, SampleValue::Counter { value: 5 });
        assert_eq!(snap[1].name, "b_total");
    }

    #[test]
    fn label_order_does_not_split_series() {
        let r = MetricsRegistry::new();
        r.counter_add("x", &[("a", "1"), ("b", "2")], 1);
        r.counter_add("x", &[("b", "2"), ("a", "1")], 1);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].value, SampleValue::Counter { value: 2 });
    }

    #[test]
    fn gauges_keep_the_high_watermark() {
        let r = MetricsRegistry::new();
        r.gauge_set("depth", &[], 5);
        r.gauge_set("depth", &[], 3);
        assert_eq!(r.snapshot()[0].value, SampleValue::Gauge { value: 5 });
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let r = MetricsRegistry::new();
        for v in [1, 2, 3, 5_000_000] {
            r.observe("h", &[], v);
        }
        let SampleValue::Histogram {
            buckets,
            sum,
            count,
        } = r.snapshot()[0].value.clone()
        else {
            panic!("histogram expected");
        };
        assert_eq!(sum, 5_000_006);
        assert_eq!(count, 4);
        assert_eq!(buckets.first().unwrap().le, "1");
        assert_eq!(buckets.first().unwrap().count, 1);
        assert_eq!(buckets.last().unwrap().le, "+Inf");
        assert_eq!(buckets.last().unwrap().count, 4);
        // value 2 lands in le=2; value 3 in le=4.
        assert_eq!(buckets[1].count, 2);
        assert_eq!(buckets[2].count, 3);
    }

    #[test]
    fn merge_adds_counters_and_buckets_and_maxes_gauges() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter_add("c", &[], 1);
        b.counter_add("c", &[], 2);
        a.gauge_set("g", &[], 7);
        b.gauge_set("g", &[], 4);
        a.observe("h", &[], 1);
        b.observe("h", &[], 100);
        b.counter_add("only_b", &[], 9);
        a.merge_from(&b);
        let snap = a.snapshot();
        assert_eq!(snap[0].value, SampleValue::Counter { value: 3 });
        assert_eq!(snap[1].value, SampleValue::Gauge { value: 7 });
        let SampleValue::Histogram { count, .. } = snap[2].value else {
            panic!()
        };
        assert_eq!(count, 2);
        assert_eq!(snap[3].value, SampleValue::Counter { value: 9 });
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        let r = MetricsRegistry::new();
        r.gauge_set("m", &[], 1);
        r.counter_add("m", &[], 1);
    }

    #[test]
    fn samples_serialize_to_json() {
        let r = MetricsRegistry::new();
        r.counter_add("c_total", &[("k", "v")], 3);
        let json = serde_json::to_string(&r.snapshot()).unwrap();
        assert!(json.contains("c_total"), "{json}");
        assert!(json.contains("Counter"), "{json}");
    }
}
