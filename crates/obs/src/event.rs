//! The structured event vocabulary and its JSONL log form.

use crowd_core::model::WorkerClass;
use crowd_core::oracle::ComparisonCounts;
use crowd_core::trace::{DeadLetterReason, DegradedReason, FaultKind, TracePhase};
use serde::{Deserialize, Serialize};

/// One observable occurrence in a run.
///
/// Events are emitted through [`crate::emit`] into every installed
/// [`Recorder`](crate::Recorder) and serialized as one JSON object per
/// line. They carry **no wall-clock time**: ordering is the logical
/// sequence number the log assigns ([`LogRecord::seq`]), which is why a
/// run's log is byte-identical at any `--jobs` count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A named unit of work (an experiment, a bench tier, one algorithm
    /// run) begins.
    RunStarted {
        /// The run's name (experiment registry key, tier label, ...).
        name: String,
    },
    /// Algorithm 1 entered (`entered = true`) or left a phase.
    PhaseTransition {
        /// Which phase.
        phase: TracePhase,
        /// True on entry, false on exit.
        entered: bool,
    },
    /// One Phase-1 filter round finished.
    RoundCompleted {
        /// Round index (0-based).
        round: u32,
        /// Tournament groups the round played.
        groups: u32,
        /// Elements surviving the round.
        survivors: u64,
        /// Comparisons the round consumed, by worker class. Summing these
        /// over a run's rounds reconciles exactly with the
        /// [`ComparisonCounts`] tally of its filter phase.
        comparisons_by_class: ComparisonCounts,
    },
    /// The platform injected or detected a fault (dropout, abandonment,
    /// no-answer, timeout, expert fallback). Retries and dead letters have
    /// their own richer events below.
    FaultObserved {
        /// The worker class involved.
        class: WorkerClass,
        /// What went wrong.
        kind: FaultKind,
    },
    /// A failed judgment slot was re-assigned to a fresh worker.
    RetryScheduled {
        /// The worker class being retried.
        class: WorkerClass,
        /// Retry attempt number (1-based; the initial assignment is not a
        /// retry).
        attempt: u32,
        /// Backoff delay charged to the slot, in physical steps.
        backoff_steps: u64,
    },
    /// A unit exhausted its retries and was dead-lettered.
    DeadLettered {
        /// The worker class the unit was assigned to.
        class: WorkerClass,
        /// Total judgment attempts made for the unit.
        attempts: u32,
        /// Why the unit was given up on — quarantine storms
        /// ([`DeadLetterReason::NoHealthyWorkers`]) are distinguishable
        /// from small pools ([`DeadLetterReason::NoFreshWorkers`]) here.
        reason: DeadLetterReason,
    },
    /// The campaign budget cap refused further work.
    BudgetExhausted {
        /// The configured cap.
        cap: f64,
        /// Money spent when the cap fired.
        spent: f64,
    },
    /// A journal checkpoint flushed pending records to durable storage.
    CheckpointWritten {
        /// Batches journaled so far (including this checkpoint's).
        batches: u64,
        /// Bytes this flush made durable.
        bytes: u64,
    },
    /// Crash recovery began replaying a journal.
    RecoveryStarted {
        /// Completed batches found in the journal.
        batches: u64,
        /// True when the journal's tail was torn (a partially written
        /// final record was detected by checksum and discarded).
        torn_tail: bool,
    },
    /// Crash recovery finished replaying; the run continues live.
    RecoveryCompleted {
        /// Batches replayed from the journal.
        replayed_batches: u64,
        /// Individual comparisons restored from the journal instead of
        /// re-purchased from workers.
        replayed_comparisons: u64,
    },
    /// Admission control accepted a job into the service.
    JobAdmitted {
        /// The owning tenant.
        tenant: u32,
        /// The service-assigned job id.
        job: u64,
        /// Ticks the job waited in the admission queue (0 = admitted on
        /// arrival).
        waited_ticks: u64,
    },
    /// Admission control shed a job instead of queueing it unboundedly.
    JobShed {
        /// The owning tenant.
        tenant: u32,
        /// The service-assigned job id.
        job: u64,
        /// The earliest tick distance at which retrying could succeed
        /// (`u64::MAX` when the job can never fit the tenant's budget).
        retry_after: u64,
    },
    /// A service job finished sorting — correctly or explicitly degraded,
    /// never silently.
    JobCompleted {
        /// The owning tenant.
        tenant: u32,
        /// The service-assigned job id.
        job: u64,
        /// Ticks from submission to completion.
        latency_ticks: u64,
        /// Comparisons charged to the tenant for this job.
        comparisons: u64,
        /// `None` for a full-protocol result; `Some` names the degradation.
        degraded: Option<DegradedReason>,
    },
    /// A circuit breaker tripped, quarantining a worker.
    BreakerTripped {
        /// The shard the worker serves in.
        shard: u32,
        /// The quarantined worker.
        worker: u32,
        /// Consecutive failures that tripped the breaker.
        streak: u32,
        /// Ticks until the half-open probe.
        cooldown_ticks: u64,
    },
    /// A half-open breaker probe resolved.
    BreakerProbed {
        /// The shard the worker serves in.
        shard: u32,
        /// The probed worker.
        worker: u32,
        /// True when the probe succeeded and the breaker re-closed; false
        /// when it failed and the quarantine re-opened.
        recovered: bool,
    },
    /// A tenant's sliding-window SLO went from healthy to breached.
    SloBreached {
        /// The tenant whose objective is violated.
        tenant: u32,
        /// The tick the monitor detected the breach.
        tick: u64,
        /// Completions inside the sliding window at detection.
        window_jobs: u64,
        /// Window completions that violated the objective (degraded, or
        /// over the latency target).
        bad_jobs: u64,
        /// Bad-completion rate over the window, in basis points.
        bad_bps: u32,
    },
    /// A previously breached tenant SLO returned inside its objective.
    SloRecovered {
        /// The tenant whose objective recovered.
        tenant: u32,
        /// The tick the monitor detected the recovery.
        tick: u64,
        /// Completions inside the sliding window at detection.
        window_jobs: u64,
        /// Bad-completion rate over the window, in basis points.
        bad_bps: u32,
    },
    /// The matching [`Event::RunStarted`] unit of work finished.
    RunFinished {
        /// The run's name.
        name: String,
        /// Comparisons the run performed, by class.
        comparisons_by_class: ComparisonCounts,
        /// Total faults recorded during the run.
        faults: u64,
    },
}

/// One event plus its logical-clock sequence number (its position in the
/// log, assigned at serialization time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogRecord {
    /// 0-based position in the log.
    pub seq: u64,
    /// The event.
    pub event: Event,
}

/// An ordered event log — the in-memory form of an `events.jsonl` file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventLog {
    /// The records, in sequence order.
    pub records: Vec<LogRecord>,
}

impl EventLog {
    /// Builds a log from events in emission order, assigning sequence
    /// numbers 0, 1, 2, ...
    pub fn from_events(events: Vec<Event>) -> Self {
        EventLog {
            records: events
                .into_iter()
                .enumerate()
                .map(|(i, event)| LogRecord {
                    seq: i as u64,
                    event,
                })
                .collect(),
        }
    }

    /// Serializes the log as JSONL: one compact JSON record per line,
    /// newline-terminated (empty string for an empty log).
    ///
    /// # Panics
    ///
    /// Panics if a record fails to serialize (it cannot: events are plain
    /// value trees).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in &self.records {
            out.push_str(&serde_json::to_string(record).expect("event record serializes"));
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL event log (the read API the replay tooling uses).
    /// Blank lines are ignored.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line's parse error, prefixed with its
    /// 1-based line number.
    pub fn from_jsonl(text: &str) -> Result<EventLog, serde::Error> {
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record: LogRecord = serde_json::from_str(line)
                .map_err(|e| serde::Error::msg(format!("line {}: {e}", i + 1)))?;
            records.push(record);
        }
        Ok(EventLog { records })
    }

    /// The events in sequence order, without their sequence numbers.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.records.iter().map(|r| &r.event)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RunStarted {
                name: "demo".to_string(),
            },
            Event::PhaseTransition {
                phase: TracePhase::Filter,
                entered: true,
            },
            Event::RoundCompleted {
                round: 0,
                groups: 4,
                survivors: 12,
                comparisons_by_class: ComparisonCounts {
                    naive: 96,
                    expert: 0,
                },
            },
            Event::FaultObserved {
                class: WorkerClass::Naive,
                kind: FaultKind::Timeout,
            },
            Event::RetryScheduled {
                class: WorkerClass::Naive,
                attempt: 1,
                backoff_steps: 1,
            },
            Event::DeadLettered {
                class: WorkerClass::Expert,
                attempts: 4,
                reason: DeadLetterReason::RetriesExhausted,
            },
            Event::JobAdmitted {
                tenant: 1,
                job: 42,
                waited_ticks: 3,
            },
            Event::JobShed {
                tenant: 2,
                job: 43,
                retry_after: 17,
            },
            Event::JobCompleted {
                tenant: 1,
                job: 42,
                latency_ticks: 9,
                comparisons: 31,
                degraded: Some(DegradedReason::ExpertExhausted),
            },
            Event::BreakerTripped {
                shard: 0,
                worker: 5,
                streak: 3,
                cooldown_ticks: 8,
            },
            Event::BreakerProbed {
                shard: 0,
                worker: 5,
                recovered: true,
            },
            Event::SloBreached {
                tenant: 1,
                tick: 30,
                window_jobs: 12,
                bad_jobs: 4,
                bad_bps: 3333,
            },
            Event::SloRecovered {
                tenant: 1,
                tick: 58,
                window_jobs: 10,
                bad_bps: 500,
            },
            Event::BudgetExhausted {
                cap: 10.0,
                spent: 10.5,
            },
            Event::CheckpointWritten {
                batches: 3,
                bytes: 412,
            },
            Event::RecoveryStarted {
                batches: 3,
                torn_tail: true,
            },
            Event::RecoveryCompleted {
                replayed_batches: 3,
                replayed_comparisons: 96,
            },
            Event::RunFinished {
                name: "demo".to_string(),
                comparisons_by_class: ComparisonCounts {
                    naive: 96,
                    expert: 3,
                },
                faults: 2,
            },
        ]
    }

    #[test]
    fn jsonl_round_trips() {
        let log = EventLog::from_events(sample_events());
        let text = log.to_jsonl();
        assert_eq!(text.lines().count(), log.len());
        let parsed = EventLog::from_jsonl(&text).expect("log parses");
        assert_eq!(parsed, log);
    }

    #[test]
    fn sequence_numbers_are_positions() {
        let log = EventLog::from_events(sample_events());
        for (i, record) in log.records.iter().enumerate() {
            assert_eq!(record.seq, i as u64);
        }
    }

    #[test]
    fn malformed_lines_report_their_number() {
        let err = EventLog::from_jsonl("{\"seq\":0}\nnot json\n").expect_err("must fail");
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn blank_lines_are_ignored() {
        let log = EventLog::from_events(vec![Event::RunStarted {
            name: "x".to_string(),
        }]);
        let mut text = String::from("\n");
        text.push_str(&log.to_jsonl());
        text.push('\n');
        assert_eq!(EventLog::from_jsonl(&text).unwrap(), log);
    }

    #[test]
    fn empty_log_serializes_to_empty_string() {
        assert_eq!(EventLog::default().to_jsonl(), "");
        assert!(EventLog::from_jsonl("").unwrap().is_empty());
    }
}
