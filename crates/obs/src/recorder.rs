//! The thread-local recorder stack: where events and metric updates land.
//!
//! This mirrors the `TallySink` stack in `crowd_core::trace` — a
//! [`Recorder`] is installed on the current thread for a scope
//! ([`install_recorder`]), and every [`emit`]/[`counter_add`]/
//! [`gauge_set`]/[`observe`] call made anywhere on that thread while it is
//! installed lands in it (and in any recorders installed below it).
//!
//! Parallel fan-out uses a different mechanism than sinks do. A sink only
//! accumulates commutative totals, so workers can feed the caller's sinks
//! directly; an event log is *ordered*, so workers must not interleave.
//! Instead, a worker wraps each work item in [`record_segment`], which
//! masks whatever is installed and captures the item's output into a
//! private [`Segment`]; the caller then [`replay`]s the segments in input
//! order after the join. The result is byte-identical to running the items
//! serially, at any worker count.

use crate::event::{Event, EventLog};
use crate::metrics::{MetricsRegistry, DEFAULT_BUCKETS};
use crate::span::{Span, SpanLog};
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};

/// A collection point for events, spans, and metrics, scoped to a thread
/// via [`install_recorder`].
#[derive(Debug, Default)]
pub struct Recorder {
    events: Mutex<Vec<Event>>,
    spans: Mutex<Vec<Span>>,
    metrics: MetricsRegistry,
}

impl Recorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event.
    pub fn push_event(&self, event: Event) {
        self.events
            .lock()
            .expect("recorder event buffer poisoned")
            .push(event);
    }

    /// The events recorded so far, in order.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .expect("recorder event buffer poisoned")
            .clone()
    }

    /// The recorded events as a sequence-numbered [`EventLog`] — the
    /// logical clock is assigned here, at serialization time.
    pub fn log(&self) -> EventLog {
        EventLog::from_events(self.events())
    }

    /// Appends one causal span.
    pub fn push_span(&self, span: Span) {
        self.spans
            .lock()
            .expect("recorder span buffer poisoned")
            .push(span);
    }

    /// The spans recorded so far, in emission order.
    pub fn spans(&self) -> Vec<Span> {
        self.spans
            .lock()
            .expect("recorder span buffer poisoned")
            .clone()
    }

    /// The recorded spans as a canonically sorted [`SpanLog`] — sorting
    /// happens here, so the serialized log is order-insensitive.
    pub fn span_log(&self) -> SpanLog {
        SpanLog::from_spans(self.spans())
    }

    /// The recorder's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Drains the recorder into a [`Segment`], leaving it empty.
    fn take_segment(&self) -> Segment {
        let events =
            std::mem::take(&mut *self.events.lock().expect("recorder event buffer poisoned"));
        let spans = std::mem::take(&mut *self.spans.lock().expect("recorder span buffer poisoned"));
        let metrics = self.metrics.clone();
        Segment {
            events,
            spans,
            metrics,
        }
    }
}

/// One work item's buffered observability output: the events it emitted,
/// in order, plus its spans and metric updates. Produced by
/// [`record_segment`] on a worker thread, spliced back with [`replay`] on
/// the caller's.
#[derive(Debug, Default)]
pub struct Segment {
    events: Vec<Event>,
    spans: Vec<Span>,
    metrics: MetricsRegistry,
}

impl Segment {
    /// True when the segment recorded nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.spans.is_empty() && self.metrics.is_empty()
    }
}

thread_local! {
    static RECORDERS: RefCell<Vec<Arc<Recorder>>> = const { RefCell::new(Vec::new()) };
}

/// Uninstalls the recorders its [`install_recorder`]/[`install_recorders`]
/// call pushed, when dropped. Not `Send`: the guard must drop on the
/// installing thread.
#[derive(Debug)]
pub struct RecorderGuard {
    installed: usize,
    _not_send: PhantomData<*const ()>,
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        RECORDERS.with(|r| {
            let mut stack = r.borrow_mut();
            let keep = stack.len().saturating_sub(self.installed);
            stack.truncate(keep);
        });
    }
}

/// Installs `recorder` on the current thread until the guard drops; every
/// event and metric update made meanwhile lands in it (and in any
/// recorders already installed below it).
#[must_use = "the recorder uninstalls when the guard drops"]
pub fn install_recorder(recorder: Arc<Recorder>) -> RecorderGuard {
    RECORDERS.with(|r| r.borrow_mut().push(recorder));
    RecorderGuard {
        installed: 1,
        _not_send: PhantomData,
    }
}

/// Installs a whole stack of recorders at once.
#[must_use = "the recorders uninstall when the guard drops"]
pub fn install_recorders(recorders: &[Arc<Recorder>]) -> RecorderGuard {
    RECORDERS.with(|r| r.borrow_mut().extend(recorders.iter().cloned()));
    RecorderGuard {
        installed: recorders.len(),
        _not_send: PhantomData,
    }
}

/// The recorders installed on the current thread, bottom-up. A parallel
/// runner checks this before fan-out: when empty, per-item capture can be
/// skipped entirely.
pub fn current_recorders() -> Vec<Arc<Recorder>> {
    RECORDERS.with(|r| r.borrow().clone())
}

/// Appends `event` to every installed recorder. A no-op (and cheap) when
/// none is installed.
pub fn emit(event: Event) {
    RECORDERS.with(|r| {
        for rec in r.borrow().iter() {
            rec.push_event(event.clone());
        }
    });
}

/// Appends `span` to every installed recorder. Spans need no emission
/// ordering — [`SpanLog`] sorts canonically — but they ride the same
/// segment capture/replay machinery so parallel fan-out stays
/// byte-identical.
pub fn emit_span(span: Span) {
    RECORDERS.with(|r| {
        for rec in r.borrow().iter() {
            rec.push_span(span);
        }
    });
}

/// Adds `v` to the counter `name{labels}` in every installed recorder.
pub fn counter_add(name: &str, labels: &[(&str, &str)], v: u64) {
    RECORDERS.with(|r| {
        for rec in r.borrow().iter() {
            rec.metrics.counter_add(name, labels, v);
        }
    });
}

/// Raises the high-watermark gauge `name{labels}` in every installed
/// recorder.
pub fn gauge_set(name: &str, labels: &[(&str, &str)], v: i64) {
    RECORDERS.with(|r| {
        for rec in r.borrow().iter() {
            rec.metrics.gauge_set(name, labels, v);
        }
    });
}

/// Records `value` into the histogram `name{labels}` (with the
/// [`DEFAULT_BUCKETS`] layout) in every installed recorder.
pub fn observe(name: &str, labels: &[(&str, &str)], value: u64) {
    RECORDERS.with(|r| {
        for rec in r.borrow().iter() {
            rec.metrics
                .observe_with(name, labels, &DEFAULT_BUCKETS, value);
        }
    });
}

/// Restores the masked recorder stack even if the closure panics.
struct MaskGuard {
    saved: Vec<Arc<Recorder>>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for MaskGuard {
    fn drop(&mut self) {
        RECORDERS.with(|r| *r.borrow_mut() = std::mem::take(&mut self.saved));
    }
}

/// Runs `f` with the current thread's recorder stack **masked** by one
/// fresh recorder, and returns `f`'s result together with everything it
/// recorded.
///
/// This is the worker half of deterministic parallel capture: each work
/// item records into its own segment, and the caller splices the segments
/// back in input order with [`replay`]. Masking (rather than pushing)
/// keeps the item's output out of any recorder already installed on the
/// thread — the output reaches those recorders exactly once, via replay.
pub fn record_segment<T>(f: impl FnOnce() -> T) -> (T, Segment) {
    let fresh = Arc::new(Recorder::new());
    let saved = RECORDERS.with(|r| std::mem::replace(&mut *r.borrow_mut(), vec![fresh.clone()]));
    let _restore = MaskGuard {
        saved,
        _not_send: PhantomData,
    };
    let result = f();
    drop(_restore);
    (result, fresh.take_segment())
}

/// Splices a captured [`Segment`] into every recorder installed on the
/// current thread: its events append in their recorded order, its metrics
/// merge ([`MetricsRegistry::merge_from`]).
pub fn replay(segment: Segment) {
    RECORDERS.with(|r| {
        for rec in r.borrow().iter() {
            for event in &segment.events {
                rec.push_event(event.clone());
            }
            for span in &segment.spans {
                rec.push_span(*span);
            }
            rec.metrics.merge_from(&segment.metrics);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SampleValue;
    use crate::span::Stage;

    fn ev(name: &str) -> Event {
        Event::RunStarted {
            name: name.to_string(),
        }
    }

    fn sp(job: u64) -> Span {
        Span {
            tenant: 0,
            job,
            stage: Stage::ShardExec,
            start: job,
            end: job + 1,
            ticks: 1,
        }
    }

    #[test]
    fn emit_feeds_every_installed_recorder_in_nesting_order() {
        let outer = Arc::new(Recorder::new());
        let inner = Arc::new(Recorder::new());
        {
            let _g1 = install_recorder(outer.clone());
            emit(ev("a"));
            {
                let _g2 = install_recorder(inner.clone());
                emit(ev("b"));
            }
            emit(ev("c"));
        }
        emit(ev("after")); // nothing installed: dropped
        assert_eq!(outer.events(), vec![ev("a"), ev("b"), ev("c")]);
        assert_eq!(inner.events(), vec![ev("b")]);
    }

    #[test]
    fn metric_helpers_feed_every_installed_recorder() {
        let rec = Arc::new(Recorder::new());
        {
            let _g = install_recorder(rec.clone());
            counter_add("c_total", &[], 2);
            gauge_set("g", &[], 9);
            observe("h", &[], 3);
        }
        counter_add("c_total", &[], 100); // dropped
        let snap = rec.metrics().snapshot();
        assert_eq!(snap[0].value, SampleValue::Counter { value: 2 });
        assert_eq!(snap[1].value, SampleValue::Gauge { value: 9 });
        let SampleValue::Histogram { count, .. } = snap[2].value else {
            panic!("histogram expected");
        };
        assert_eq!(count, 1);
    }

    #[test]
    fn record_segment_masks_the_outer_stack_until_replay() {
        let outer = Arc::new(Recorder::new());
        let _g = install_recorder(outer.clone());
        let ((), seg) = record_segment(|| {
            emit(ev("inside"));
            emit_span(sp(7));
            counter_add("k", &[], 1);
        });
        // Nothing leaked while the segment was recording.
        assert!(outer.events().is_empty());
        assert!(outer.spans().is_empty());
        assert!(outer.metrics().is_empty());
        // The mask is gone: direct emission works again.
        emit(ev("direct"));
        replay(seg);
        assert_eq!(outer.events(), vec![ev("direct"), ev("inside")]);
        assert_eq!(outer.spans(), vec![sp(7)]);
        assert_eq!(
            outer.metrics().snapshot()[0].value,
            SampleValue::Counter { value: 1 }
        );
    }

    #[test]
    fn record_segment_restores_the_stack_on_panic() {
        let outer = Arc::new(Recorder::new());
        let _g = install_recorder(outer.clone());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = record_segment(|| panic!("boom"));
        }));
        assert!(caught.is_err());
        emit(ev("after-panic"));
        assert_eq!(outer.events(), vec![ev("after-panic")]);
    }

    #[test]
    fn parallel_capture_replayed_in_input_order_matches_serial() {
        let items: Vec<usize> = (0..8).collect();
        let work = |i: usize| {
            emit(ev(&format!("item-{i}")));
            emit_span(sp(i as u64));
            counter_add("items_total", &[], 1);
            observe("item_value", &[], i as u64);
            i * 2
        };

        // Serial reference.
        let serial = Arc::new(Recorder::new());
        {
            let _g = install_recorder(serial.clone());
            for &i in &items {
                work(i);
            }
        }

        // Parallel: capture segments on worker threads, replay in input
        // order on the caller (worker threads start with an empty stack,
        // exactly like `engine::parallel_map` workers do).
        let parallel = Arc::new(Recorder::new());
        {
            let _g = install_recorder(parallel.clone());
            let slot_cells: Vec<Mutex<Option<Segment>>> =
                items.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|s| {
                for (i, &item) in items.iter().enumerate() {
                    let cell = &slot_cells[i];
                    s.spawn(move || {
                        let (_out, seg) = record_segment(|| work(item));
                        *cell.lock().unwrap() = Some(seg);
                    });
                }
            });
            for cell in slot_cells {
                replay(cell.into_inner().unwrap().expect("segment captured"));
            }
        }

        assert_eq!(serial.log().to_jsonl(), parallel.log().to_jsonl());
        assert_eq!(serial.span_log().to_jsonl(), parallel.span_log().to_jsonl());
        assert_eq!(
            serde_json::to_string(&serial.metrics().snapshot()).unwrap(),
            serde_json::to_string(&parallel.metrics().snapshot()).unwrap()
        );
    }
}
