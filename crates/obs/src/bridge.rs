//! [`ObservedOracle`]: the bridge from `crowd-core`'s existing trace seam
//! into the observability layer.
//!
//! The algorithms already narrate their structure through
//! [`ComparisonOracle::observe`] — phase and round boundaries plus the
//! per-round [`TraceEvent::RoundStats`] summary. This decorator listens on
//! that seam (exactly like `InstrumentedOracle` does) and turns the
//! boundary events into structured [`Event`]s and round-level histograms,
//! attributing each round's comparison cost by diffing the inner oracle's
//! [`ComparisonCounts`] across the round.

use crate::event::Event;
use crate::recorder::{emit, observe};
use crate::{class_label, names as metric_names};
use crowd_core::element::ElementId;
use crowd_core::model::WorkerClass;
use crowd_core::oracle::{ComparisonCounts, ComparisonOracle, OracleError};
use crowd_core::trace::TraceEvent;

/// Oracle decorator that forwards trace boundary events into the
/// observability recorders (see the module docs). Transparent for
/// comparisons: `compare`/`try_compare`/`counts` delegate straight to the
/// inner oracle, so stacking it changes no algorithm behaviour.
#[derive(Debug)]
pub struct ObservedOracle<O> {
    inner: O,
    /// Inner counts snapshotted at the last `RoundStart`, to attribute the
    /// round's comparisons when its `RoundStats` arrives.
    round_baseline: Option<ComparisonCounts>,
}

impl<O: ComparisonOracle> ObservedOracle<O> {
    /// Wraps `inner`.
    pub fn new(inner: O) -> Self {
        ObservedOracle {
            inner,
            round_baseline: None,
        }
    }

    /// Returns the wrapped oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// A shared reference to the wrapped oracle.
    pub fn get_ref(&self) -> &O {
        &self.inner
    }
}

impl<O: ComparisonOracle> ComparisonOracle for ObservedOracle<O> {
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
        self.inner.compare(class, k, j)
    }

    fn try_compare(
        &mut self,
        class: WorkerClass,
        k: ElementId,
        j: ElementId,
    ) -> Result<ElementId, OracleError> {
        self.inner.try_compare(class, k, j)
    }

    fn compare_batch(
        &mut self,
        class: WorkerClass,
        pairs: &[(ElementId, ElementId)],
        winners: &mut Vec<ElementId>,
    ) {
        self.inner.compare_batch(class, pairs, winners);
    }

    fn try_compare_batch(
        &mut self,
        class: WorkerClass,
        pairs: &[(ElementId, ElementId)],
        winners: &mut Vec<ElementId>,
    ) -> Result<(), OracleError> {
        self.inner.try_compare_batch(class, pairs, winners)
    }

    fn counts(&self) -> ComparisonCounts {
        self.inner.counts()
    }

    fn observe(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::PhaseStart(phase) => emit(Event::PhaseTransition {
                phase,
                entered: true,
            }),
            TraceEvent::PhaseEnd(phase) => emit(Event::PhaseTransition {
                phase,
                entered: false,
            }),
            TraceEvent::RoundStart(_) => {
                self.round_baseline = Some(self.inner.counts());
            }
            TraceEvent::RoundStats {
                round,
                groups,
                survivors,
            } => {
                let baseline = self
                    .round_baseline
                    .take()
                    .unwrap_or_else(|| self.inner.counts());
                let delta = self.inner.counts().saturating_sub(baseline);
                emit(Event::RoundCompleted {
                    round,
                    groups,
                    survivors,
                    comparisons_by_class: delta,
                });
                observe(metric_names::ROUND_SURVIVORS, &[], survivors);
                for (class, comparisons) in [
                    (WorkerClass::Naive, delta.naive),
                    (WorkerClass::Expert, delta.expert),
                ] {
                    observe(
                        metric_names::ROUND_COMPARISONS,
                        &[("class", class_label(class))],
                        comparisons,
                    );
                }
            }
            // Faults are emitted at their source (the platform layer feeds
            // `FaultObserved`/`RetryScheduled`/`DeadLettered` directly), so
            // reacting here would double-count them in a stacked oracle.
            TraceEvent::Fault { .. } | TraceEvent::RoundEnd(_) => {}
        }
        self.inner.observe(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SampleValue;
    use crate::recorder::{install_recorder, Recorder};
    use crowd_core::algorithms::{filter_candidates, FilterConfig};
    use crowd_core::element::Instance;
    use crowd_core::oracle::PerfectOracle;
    use std::sync::Arc;

    fn instance(n: usize) -> Instance {
        Instance::new((0..n).map(|i| ((i * 37) % n) as f64).collect())
    }

    #[test]
    fn round_completed_events_reconcile_with_comparison_counts() {
        let inst = instance(64);
        let rec = Arc::new(Recorder::new());
        let total = {
            let _g = install_recorder(rec.clone());
            let mut oracle = ObservedOracle::new(PerfectOracle::new(inst.clone()));
            let outcome = filter_candidates(&mut oracle, &inst.ids(), &FilterConfig::new(4));
            assert!(!outcome.survivors.is_empty());
            oracle.counts()
        };
        let mut by_rounds = ComparisonCounts::zero();
        let mut rounds_seen = 0;
        for event in rec.log().events() {
            if let Event::RoundCompleted {
                comparisons_by_class,
                ..
            } = event
            {
                by_rounds += *comparisons_by_class;
                rounds_seen += 1;
            }
        }
        assert!(rounds_seen > 0, "filter must complete at least one round");
        // Every comparison the filter performed is attributed to exactly
        // one round: the per-round deltas sum back to the oracle's tally.
        assert_eq!(by_rounds, total);
    }

    #[test]
    fn phase_transitions_bracket_the_run() {
        use crowd_core::algorithms::{expert_max_find, ExpertMaxConfig};
        use crowd_core::trace::TracePhase;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let inst = instance(64);
        let rec = Arc::new(Recorder::new());
        {
            let _g = install_recorder(rec.clone());
            let mut oracle = ObservedOracle::new(PerfectOracle::new(inst.clone()));
            let mut rng = StdRng::seed_from_u64(3);
            let _ = expert_max_find(&mut oracle, &inst.ids(), &ExpertMaxConfig::new(4), &mut rng);
        }
        let log: Vec<Event> = rec.log().events().cloned().collect();
        assert_eq!(
            log.first(),
            Some(&Event::PhaseTransition {
                phase: TracePhase::Filter,
                entered: true
            })
        );
        assert_eq!(
            log.last(),
            Some(&Event::PhaseTransition {
                phase: TracePhase::Expert,
                entered: false
            })
        );
        // The filter phase closes before the expert phase opens.
        let close = log
            .iter()
            .position(|e| {
                *e == Event::PhaseTransition {
                    phase: TracePhase::Filter,
                    entered: false,
                }
            })
            .expect("filter close present");
        let open = log
            .iter()
            .position(|e| {
                *e == Event::PhaseTransition {
                    phase: TracePhase::Expert,
                    entered: true,
                }
            })
            .expect("expert open present");
        assert!(close < open);
    }

    #[test]
    fn round_histograms_are_recorded() {
        let inst = instance(32);
        let rec = Arc::new(Recorder::new());
        {
            let _g = install_recorder(rec.clone());
            let mut oracle = ObservedOracle::new(PerfectOracle::new(inst.clone()));
            let _ = filter_candidates(&mut oracle, &inst.ids(), &FilterConfig::new(4));
        }
        let snap = rec.metrics().snapshot();
        let survivors = snap
            .iter()
            .find(|s| s.name == metric_names::ROUND_SURVIVORS)
            .expect("survivor histogram present");
        let SampleValue::Histogram { count, .. } = survivors.value else {
            panic!("histogram expected");
        };
        assert!(count > 0);
        assert!(snap
            .iter()
            .any(|s| s.name == metric_names::ROUND_COMPARISONS));
    }

    #[test]
    fn no_recorder_installed_is_a_cheap_no_op() {
        let inst = instance(16);
        let mut oracle = ObservedOracle::new(PerfectOracle::new(inst.clone()));
        let outcome = filter_candidates(&mut oracle, &inst.ids(), &FilterConfig::new(4));
        assert!(!outcome.survivors.is_empty());
    }
}
