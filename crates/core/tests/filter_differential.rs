//! Differential test of the arena-based Phase-1 filter.
//!
//! [`filter_candidates`] was rewritten from a clone-heavy
//! `Tournament`/`HashMap` implementation to an index arena with flat win
//! tallies. The pre-refactor implementation is retained *verbatim* below
//! as [`reference_filter_candidates`], and the property test drives both
//! through [`assert_oracles_equal`] — the reusable differential harness
//! this suite was promoted into: for random instances, thresholds, tie
//! policies and seeds — with and without the Appendix A global-loss
//! optimization — the rewrite must issue the **same comparison sequence**
//! (same pairs, same order, same argument order, same answers) and
//! produce the same survivor set, round count, size trace and comparison
//! tally.

use crowd_core::algorithms::{filter_candidates, FilterConfig, FilterOutcome};
use crowd_core::element::{ElementId, Instance};
use crowd_core::equiv::assert_oracles_equal;
use crowd_core::model::{ExpertModel, TiePolicy, WorkerClass};
use crowd_core::oracle::{ComparisonOracle, PerfectOracle, SimulatedOracle};
use crowd_core::tournament::Tournament;
use crowd_core::trace::TraceEvent;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};

/// The pre-refactor Algorithm 2, verbatim (commit `15e561a`), as the
/// reference the arena rewrite is diffed against.
fn reference_filter_candidates<O: ComparisonOracle>(
    oracle: &mut O,
    elements: &[ElementId],
    config: &FilterConfig,
) -> FilterOutcome {
    assert!(
        config.un >= 1,
        "un(n) >= 1: the maximum is indistinguishable from itself"
    );

    let start = oracle.counts();
    let un = config.un;
    let g = 4 * un;
    let mut survivors: Vec<ElementId> = elements.to_vec();
    let mut sizes = vec![survivors.len()];
    let mut rounds = 0usize;

    // Appendix A: cumulative distinct losses per element across rounds.
    let mut losses: HashMap<ElementId, HashSet<ElementId>> = HashMap::new();

    while survivors.len() >= 2 * un {
        oracle.observe(TraceEvent::RoundStart(rounds as u32));
        let mut next: Vec<ElementId> = Vec::with_capacity(survivors.len() / 2 + un);
        let mut champions: Vec<ElementId> = Vec::new();
        let chunks: Vec<&[ElementId]> = survivors.chunks(g).collect();
        let last = chunks.len() - 1;

        for (ci, chunk) in chunks.iter().enumerate() {
            let is_last = ci == last;
            if is_last && chunk.len() <= un {
                next.extend_from_slice(chunk);
                champions.extend_from_slice(chunk);
                continue;
            }
            let t = Tournament::all_play_all(oracle, WorkerClass::Naive, chunk);
            let threshold = (chunk.len() - un) as u32;
            let winners = t.winners_with_at_least(threshold);
            if config.track_global_losses {
                record_losses(&t, &mut losses);
            }
            champions.extend(t.champion());
            next.extend(winners);
        }

        if config.track_global_losses {
            next.retain(|e| losses.get(e).map_or(0, HashSet::len) <= un);
        }

        if next.is_empty() {
            next = champions;
        }

        assert!(
            next.len() < survivors.len(),
            "filter round failed to shrink the survivor set (Lemma 2 violated)"
        );
        survivors = next;
        sizes.push(survivors.len());
        oracle.observe(TraceEvent::RoundEnd(rounds as u32));
        rounds += 1;
    }

    FilterOutcome {
        survivors,
        rounds,
        sizes,
        comparisons: oracle.counts() - start,
    }
}

/// Pre-refactor loss recording, verbatim.
fn record_losses(t: &Tournament, losses: &mut HashMap<ElementId, HashSet<ElementId>>) {
    for &(winner, loser) in t.results() {
        losses.entry(loser).or_default().insert(winner);
    }
}

/// Runs both implementations over identically built oracles and asserts
/// full observational equality — judgment-for-judgment and
/// field-for-field — through the shared [`assert_oracles_equal`] harness.
fn assert_identical<O, F>(make_oracle: F, inst: &Instance, cfg: &FilterConfig)
where
    O: ComparisonOracle,
    F: Fn() -> O,
{
    assert_oracles_equal(
        make_oracle(),
        make_oracle(),
        |o| filter_candidates(o, &inst.ids(), cfg),
        |o| reference_filter_candidates(o, &inst.ids(), cfg),
    );
}

fn tie_policies() -> impl Strategy<Value = TiePolicy> {
    prop_oneof![
        Just(TiePolicy::UniformRandom),
        Just(TiePolicy::Persistent),
        Just(TiePolicy::FavorLower),
        Just(TiePolicy::FavorSmallerId),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: same queries, same order, same outcome — for
    /// random instances, un values, error thresholds, tie policies and
    /// seeds, with and without global-loss tracking.
    #[test]
    fn arena_filter_is_comparison_identical_to_the_reference(
        values in prop::collection::vec(0.0f64..1000.0, 4..=160),
        un in 1usize..6,
        delta_frac in 0.0f64..0.25,
        policy in tie_policies(),
        seed in any::<u64>(),
        track in any::<bool>(),
    ) {
        let inst = Instance::new(values);
        let mut cfg = FilterConfig::new(un);
        if track {
            cfg = cfg.with_global_losses();
        }
        let delta_n = delta_frac * 1000.0;
        let model = ExpertModel::exact(delta_n, delta_n / 2.0, policy);
        assert_identical(
            || SimulatedOracle::new(inst.clone(), model.clone(), StdRng::seed_from_u64(seed)),
            &inst,
            &cfg,
        );
    }
}

/// The same identity under a deterministic oracle at a size large enough
/// for several rounds and a remainder group.
#[test]
fn identical_under_a_perfect_oracle_with_remainder_groups() {
    for (n, un) in [(500usize, 3usize), (203, 5), (64, 2)] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let inst = Instance::new(
            (0..n)
                .map(|_| rand::Rng::gen_range(&mut rng, 0.0..1000.0))
                .collect(),
        );
        for cfg in [
            FilterConfig::new(un),
            FilterConfig::new(un).with_global_losses(),
        ] {
            assert_identical(|| PerfectOracle::new(inst.clone()), &inst, &cfg);
        }
    }
}
