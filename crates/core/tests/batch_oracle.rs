//! The batch oracle contract: [`ComparisonOracle::compare_batch`] must be
//! observationally identical to the scalar `compare` loop — same answers,
//! same RNG consumption, same tallies — through every oracle and
//! decorator, and under any split of the comparison list into batches.
//!
//! All proofs go through the [`crowd_core::equiv`] harness.

use crowd_core::element::{ElementId, Instance};
use crowd_core::equiv::{assert_oracles_equal, drive_batched, drive_scalar};
use crowd_core::model::{ExpertModel, TiePolicy, WorkerClass};
use crowd_core::oracle::{
    ComparisonOracle, FuseOracle, MemoOracle, OracleError, PerfectOracle, SimulatedOracle,
    TryFnOracle,
};
use crowd_core::trace::{install_sink, InstrumentedOracle, TallySink};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn instance(n: usize) -> Instance {
    Instance::new((0..n).map(|i| ((i * 37) % n) as f64).collect())
}

fn simulated(inst: &Instance, seed: u64) -> SimulatedOracle<StdRng> {
    // δn wide enough that ties occur, so the RNG is actually consumed.
    let model = ExpertModel::exact(8.0, 1.0, TiePolicy::UniformRandom);
    SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed))
}

/// `(a, b)` index pairs with `a != b`, drawn over `n` elements — each
/// pair decoded from one raw draw (the shim has no tuple strategies).
fn pairs_strategy(n: u32) -> impl Strategy<Value = Vec<(ElementId, ElementId)>> {
    prop::collection::vec(0u32..n * (n - 1), 1..80).prop_map(move |raw| {
        raw.into_iter()
            .map(|v| {
                let a = v % n;
                let b = (v / n) % (n - 1);
                let b = if b >= a { b + 1 } else { b };
                (ElementId(a), ElementId(b))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The unsplit batch equals the scalar loop on a same-seeded
    /// stochastic oracle: identical winners, tallies and RNG stream.
    #[test]
    fn one_batch_equals_the_scalar_loop(
        pairs in pairs_strategy(16u32),
        seed in any::<u64>(),
        class_bit in any::<bool>(),
    ) {
        let inst = instance(16);
        let class = if class_bit { WorkerClass::Expert } else { WorkerClass::Naive };
        assert_oracles_equal(
            simulated(&inst, seed),
            simulated(&inst, seed),
            |o| drive_scalar(o, class, &pairs),
            |o| drive_batched(o, class, &pairs, &[]),
        );
    }

    /// The equivalence holds under every tie policy and with residual
    /// error ε > 0 — i.e. on both sides of `compare_many`'s branchless
    /// fast path (which only covers ε = 0 fair-coin ties) and through the
    /// `tie_break` fallback, including the stateful Persistent policy.
    #[test]
    fn one_batch_equals_the_scalar_loop_under_every_tie_policy(
        pairs in pairs_strategy(16u32),
        seed in any::<u64>(),
        policy_raw in 0u8..5,
        noisy in any::<bool>(),
    ) {
        let policy = match policy_raw {
            0 => TiePolicy::UniformRandom,
            1 => TiePolicy::Persistent,
            2 => TiePolicy::FavorLower,
            3 => TiePolicy::FavorHigher,
            _ => TiePolicy::FavorSmallerId,
        };
        let epsilon = if noisy { 0.25 } else { 0.0 };
        let inst = instance(16);
        let oracle = || {
            let model = ExpertModel::new(8.0, epsilon, 4.0, epsilon, policy);
            SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed))
        };
        assert_oracles_equal(
            oracle(),
            oracle(),
            |o| drive_scalar(o, WorkerClass::Naive, &pairs),
            |o| drive_batched(o, WorkerClass::Naive, &pairs, &[]),
        );
    }

    /// Any split of the comparison list into consecutive batches equals
    /// the unsplit sequence — batching is associative.
    #[test]
    fn split_batches_equal_the_unsplit_sequence(
        pairs in pairs_strategy(16u32),
        segments in prop::collection::vec(0usize..12, 0..8),
        seed in any::<u64>(),
    ) {
        let inst = instance(16);
        assert_oracles_equal(
            simulated(&inst, seed),
            simulated(&inst, seed),
            |o| drive_batched(o, WorkerClass::Naive, &pairs, &[]),
            |o| drive_batched(o, WorkerClass::Naive, &pairs, &segments),
        );
    }

    /// The contract holds through a trace → fault decorator stack: the
    /// batch forwards reach the simulated oracle intact.
    #[test]
    fn batches_forward_through_decorator_stacks(
        pairs in pairs_strategy(12u32),
        segments in prop::collection::vec(1usize..9, 0..6),
        seed in any::<u64>(),
    ) {
        let inst = instance(12);
        let stack = |seed| InstrumentedOracle::new(FuseOracle::new(simulated(&inst, seed)));
        assert_oracles_equal(
            stack(seed),
            stack(seed),
            |o| drive_scalar(o, WorkerClass::Naive, &pairs),
            |o| drive_batched(o, WorkerClass::Naive, &pairs, &segments),
        );
    }
}

#[test]
fn batch_tallies_feed_sinks_once_per_batch_with_the_same_totals() {
    let inst = instance(10);
    let pairs: Vec<(ElementId, ElementId)> =
        (1..10u32).map(|j| (ElementId(0), ElementId(j))).collect();
    let sink = Arc::new(TallySink::new());
    {
        let _g = install_sink(sink.clone());
        let mut o = PerfectOracle::new(inst.clone());
        let mut winners = Vec::new();
        o.compare_batch(WorkerClass::Naive, &pairs, &mut winners);
        o.compare_batch(WorkerClass::Expert, &pairs[..3], &mut winners);
        assert_eq!(winners.len(), pairs.len() + 3);
    }
    assert_eq!(sink.counts().naive, pairs.len() as u64);
    assert_eq!(sink.counts().expert, 3);
}

#[test]
fn memo_decorator_still_answers_within_batch_repeats_for_free() {
    // MemoOracle deliberately keeps the default per-pair batch loop: a
    // repeat *inside* one batch must hit the memo, which a forwarded
    // batch could not guarantee.
    let inst = instance(6);
    let mut o = MemoOracle::new(PerfectOracle::new(inst));
    let pairs = [
        (ElementId(0), ElementId(1)),
        (ElementId(1), ElementId(0)),
        (ElementId(0), ElementId(1)),
    ];
    let mut winners = Vec::new();
    o.compare_batch(WorkerClass::Naive, &pairs, &mut winners);
    assert_eq!(winners, vec![ElementId(1); 3]);
    assert_eq!(o.counts().naive, 1, "repeats answered from the memo");
    assert_eq!(o.hits(), 2);
}

/// A fallible oracle that answers `budget` comparisons, then fails.
fn flaky(
    budget: u64,
) -> TryFnOracle<impl FnMut(WorkerClass, ElementId, ElementId) -> Result<ElementId, OracleError>> {
    let mut remaining = budget;
    TryFnOracle::new(move |class, k, j| {
        if remaining == 0 {
            return Err(OracleError::WorkforceDepleted { class });
        }
        remaining -= 1;
        Ok(if k > j { k } else { j })
    })
}

#[test]
fn fuse_batch_blows_mid_batch_and_fabricates_the_remainder_like_scalar() {
    let pairs: Vec<(ElementId, ElementId)> = (0..6u32)
        .map(|i| (ElementId(2 * i), ElementId(2 * i + 1)))
        .collect();
    // The inner oracle answers 4 of the 6 pairs, then the pool dies. The
    // per-pair fallible default means the batch fuse sees exactly the
    // scalar fault point, so the two runs are observationally equal.
    let (_, winners) = assert_oracles_equal(
        FuseOracle::new(flaky(4)),
        FuseOracle::new(flaky(4)),
        |o| drive_scalar(o, WorkerClass::Naive, &pairs),
        |o| drive_batched(o, WorkerClass::Naive, &pairs, &[3]),
    );
    assert_eq!(winners.len(), pairs.len());
    // Fabricated tail: fresh pairs go to the smaller id.
    assert_eq!(winners[4], ElementId(8));
    assert_eq!(winners[5], ElementId(10));
    let mut fuse = FuseOracle::new(flaky(4));
    let mut out = Vec::new();
    fuse.compare_batch(WorkerClass::Naive, &pairs, &mut out);
    assert!(fuse.blown());
    assert_eq!(
        fuse.take_error(),
        Some(OracleError::WorkforceDepleted {
            class: WorkerClass::Naive
        })
    );
}

#[test]
fn try_compare_batch_stops_at_the_first_error_with_partial_winners() {
    let pairs: Vec<(ElementId, ElementId)> = (0..5u32)
        .map(|i| (ElementId(i), ElementId(i + 5)))
        .collect();
    let mut o = flaky(2);
    let mut winners = Vec::new();
    let err = o
        .try_compare_batch(WorkerClass::Naive, &pairs, &mut winners)
        .unwrap_err();
    assert_eq!(
        err,
        OracleError::WorkforceDepleted {
            class: WorkerClass::Naive
        }
    );
    assert_eq!(winners, vec![ElementId(5), ElementId(6)]);
    assert_eq!(o.counts().naive, 2, "only answered comparisons are billed");
}

#[test]
fn empty_batches_are_free() {
    let inst = instance(4);
    let mut o = simulated(&inst, 1);
    let mut winners = Vec::new();
    o.compare_batch(WorkerClass::Naive, &[], &mut winners);
    o.try_compare_batch(WorkerClass::Expert, &[], &mut winners)
        .unwrap();
    assert!(winners.is_empty());
    assert_eq!(o.counts().total(), 0);
}
