//! Property-based tests of the core invariants.
//!
//! These check the paper's combinatorial guarantees over *randomized*
//! instances, thresholds, and worker behaviours — including fully
//! adversarial answer patterns, since Lemmas 2 and 3 are counting
//! arguments that must hold regardless of the error model.

use crowd_core::algorithms::{
    expert_max_find, filter_candidates, majority_compare, two_max_find, ExpertMaxConfig,
    FilterConfig, Phase2, RandomizedConfig,
};
use crowd_core::bounds;
use crowd_core::element::{ElementId, Instance};
use crowd_core::model::{ExpertModel, TiePolicy, WorkerClass};
use crowd_core::oracle::{ComparisonOracle, FnOracle, MemoOracle, SimulatedOracle};
use crowd_core::stats::RunningStats;
use crowd_core::tournament::Tournament;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: an instance of 2..=120 elements with values in [0, 1000].
fn instances() -> impl Strategy<Value = Instance> {
    prop::collection::vec(0.0f64..1000.0, 2..=120).prop_map(Instance::new)
}

/// Strategy: one of the five tie policies.
fn tie_policies() -> impl Strategy<Value = TiePolicy> {
    prop_oneof![
        Just(TiePolicy::UniformRandom),
        Just(TiePolicy::Persistent),
        Just(TiePolicy::FavorLower),
        Just(TiePolicy::FavorHigher),
        Just(TiePolicy::FavorSmallerId),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ranks are a permutation-consistent labelling: rank 1 exists, ranks
    /// are within [1, n], and a strictly larger value never has a larger
    /// rank number.
    #[test]
    fn ranks_are_consistent(inst in instances()) {
        let ids = inst.ids();
        prop_assert!(ids.iter().any(|&e| inst.rank(e) == 1));
        for &e in &ids {
            let r = inst.rank(e);
            prop_assert!(r >= 1 && r <= inst.n());
        }
        for &a in &ids {
            for &b in &ids {
                if inst.value(a) > inst.value(b) {
                    prop_assert!(inst.rank(a) <= inst.rank(b));
                }
            }
        }
    }

    /// `indistinguishable_from_max` is monotone in δ and includes the max.
    #[test]
    fn un_is_monotone_in_delta(inst in instances(), d1 in 0.0f64..500.0, d2 in 0.0f64..500.0) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(inst.indistinguishable_from_max(lo) >= 1);
        prop_assert!(inst.indistinguishable_from_max(lo) <= inst.indistinguishable_from_max(hi));
    }

    /// Lemma 2 holds against a *completely arbitrary* deterministic oracle:
    /// at most 2r − 1 elements can win at least |A| − r games.
    #[test]
    fn lemma_2_is_model_independent(n in 2usize..60, flip in any::<u64>()) {
        let ids: Vec<ElementId> = (0..n as u32).map(ElementId).collect();
        let mut o = FnOracle::new(move |_, k: ElementId, j: ElementId| {
            // An arbitrary but deterministic pattern derived from `flip`.
            if (u64::from(k.0) ^ u64::from(j.0) ^ flip) % 3 == 0 { k } else { j }
        });
        let t = Tournament::all_play_all(&mut o, WorkerClass::Naive, &ids);
        for r in 1..=(n as u32) {
            let winners = t.winners_with_at_least(n as u32 - r);
            prop_assert!(
                (winners.len() as u32) < 2 * r,
                "r = {}: {} winners", r, winners.len()
            );
        }
    }

    /// Lemma 3, full strength: for any instance, any tie policy, and the
    /// true un(n), the filter keeps the maximum, returns at most
    /// 2·un(n) − 1 candidates (when it filtered at all), and stays within
    /// 4·n·un(n) naïve comparisons.
    #[test]
    fn filter_guarantees(inst in instances(), tie in tie_policies(), delta in 0.1f64..400.0, seed in any::<u64>()) {
        let un = inst.indistinguishable_from_max(delta);
        prop_assume!(un < inst.n()); // un = n makes phase 1 vacuous
        let model = ExpertModel::exact(delta, 0.0, tie);
        let mut oracle = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed));
        let out = filter_candidates(&mut oracle, &inst.ids(), &FilterConfig::new(un));
        prop_assert!(out.survivors.contains(&inst.max_element()), "maximum evicted");
        if inst.n() >= 2 * un {
            prop_assert!(out.survivors.len() < 2 * un);
        }
        prop_assert!(out.comparisons.naive <= bounds::phase1_upper_bound(inst.n(), un));
        prop_assert_eq!(out.comparisons.expert, 0);
    }

    /// 2-MaxFind returns an element within 2δ of the maximum under any tie
    /// policy, within the Theorem 1 comparison budget.
    #[test]
    fn two_maxfind_guarantees(inst in instances(), tie in tie_policies(), delta in 0.1f64..400.0, seed in any::<u64>()) {
        let model = ExpertModel::exact(delta, delta, tie);
        let mut oracle = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed));
        let out = two_max_find(&mut oracle, WorkerClass::Expert, &inst.ids());
        let gap = inst.max_value() - inst.value(out.winner);
        prop_assert!(gap <= 2.0 * delta + 1e-9, "gap {} > 2δ = {}", gap, 2.0 * delta);
        prop_assert!(out.comparisons.expert <= bounds::two_maxfind_upper_bound(inst.n()));
    }

    /// The full two-phase algorithm returns within 2δe of the maximum and
    /// splits its budget correctly, under any tie policy.
    #[test]
    fn expert_max_guarantees(
        inst in instances(),
        tie in tie_policies(),
        delta_n in 10.0f64..400.0,
        ratio in 2.0f64..20.0,
        seed in any::<u64>(),
    ) {
        let delta_e = delta_n / ratio;
        let un = inst.indistinguishable_from_max(delta_n);
        prop_assume!(un < inst.n());
        let model = ExpertModel::exact(delta_n, delta_e, tie);
        let mut oracle = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        let out = expert_max_find(&mut oracle, &inst.ids(), &ExpertMaxConfig::new(un), &mut rng);
        let gap = inst.max_value() - inst.value(out.winner);
        prop_assert!(gap <= 2.0 * delta_e + 1e-9, "gap {} > 2δe = {}", gap, 2.0 * delta_e);
        prop_assert_eq!(out.phase1.comparisons.expert, 0);
        prop_assert_eq!(out.phase2_comparisons.naive, 0);
        prop_assert_eq!(
            out.total_comparisons,
            out.phase1.comparisons + out.phase2_comparisons
        );
    }

    /// The randomized phase-2 option is structurally sound under any
    /// parameters: the winner comes from the phase-1 candidate set and the
    /// class budget split is respected. (Its `3δe` accuracy guarantee is
    /// only whp, so it is checked statistically in the unit tests, not
    /// asserted per-case here.)
    #[test]
    fn randomized_phase2_structure(inst in instances(), delta in 0.1f64..300.0, seed in any::<u64>()) {
        let un = inst.indistinguishable_from_max(delta);
        prop_assume!(un < inst.n());
        let model = ExpertModel::exact(delta, delta / 2.0, TiePolicy::UniformRandom);
        let mut oracle = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let cfg = ExpertMaxConfig::new(un)
            .with_phase2(Phase2::Randomized(RandomizedConfig::default().with_group_size(6)));
        let out = expert_max_find(&mut oracle, &inst.ids(), &cfg, &mut rng);
        prop_assert!(out.candidates.contains(&out.winner), "winner must be a candidate");
        prop_assert_eq!(out.phase2_comparisons.naive, 0);
        prop_assert_eq!(out.phase1.comparisons.expert, 0);
    }

    /// Memoization never changes who wins, only how much is paid: wrapping
    /// an oracle in MemoOracle yields a subset of the cost.
    #[test]
    fn memoization_only_saves_money(inst in instances(), seed in any::<u64>()) {
        let model = ExpertModel::exact(50.0, 5.0, TiePolicy::Persistent);
        let plain = {
            let mut oracle = SimulatedOracle::new(inst.clone(), model.clone(), StdRng::seed_from_u64(seed));
            two_max_find(&mut oracle, WorkerClass::Naive, &inst.ids());
            oracle.counts()
        };
        let memoized = {
            let inner = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed));
            let mut oracle = MemoOracle::new(inner);
            two_max_find(&mut oracle, WorkerClass::Naive, &inst.ids());
            oracle.counts()
        };
        prop_assert!(memoized.naive <= plain.naive);
    }

    /// Majority voting with an odd vote count always returns one of the two
    /// elements, and with a perfect comparator returns the truth.
    #[test]
    fn majority_is_closed_and_faithful(v1 in 0.0f64..100.0, v2 in 0.0f64..100.0, votes in 0u32..5, seed in any::<u64>()) {
        prop_assume!(v1 != v2);
        let inst = Instance::new(vec![v1, v2]);
        let truth = inst.max_element();
        let model = ExpertModel::exact(0.0, 0.0, TiePolicy::UniformRandom);
        let mut oracle = SimulatedOracle::new(inst, model, StdRng::seed_from_u64(seed));
        let winner = majority_compare(&mut oracle, WorkerClass::Naive, ElementId(0), ElementId(1), 2 * votes + 1);
        prop_assert_eq!(winner, truth);
    }

    /// The multi-class cascade keeps the maximum through every stage and
    /// ends within 2·δ_last of it, for random ladders and instances.
    #[test]
    fn cascade_guarantee(inst in instances(), steps in 2usize..4, seed in any::<u64>()) {
        use crowd_core::multiclass::{cascade_max_find, ClassSpec, ExpertiseLadder, LadderOracle};
        // A geometric ladder of `steps` classes.
        let deltas: Vec<f64> = (0..steps).map(|i| 200.0 / 4f64.powi(i as i32)).collect();
        let ladder = ExpertiseLadder::new(
            deltas.iter().enumerate().map(|(i, &d)| ClassSpec::new(d, 0.0, 10f64.powi(i as i32))).collect(),
        );
        let us: Vec<usize> = deltas[..steps - 1]
            .iter()
            .map(|&d| inst.indistinguishable_from_max(d))
            .collect();
        prop_assume!(us.iter().all(|&u| u < inst.n()));
        let mut oracle = LadderOracle::new(inst.clone(), &ladder, TiePolicy::UniformRandom, StdRng::seed_from_u64(seed));
        let out = cascade_max_find(&mut oracle, &ladder, &inst.ids(), &us);
        let gap = inst.max_value() - inst.value(out.winner);
        prop_assert!(gap <= 2.0 * deltas[steps - 1] + 1e-9, "gap {} > 2·δ_last", gap);
        prop_assert_eq!(out.per_class.len(), steps);
    }

    /// Top-k returns exactly min(k, n) distinct elements of the input, and
    /// with the exact parameters every slot is within 2δe of the true
    /// element of that rank.
    #[test]
    fn top_k_structure_and_accuracy(
        inst in instances(),
        k in 1usize..8,
        delta_n in 10.0f64..300.0,
        seed in any::<u64>(),
    ) {
        use crowd_core::algorithms::{top_k_find, TopKConfig};
        use std::collections::HashSet;
        let un = inst.indistinguishable_from_max(delta_n);
        prop_assume!(un + k < inst.n());
        let delta_e = delta_n / 10.0;
        let model = ExpertModel::exact(delta_n, delta_e, TiePolicy::UniformRandom);
        let mut oracle = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed));
        let out = top_k_find(&mut oracle, &inst.ids(), &TopKConfig::new(k, un));
        prop_assert_eq!(out.top.len(), k.min(inst.n()));
        let distinct: HashSet<_> = out.top.iter().collect();
        prop_assert_eq!(distinct.len(), out.top.len(), "top-k must be distinct");
        for &e in &out.top {
            prop_assert!(inst.ids().contains(&e));
        }
    }

    /// Near-sort always returns a permutation, and with a perfect oracle
    /// the permutation is exactly the rank order (up to value ties).
    #[test]
    fn near_sort_is_a_permutation(inst in instances(), seed in any::<u64>()) {
        use crowd_core::algorithms::{max_displacement, near_sort};
        use crowd_core::oracle::PerfectOracle;
        use std::collections::HashSet;
        let _ = seed;
        let mut oracle = PerfectOracle::new(inst.clone());
        let out = near_sort(&mut oracle, WorkerClass::Naive, &inst.ids());
        prop_assert_eq!(out.order.len(), inst.n());
        let distinct: HashSet<_> = out.order.iter().collect();
        prop_assert_eq!(distinct.len(), inst.n());
        prop_assert_eq!(max_displacement(&inst, &out.order), 0);
    }

    /// The budget planner never exceeds the budget, always picks an odd
    /// depth, and covers as many questions as the depth affords.
    #[test]
    fn vote_plans_are_feasible(budget in 1u64..100_000, questions in 1u64..5_000, p in 0.0f64..0.49) {
        use crowd_core::budget::plan_votes;
        let plan = plan_votes(budget, questions, p).expect("p < 1/2 is plannable");
        prop_assert_eq!(plan.votes_per_question % 2, 1);
        prop_assert!(u64::from(plan.votes_per_question) * plan.questions_covered <= budget
            || plan.questions_covered == 0);
        prop_assert!(plan.questions_covered <= questions);
        prop_assert!((0.0..=1.0).contains(&plan.per_question_error_bound));
    }

    /// RunningStats matches a direct two-pass computation.
    #[test]
    fn running_stats_matches_naive_computation(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = RunningStats::collect(xs.iter().copied());
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        if xs.len() > 1 {
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
            prop_assert!((s.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        }
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    /// Cost is linear: C(a + b) = C(a) + C(b) and scales with prices.
    #[test]
    fn cost_model_is_linear(n1 in 0u64..1_000_000, e1 in 0u64..10_000, n2 in 0u64..1_000_000, e2 in 0u64..10_000, ratio in 1.0f64..100.0) {
        use crowd_core::cost::CostModel;
        use crowd_core::oracle::ComparisonCounts;
        let m = CostModel::with_ratio(ratio);
        let a = ComparisonCounts { naive: n1, expert: e1 };
        let b = ComparisonCounts { naive: n2, expert: e2 };
        prop_assert!((m.cost(a + b) - (m.cost(a) + m.cost(b))).abs() < 1e-6);
        prop_assert!((m.cost(a) - (n1 as f64 + ratio * e1 as f64)).abs() < 1e-6);
    }
}
