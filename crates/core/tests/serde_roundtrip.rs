//! Serde round-trip tests for the public data types: experiment configs
//! and outcomes are persisted as JSON by downstream tooling, so every
//! serializable type must survive a round trip unchanged.

use crowd_core::algorithms::{ExpertMaxConfig, FilterConfig, Phase2, RandomizedConfig};
use crowd_core::cost::CostModel;
use crowd_core::element::{ElementId, Instance};
use crowd_core::estimation::{EstimationConfig, TrainingSet, UnEstimate};
use crowd_core::model::{TiePolicy, WorkerClass};
use crowd_core::multiclass::{ClassSpec, ExpertiseLadder};
use crowd_core::oracle::ComparisonCounts;
use crowd_core::stats::RunningStats;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt::Debug;

fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + Debug>(value: &T) {
    let json = serde_json::to_string(value).expect("serialize");
    let back: T = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(&back, value, "round trip changed the value");
}

#[test]
fn element_types_roundtrip() {
    roundtrip(&ElementId(42));
    roundtrip(&Instance::new(vec![1.0, 2.5, -3.0]));
}

#[test]
fn model_types_roundtrip() {
    roundtrip(&WorkerClass::Naive);
    roundtrip(&WorkerClass::Expert);
    for tie in [
        TiePolicy::UniformRandom,
        TiePolicy::Persistent,
        TiePolicy::FavorLower,
        TiePolicy::FavorHigher,
        TiePolicy::FavorSmallerId,
    ] {
        roundtrip(&tie);
    }
}

#[test]
fn config_types_roundtrip() {
    roundtrip(&FilterConfig::new(7).with_global_losses());
    roundtrip(&RandomizedConfig::new(2).with_group_size(16));
    roundtrip(&ExpertMaxConfig::new(5).with_phase2(Phase2::AllPlayAll));
    roundtrip(&ExpertMaxConfig::new(5).with_phase2(Phase2::Randomized(RandomizedConfig::new(1))));
    roundtrip(&EstimationConfig::new(0.4, 2.0));
    roundtrip(&CostModel::with_ratio(20.0));
}

#[test]
fn outcome_types_roundtrip() {
    roundtrip(&ComparisonCounts {
        naive: 123,
        expert: 4,
    });
    roundtrip(&UnEstimate {
        un: 9,
        errors: 3,
        comparisons: 49,
    });
    let stats = RunningStats::collect([1.0, 2.0, 3.0]);
    roundtrip(&stats);
}

#[test]
fn training_set_roundtrips_with_max() {
    let ts = TrainingSet::new(Instance::new(vec![5.0, 9.0, 1.0]));
    let json = serde_json::to_string(&ts).unwrap();
    let back: TrainingSet = serde_json::from_str(&json).unwrap();
    assert_eq!(back.max(), ts.max());
    assert_eq!(back.instance(), ts.instance());
}

#[test]
fn multiclass_types_roundtrip() {
    roundtrip(&ClassSpec::new(10.0, 0.1, 5.0));
    roundtrip(&ExpertiseLadder::two_class(20.0, 2.0, 1.0, 50.0));
}
