//! The monetary cost model (paper Section 3.4).
//!
//! Workers are paid per comparison: `cn` for naïve workers and `ce ≫ cn`
//! for experts. An algorithm performing `xn(n)` naïve and `xe(n)` expert
//! comparisons costs `C(n) = xe(n)·ce + xn(n)·cn`. The paper's simulations
//! normalize `cn = 1` and sweep `ce ∈ {10, 20, 50}` (Figures 5, 7, 9, 10),
//! observing that the two-phase algorithm wins once `ce/cn ≳ 10`.

use crate::model::WorkerClass;
use crate::oracle::ComparisonCounts;
use serde::{Deserialize, Serialize};

/// Per-comparison prices for the two worker classes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Price of one naïve comparison (`cn`).
    pub naive: f64,
    /// Price of one expert comparison (`ce`).
    pub expert: f64,
}

impl CostModel {
    /// Builds a cost model.
    ///
    /// # Panics
    ///
    /// Panics if either price is negative or non-finite. `expert < naive`
    /// is permitted (the model does not require it), but the paper's regime
    /// of interest is `ce ≫ cn`.
    pub fn new(naive: f64, expert: f64) -> Self {
        assert!(
            naive.is_finite() && naive >= 0.0,
            "cn must be a finite non-negative price"
        );
        assert!(
            expert.is_finite() && expert >= 0.0,
            "ce must be a finite non-negative price"
        );
        CostModel { naive, expert }
    }

    /// The paper's normalized settings: `cn = 1`, `ce = ratio`.
    pub fn with_ratio(ratio: f64) -> Self {
        Self::new(1.0, ratio)
    }

    /// The three expert prices swept by the paper's cost figures
    /// (`ce ∈ {10, 20, 50}`, `cn = 1`).
    pub fn paper_settings() -> [CostModel; 3] {
        [
            Self::with_ratio(10.0),
            Self::with_ratio(20.0),
            Self::with_ratio(50.0),
        ]
    }

    /// Price of one comparison by `class`.
    pub fn price(&self, class: WorkerClass) -> f64 {
        match class {
            WorkerClass::Naive => self.naive,
            WorkerClass::Expert => self.expert,
        }
    }

    /// The price ratio `ce / cn` (infinite if `cn = 0`).
    pub fn ratio(&self) -> f64 {
        self.expert / self.naive
    }

    /// Total monetary cost `C(n) = xe·ce + xn·cn` of a comparison tally.
    pub fn cost(&self, counts: ComparisonCounts) -> f64 {
        counts.naive as f64 * self.naive + counts.expert as f64 * self.expert
    }
}

impl Default for CostModel {
    /// `cn = 1`, `ce = 10`: the smallest ratio at which the paper finds the
    /// two-phase algorithm worthwhile.
    fn default() -> Self {
        CostModel::with_ratio(10.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(naive: u64, expert: u64) -> ComparisonCounts {
        ComparisonCounts { naive, expert }
    }

    #[test]
    fn cost_formula() {
        let m = CostModel::new(1.0, 50.0);
        assert_eq!(m.cost(counts(100, 3)), 100.0 + 150.0);
        assert_eq!(m.cost(counts(0, 0)), 0.0);
    }

    #[test]
    fn price_by_class_and_ratio() {
        let m = CostModel::with_ratio(20.0);
        assert_eq!(m.price(WorkerClass::Naive), 1.0);
        assert_eq!(m.price(WorkerClass::Expert), 20.0);
        assert_eq!(m.ratio(), 20.0);
    }

    #[test]
    fn paper_settings_are_the_three_ratios() {
        let ratios: Vec<f64> = CostModel::paper_settings()
            .iter()
            .map(|m| m.ratio())
            .collect();
        assert_eq!(ratios, vec![10.0, 20.0, 50.0]);
    }

    #[test]
    fn free_naive_workers_are_allowed() {
        // The "naïve worker is a machine-learning model" scenario: cn = 0.
        let m = CostModel::new(0.0, 100.0);
        assert_eq!(m.cost(counts(1_000_000, 2)), 200.0);
    }

    #[test]
    #[should_panic(expected = "cn must be")]
    fn negative_price_panics() {
        CostModel::new(-1.0, 10.0);
    }
}
