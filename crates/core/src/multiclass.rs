//! Multi-class workers and the cascaded max-finding algorithm — the
//! extension the paper leaves as future work (Section 3.3: "a natural
//! extension models multiple classes of workers with different expertise
//! levels").
//!
//! Instead of two classes there is a ladder of `k` classes with strictly
//! improving discernment `δ₀ > δ₁ > … > δ_{k−1}` and (typically)
//! increasing prices `c₀ <= c₁ <= … <= c_{k−1}`. The
//! [`cascade_max_find`] algorithm generalizes Algorithm 1: each class `i`
//! runs one round of the Algorithm 2 tournament filter with its own
//! `u_i(n)` parameter, shrinking the candidate set before handing it to
//! the next (better, pricier) class; the last class runs 2-MaxFind and
//! returns an element within `2·δ_{k−1}` of the maximum.
//!
//! Correctness follows by induction from Lemma 3: with `u_i` at least the
//! number of elements class `i` cannot distinguish from the maximum, each
//! stage keeps the maximum, so the final stage's guarantee applies. The
//! two-class instantiation is exactly Algorithm 1.

use crate::algorithms::{filter_candidates, two_max_find, FilterConfig};
use crate::element::{ElementId, Instance};
use crate::model::{ErrorModel, ThresholdModel, TiePolicy, WorkerClass};
use crate::oracle::{ComparisonCounts, ComparisonOracle};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// One rung of the expertise ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassSpec {
    /// Discernment threshold `δ_i`.
    pub delta: f64,
    /// Residual error `ε_i`.
    pub epsilon: f64,
    /// Price per comparison `c_i`.
    pub cost: f64,
}

impl ClassSpec {
    /// Builds a rung.
    ///
    /// # Panics
    ///
    /// Panics on invalid threshold/error/price values.
    pub fn new(delta: f64, epsilon: f64, cost: f64) -> Self {
        assert!(
            delta.is_finite() && delta >= 0.0,
            "δ must be finite and non-negative"
        );
        assert!((0.0..1.0).contains(&epsilon), "ε must be in [0, 1)");
        assert!(
            cost.is_finite() && cost >= 0.0,
            "cost must be a finite non-negative price"
        );
        ClassSpec {
            delta,
            epsilon,
            cost,
        }
    }
}

/// An expertise ladder: classes ordered from coarsest/cheapest to
/// finest/priciest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpertiseLadder {
    classes: Vec<ClassSpec>,
}

impl ExpertiseLadder {
    /// Builds a ladder.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two classes are given, or if discernment does
    /// not strictly improve (`δ` strictly decreasing) along the ladder.
    pub fn new(classes: Vec<ClassSpec>) -> Self {
        assert!(classes.len() >= 2, "a ladder needs at least two classes");
        for w in classes.windows(2) {
            assert!(
                w[1].delta < w[0].delta,
                "discernment must strictly improve along the ladder"
            );
            assert!(
                w[1].epsilon <= w[0].epsilon,
                "residual error must not worsen along the ladder"
            );
        }
        ExpertiseLadder { classes }
    }

    /// The paper's two-class model as a ladder.
    pub fn two_class(delta_n: f64, delta_e: f64, cn: f64, ce: f64) -> Self {
        Self::new(vec![
            ClassSpec::new(delta_n, 0.0, cn),
            ClassSpec::new(delta_e, 0.0, ce),
        ])
    }

    /// Number of classes `k`.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True if the ladder is empty (never: construction requires two).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The rungs, coarsest first.
    pub fn classes(&self) -> &[ClassSpec] {
        &self.classes
    }

    /// The `i`-th rung.
    pub fn class(&self, i: usize) -> ClassSpec {
        self.classes[i]
    }

    /// Total monetary cost of a per-class comparison tally.
    pub fn cost(&self, per_class: &[u64]) -> f64 {
        assert_eq!(per_class.len(), self.classes.len(), "one tally per class");
        per_class
            .iter()
            .zip(&self.classes)
            .map(|(&x, c)| x as f64 * c.cost)
            .sum()
    }
}

/// A comparison oracle with `k` worker classes addressed by ladder index.
pub trait MultiClassOracle {
    /// Asks one worker of class `class` (a ladder index) to compare `k`
    /// and `j`.
    fn compare_class(&mut self, class: usize, k: ElementId, j: ElementId) -> ElementId;

    /// Comparisons performed so far, per class.
    fn class_counts(&self) -> Vec<u64>;
}

/// Simulates an [`ExpertiseLadder`] over a ground-truth instance: workers
/// of class `i` follow `T(δ_i, ε_i)`.
#[derive(Debug)]
pub struct LadderOracle<R: RngCore> {
    instance: Instance,
    models: Vec<ThresholdModel>,
    counts: Vec<u64>,
    rng: R,
}

impl<R: RngCore> LadderOracle<R> {
    /// Builds the oracle with a shared tie policy.
    pub fn new(instance: Instance, ladder: &ExpertiseLadder, tie: TiePolicy, rng: R) -> Self {
        let models = ladder
            .classes()
            .iter()
            .map(|c| ThresholdModel::new(c.delta, c.epsilon, tie))
            .collect::<Vec<_>>();
        let counts = vec![0; models.len()];
        LadderOracle {
            instance,
            models,
            counts,
            rng,
        }
    }

    /// The ground-truth instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }
}

impl<R: RngCore> MultiClassOracle for LadderOracle<R> {
    fn compare_class(&mut self, class: usize, k: ElementId, j: ElementId) -> ElementId {
        assert_ne!(
            k, j,
            "a worker is never handed two copies of the same element"
        );
        self.counts[class] += 1;
        let (vk, vj) = (self.instance.value(k), self.instance.value(j));
        self.models[class].compare(k, vk, j, vj, &mut self.rng)
    }

    fn class_counts(&self) -> Vec<u64> {
        self.counts.clone()
    }
}

/// Adapts one class of a [`MultiClassOracle`] to the two-class
/// [`ComparisonOracle`] interface, so the existing algorithms can run a
/// stage with "naïve = class i". Expert queries are forbidden.
struct SingleClassView<'a, O> {
    inner: &'a mut O,
    class: usize,
    counted: ComparisonCounts,
}

impl<O: MultiClassOracle> ComparisonOracle for SingleClassView<'_, O> {
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
        debug_assert_eq!(
            class,
            WorkerClass::Naive,
            "stage views expose one class as naive"
        );
        self.counted.record(WorkerClass::Naive);
        self.inner.compare_class(self.class, k, j)
    }

    fn counts(&self) -> ComparisonCounts {
        self.counted
    }
}

/// The result of a cascaded run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CascadeOutcome {
    /// The returned element (within `2·δ_{k−1}` of the maximum when every
    /// `u_i` was not underestimated).
    pub winner: ElementId,
    /// Candidate-set size after each stage (length `k − 1`).
    pub stage_sizes: Vec<usize>,
    /// Comparisons per class.
    pub per_class: Vec<u64>,
}

/// Cascaded max-finding over a `k`-class ladder.
///
/// `us[i]` is the `u_i(n)` parameter for stage `i` (one per class except
/// the last, which runs 2-MaxFind on whatever remains): the number of
/// elements class `i` cannot distinguish from the maximum, or an upper
/// bound on it.
///
/// # Panics
///
/// Panics if `elements` is empty or `us.len() != ladder.len() - 1`, or any
/// `u_i` is zero.
pub fn cascade_max_find<O: MultiClassOracle>(
    oracle: &mut O,
    ladder: &ExpertiseLadder,
    elements: &[ElementId],
    us: &[usize],
) -> CascadeOutcome {
    assert!(
        !elements.is_empty(),
        "max-finding needs at least one element"
    );
    assert_eq!(
        us.len(),
        ladder.len() - 1,
        "one u_i per filtering class (all but the last)"
    );

    let mut candidates: Vec<ElementId> = elements.to_vec();
    let mut stage_sizes = Vec::with_capacity(us.len());
    for (class, &u) in us.iter().enumerate() {
        let mut view = SingleClassView {
            inner: &mut *oracle,
            class,
            counted: ComparisonCounts::zero(),
        };
        let out = filter_candidates(&mut view, &candidates, &FilterConfig::new(u));
        candidates = out.survivors;
        stage_sizes.push(candidates.len());
    }

    let last = ladder.len() - 1;
    let mut view = SingleClassView {
        inner: &mut *oracle,
        class: last,
        counted: ComparisonCounts::zero(),
    };
    // 2-MaxFind through the view's "naive" slot, which is wired to the
    // finest class.
    let winner = two_max_find(&mut view, WorkerClass::Naive, &candidates).winner;

    CascadeOutcome {
        winner,
        stage_sizes,
        per_class: oracle.class_counts(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_instance(n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        Instance::new((0..n).map(|_| rng.gen_range(0.0..100_000.0)).collect())
    }

    fn three_rung_ladder() -> ExpertiseLadder {
        ExpertiseLadder::new(vec![
            ClassSpec::new(5_000.0, 0.0, 1.0), // crowd
            ClassSpec::new(500.0, 0.0, 10.0),  // enthusiasts
            ClassSpec::new(50.0, 0.0, 100.0),  // professionals
        ])
    }

    fn us_for(inst: &Instance, ladder: &ExpertiseLadder) -> Vec<usize> {
        ladder.classes()[..ladder.len() - 1]
            .iter()
            .map(|c| inst.indistinguishable_from_max(c.delta))
            .collect()
    }

    #[test]
    fn ladder_construction_and_cost() {
        let l = three_rung_ladder();
        assert_eq!(l.len(), 3);
        assert_eq!(l.class(1).cost, 10.0);
        assert_eq!(l.cost(&[100, 10, 1]), 100.0 + 100.0 + 100.0);
    }

    #[test]
    fn two_class_ladder_matches_paper_model() {
        let l = ExpertiseLadder::two_class(20.0, 2.0, 1.0, 50.0);
        assert_eq!(l.len(), 2);
        assert_eq!(l.class(0).delta, 20.0);
        assert_eq!(l.class(1).cost, 50.0);
    }

    #[test]
    #[should_panic(expected = "strictly improve")]
    fn non_improving_ladder_panics() {
        ExpertiseLadder::new(vec![
            ClassSpec::new(10.0, 0.0, 1.0),
            ClassSpec::new(10.0, 0.0, 2.0),
        ]);
    }

    #[test]
    fn cascade_finds_near_max_within_final_delta() {
        for seed in 0..10 {
            let inst = uniform_instance(1200, seed);
            let ladder = three_rung_ladder();
            let us = us_for(&inst, &ladder);
            let mut oracle = LadderOracle::new(
                inst.clone(),
                &ladder,
                TiePolicy::UniformRandom,
                StdRng::seed_from_u64(seed + 99),
            );
            let out = cascade_max_find(&mut oracle, &ladder, &inst.ids(), &us);
            let gap = inst.max_value() - inst.value(out.winner);
            assert!(gap <= 2.0 * 50.0, "seed {seed}: gap {gap} > 2·δ_last");
        }
    }

    #[test]
    fn stages_shrink_and_spend_accordingly() {
        let inst = uniform_instance(2000, 42);
        let ladder = three_rung_ladder();
        let us = us_for(&inst, &ladder);
        let mut oracle = LadderOracle::new(
            inst.clone(),
            &ladder,
            TiePolicy::UniformRandom,
            StdRng::seed_from_u64(1),
        );
        let out = cascade_max_find(&mut oracle, &ladder, &inst.ids(), &us);

        // Each stage shrinks the candidate set.
        assert!(out.stage_sizes[0] < 2000);
        assert!(out.stage_sizes[1] <= out.stage_sizes[0]);
        // The cheapest class does the most comparisons, the priciest the
        // fewest.
        assert!(out.per_class[0] > out.per_class[1]);
        assert!(out.per_class[1] > out.per_class[2]);
    }

    #[test]
    fn cascade_undercuts_single_jump_on_steep_ladders() {
        // Three stages vs jumping straight from crowd to professionals:
        // with a steep price ladder, the middle class pays for itself by
        // shrinking the set the professionals see.
        let inst = uniform_instance(3000, 7);
        let ladder = three_rung_ladder();
        let us = us_for(&inst, &ladder);

        let mut cascade_oracle = LadderOracle::new(
            inst.clone(),
            &ladder,
            TiePolicy::UniformRandom,
            StdRng::seed_from_u64(2),
        );
        let cascade = cascade_max_find(&mut cascade_oracle, &ladder, &inst.ids(), &us);
        let cascade_cost = ladder.cost(&cascade.per_class);

        // Two-stage run on the same ladder: crowd filter, then pros.
        let two_stage_ladder = ExpertiseLadder::new(vec![ladder.class(0), ladder.class(2)]);
        let mut two_oracle = LadderOracle::new(
            inst.clone(),
            &two_stage_ladder,
            TiePolicy::UniformRandom,
            StdRng::seed_from_u64(2),
        );
        let two = cascade_max_find(&mut two_oracle, &two_stage_ladder, &inst.ids(), &us[..1]);
        let two_cost = two_stage_ladder.cost(&two.per_class);

        // Both must be accurate; the three-stage cascade must not be much
        // more expensive (it is usually cheaper; exact ordering depends on
        // u_1 vs the candidate set size).
        let gap_c = inst.max_value() - inst.value(cascade.winner);
        let gap_t = inst.max_value() - inst.value(two.winner);
        assert!(gap_c <= 100.0 && gap_t <= 100.0);
        assert!(
            cascade_cost <= two_cost * 1.5,
            "cascade cost {cascade_cost} ≫ two-stage cost {two_cost}"
        );
    }

    #[test]
    #[should_panic(expected = "one u_i per filtering class")]
    fn wrong_us_arity_panics() {
        let inst = uniform_instance(100, 1);
        let ladder = three_rung_ladder();
        let mut oracle = LadderOracle::new(
            inst.clone(),
            &ladder,
            TiePolicy::UniformRandom,
            StdRng::seed_from_u64(1),
        );
        cascade_max_find(&mut oracle, &ladder, &inst.ids(), &[5]);
    }
}
