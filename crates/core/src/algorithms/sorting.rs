//! Near-sorting with imprecise comparisons.
//!
//! The paper's related work is rooted in sorting with faulty comparators
//! (Ajtai et al.'s title is "Sorting and selection with imprecise
//! comparisons"; see also refs \[1, 12, 13, 28, 36\]). Under the threshold
//! model no algorithm can produce the exact order — indistinguishable
//! neighbours can always be swapped — so the right target is a *near*
//! sort whose displacement is bounded by the local density of
//! indistinguishable elements.
//!
//! Two building blocks:
//!
//! * [`near_sort`] — merge sort driven by oracle comparisons. With a
//!   consistent comparator it performs `O(n log n)` comparisons and
//!   misplaces each element only relative to elements within `δ` of it.
//! * [`expert_rank`] — the two-phase idea applied to ranking: naïve
//!   workers produce a coarse near-sort of everything, experts re-sort
//!   only the top segment (where order actually matters for selection
//!   tasks), giving an exact-up-to-`δe` prefix at naïve prices for the
//!   bulk.
//!
//! Quality metrics (`max_displacement`, [`footrule`]) quantify how far an
//! output order is from the ground truth.

use crate::element::{ElementId, Instance};
use crate::model::WorkerClass;
use crate::oracle::{ComparisonCounts, ComparisonOracle};
use serde::{Deserialize, Serialize};

/// Result of a near-sort.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortOutcome {
    /// The produced order, best (believed largest) first.
    pub order: Vec<ElementId>,
    /// Comparisons performed.
    pub comparisons: ComparisonCounts,
}

/// Merge sort over oracle comparisons, best first.
///
/// Performs at most `n·⌈log₂ n⌉` comparisons. With a perfect comparator
/// the order is exact; under `T(δ, 0)` with consistent answers each
/// element ends up correctly ordered relative to everything farther than
/// `δ` from it... *per comparison actually made* — merge sort compares
/// only `O(n log n)` of the `O(n²)` pairs, so transitivity errors can
/// propagate; see [`max_displacement`] for the empirical measure.
///
/// # Panics
///
/// Panics if `elements` is empty.
pub fn near_sort<O: ComparisonOracle>(
    oracle: &mut O,
    class: WorkerClass,
    elements: &[ElementId],
) -> SortOutcome {
    assert!(!elements.is_empty(), "sorting needs at least one element");
    let start = oracle.counts();
    let order = merge_sort(oracle, class, elements.to_vec());
    SortOutcome {
        order,
        comparisons: oracle
            .counts()
            .delta_since(start)
            .unwrap_or_else(|e| panic!("{e}")),
    }
}

fn merge_sort<O: ComparisonOracle>(
    oracle: &mut O,
    class: WorkerClass,
    items: Vec<ElementId>,
) -> Vec<ElementId> {
    if items.len() <= 1 {
        return items;
    }
    let mid = items.len() / 2;
    let right = items[mid..].to_vec();
    let left = items[..mid].to_vec();
    let left = merge_sort(oracle, class, left);
    let right = merge_sort(oracle, class, right);

    let mut out = Vec::with_capacity(left.len() + right.len());
    let (mut i, mut j) = (0, 0);
    while i < left.len() && j < right.len() {
        // Best first: the comparison winner goes out first.
        if oracle.compare(class, left[i], right[j]) == left[i] {
            out.push(left[i]);
            i += 1;
        } else {
            out.push(right[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&left[i..]);
    out.extend_from_slice(&right[j..]);
    out
}

/// Configuration for [`expert_rank`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpertRankConfig {
    /// Size of the prefix the experts re-sort (e.g. the `2·un` of the
    /// max-finding candidate set, or "the first page of results").
    pub expert_prefix: usize,
}

/// Two-phase ranking: a naïve near-sort of everything, then an expert
/// re-sort of the top `expert_prefix` elements.
///
/// Costs `O(n log n)` naïve plus `O(p log p)` expert comparisons for a
/// prefix of size `p` — the ranking analogue of Algorithm 1's division of
/// labour.
///
/// # Panics
///
/// Panics if `elements` is empty or `expert_prefix == 0`.
pub fn expert_rank<O: ComparisonOracle>(
    oracle: &mut O,
    elements: &[ElementId],
    config: &ExpertRankConfig,
) -> SortOutcome {
    assert!(
        config.expert_prefix >= 1,
        "the expert prefix must be non-empty"
    );
    let start = oracle.counts();
    let coarse = merge_sort(oracle, WorkerClass::Naive, elements.to_vec());
    let p = config.expert_prefix.min(coarse.len());
    let refined = merge_sort(oracle, WorkerClass::Expert, coarse[..p].to_vec());
    let mut order = refined;
    order.extend_from_slice(&coarse[p..]);
    SortOutcome {
        order,
        comparisons: oracle
            .counts()
            .delta_since(start)
            .unwrap_or_else(|e| panic!("{e}")),
    }
}

/// Maximum displacement of an order: the largest |position − true rank|
/// over all elements (0 for a perfect sort). Value ties count positions
/// interchangeably (an order is perfect if each element's position could
/// be its rank under *some* tie-breaking).
///
/// # Panics
///
/// Panics if `order` is not a permutation of the instance's elements.
pub fn max_displacement(instance: &Instance, order: &[ElementId]) -> usize {
    displacements(instance, order)
        .into_iter()
        .max()
        .unwrap_or(0)
}

/// Spearman's footrule: the sum of displacements (0 for a perfect sort).
///
/// # Panics
///
/// Panics if `order` is not a permutation of the instance's elements.
pub fn footrule(instance: &Instance, order: &[ElementId]) -> usize {
    displacements(instance, order).into_iter().sum()
}

fn displacements(instance: &Instance, order: &[ElementId]) -> Vec<usize> {
    assert_eq!(order.len(), instance.n(), "order must cover the instance");
    // For ties: an element of rank r shared by t elements legally occupies
    // positions r-1 .. r-1+t-1; displacement is the distance to that band.
    let mut seen = vec![false; instance.n()];
    let mut out = Vec::with_capacity(order.len());
    for (pos, &e) in order.iter().enumerate() {
        assert!(!seen[e.index()], "order repeats {e}");
        seen[e.index()] = true;
        let rank = instance.rank(e); // 1-based, count of strictly-greater + 1
        let ties = instance
            .values()
            .iter()
            .filter(|&&v| v == instance.value(e))
            .count();
        let lo = rank - 1;
        let hi = rank - 1 + ties - 1;
        let d = lo.saturating_sub(pos).max(pos.saturating_sub(hi));
        out.push(d);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ExpertModel, TiePolicy};
    use crate::oracle::{MemoOracle, PerfectOracle, SimulatedOracle};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_instance(n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        Instance::new((0..n).map(|_| rng.gen_range(0.0..10_000.0)).collect())
    }

    #[test]
    fn perfect_workers_sort_exactly() {
        for n in [1, 2, 7, 64, 200] {
            let inst = uniform_instance(n, n as u64);
            let mut o = PerfectOracle::new(inst.clone());
            let out = near_sort(&mut o, WorkerClass::Naive, &inst.ids());
            assert_eq!(max_displacement(&inst, &out.order), 0, "n = {n}");
            assert_eq!(footrule(&inst, &out.order), 0);
        }
    }

    #[test]
    fn comparison_budget_is_n_log_n() {
        let n = 512;
        let inst = uniform_instance(n, 3);
        let mut o = PerfectOracle::new(inst.clone());
        let out = near_sort(&mut o, WorkerClass::Naive, &inst.ids());
        assert!(
            out.comparisons.total() <= (n as u64) * 10, // n · log2(512) = n · 9
            "{} comparisons",
            out.comparisons.total()
        );
    }

    #[test]
    fn threshold_displacement_is_local() {
        // With a small δ and a consistent comparator, elements stay close
        // to their true positions (within the size of their δ-neighbourhood
        // plus merge-path noise).
        for seed in 0..5 {
            let inst = uniform_instance(300, seed + 10);
            let delta = 50.0; // neighbourhoods of a handful of elements
            let model = ExpertModel::exact(delta, 1.0, TiePolicy::Persistent);
            let inner = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed));
            let mut o = MemoOracle::new(inner);
            let out = near_sort(&mut o, WorkerClass::Naive, &inst.ids());
            let d = max_displacement(&inst, &out.order);
            assert!(
                d <= 25,
                "seed {seed}: displacement {d} too large for local errors"
            );
        }
    }

    #[test]
    fn expert_rank_fixes_the_prefix() {
        for seed in 0..5 {
            let inst = uniform_instance(300, seed + 40);
            let (dn, de) = (500.0, 1.0);
            let model = ExpertModel::exact(dn, de, TiePolicy::Persistent);
            let inner = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed));
            let mut o = MemoOracle::new(inner);
            let prefix = 20;
            let out = expert_rank(
                &mut o,
                &inst.ids(),
                &ExpertRankConfig {
                    expert_prefix: prefix,
                },
            );

            // Within the expert prefix, the order must be exactly by value
            // (δe = 1 is below the minimum gap of the prefix whp).
            for w in out.order[..prefix].windows(2) {
                assert!(
                    inst.value(w[0]) >= inst.value(w[1]) - 2.0 * de,
                    "seed {seed}: expert prefix out of order"
                );
            }
            // And experts only paid for the prefix.
            assert!(out.comparisons.expert <= (prefix as u64) * 6);
            assert!(out.comparisons.naive > out.comparisons.expert);
        }
    }

    #[test]
    fn displacement_metrics_detect_a_swap() {
        let inst = Instance::new(vec![4.0, 3.0, 2.0, 1.0]);
        let perfect: Vec<ElementId> = inst.ids();
        assert_eq!(max_displacement(&inst, &perfect), 0);
        let swapped = vec![ElementId(1), ElementId(0), ElementId(2), ElementId(3)];
        assert_eq!(max_displacement(&inst, &swapped), 1);
        assert_eq!(footrule(&inst, &swapped), 2);
        let reversed: Vec<ElementId> = inst.ids().into_iter().rev().collect();
        assert_eq!(max_displacement(&inst, &reversed), 3);
    }

    #[test]
    fn displacement_respects_value_ties() {
        let inst = Instance::new(vec![5.0, 5.0, 1.0]);
        // Either order of the tied pair is a perfect sort.
        assert_eq!(
            max_displacement(&inst, &[ElementId(0), ElementId(1), ElementId(2)]),
            0
        );
        assert_eq!(
            max_displacement(&inst, &[ElementId(1), ElementId(0), ElementId(2)]),
            0
        );
    }

    #[test]
    #[should_panic(expected = "order repeats")]
    fn duplicate_order_panics() {
        let inst = Instance::new(vec![1.0, 2.0]);
        max_displacement(&inst, &[ElementId(0), ElementId(0)]);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn empty_sort_panics() {
        let mut o = PerfectOracle::new(Instance::new(vec![1.0]));
        near_sort(&mut o, WorkerClass::Naive, &[]);
    }
}
