//! Algorithm 1 — the expert-aware two-phase max-finding algorithm
//! (paper Section 4.1).
//!
//! 1. **Phase 1** (naïve workers): run the tournament filter
//!    ([`filter_candidates`](super::filter_candidates)) to shrink `L` to a
//!    candidate set `S` with `M ∈ S` and `|S| <= 2·un(n) − 1`, at
//!    `O(n·un(n))` naïve comparisons.
//! 2. **Phase 2** (expert workers): run a near-max algorithm on `S`.
//!    [`Phase2::TwoMaxFind`] gives the best guarantee (`d(M, e) <= 2δe`,
//!    `O(un^{3/2})` expert comparisons, used by the paper's experiments);
//!    [`Phase2::Randomized`] gives the asymptotically optimal `Θ(un)`
//!    comparisons with `d(M, e) <= 3δe` whp (used by the paper's analysis);
//!    [`Phase2::AllPlayAll`] is the naive `Θ(un²)` option the paper
//!    dismisses.
//!
//! Both comparison budgets are optimal up to constants: `Ω(n·un/4)` naïve
//! comparisons are necessary (Corollary 1) and `Ω(un)` expert comparisons
//! are necessary — see [`crate::bounds`].

use super::filter::{filter_candidates_checked, FilterConfig, FilterOutcome};
use super::randomized::{randomized_max_find, RandomizedConfig};
use super::two_maxfind::two_max_find;
use crate::element::ElementId;
use crate::model::WorkerClass;
use crate::oracle::{
    ComparisonCounts, ComparisonOracle, CountsRegression, FuseOracle, OracleError,
};
use crate::tournament::Tournament;
use crate::trace::{TraceEvent, TracePhase};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Which algorithm runs the expert phase on the candidate set `S`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum Phase2 {
    /// Algorithm 3, deterministic, `d(M, e) <= 2δe`, `O(|S|^{3/2})`
    /// comparisons. The paper's practical choice.
    #[default]
    TwoMaxFind,
    /// Algorithm 5, randomized, `d(M, e) <= 3δe` whp, `Θ(|S|)` comparisons.
    /// The paper's analytical choice.
    Randomized(RandomizedConfig),
    /// All-play-all on `S`, `d(M, e) <= 2δe`, `Θ(|S|²)` comparisons.
    /// Dominated by [`Phase2::TwoMaxFind`]; kept as a baseline.
    AllPlayAll,
}

/// Configuration for [`expert_max_find`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpertMaxConfig {
    /// The `un(n)` parameter handed to Phase 1 (possibly an estimate; see
    /// [`crate::estimation`]).
    pub un: usize,
    /// The expert-phase algorithm.
    pub phase2: Phase2,
    /// Appendix A global-loss-counter optimization for Phase 1.
    pub track_global_losses: bool,
}

impl ExpertMaxConfig {
    /// The paper's experimental configuration: plain Phase 1 and 2-MaxFind.
    pub fn new(un: usize) -> Self {
        ExpertMaxConfig {
            un,
            phase2: Phase2::TwoMaxFind,
            track_global_losses: false,
        }
    }

    /// Selects the expert-phase algorithm.
    pub fn with_phase2(mut self, phase2: Phase2) -> Self {
        self.phase2 = phase2;
        self
    }

    /// Enables the Appendix A optimization in Phase 1.
    pub fn with_global_losses(mut self) -> Self {
        self.track_global_losses = true;
        self
    }
}

/// The result of a full two-phase run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpertMaxOutcome {
    /// The element returned as (an approximation of) the maximum.
    pub winner: ElementId,
    /// The Phase-1 candidate set handed to the experts.
    pub candidates: Vec<ElementId>,
    /// Phase-1 statistics.
    pub phase1: FilterOutcome,
    /// Comparisons used by Phase 2 (expert class).
    pub phase2_comparisons: ComparisonCounts,
    /// Total comparisons across both phases.
    pub total_comparisons: ComparisonCounts,
}

/// Runs Algorithm 1: filter with naïve workers, then select with experts.
///
/// `rng` is consumed only by [`Phase2::Randomized`]; the other phase-2
/// options are deterministic given the oracle's answers.
///
/// ```
/// use crowd_core::prelude::*;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let instance = Instance::new((0..400).map(|i| ((i * 61) % 400) as f64).collect());
/// let model = ExpertModel::exact(8.0, 1.0, TiePolicy::UniformRandom);
/// let un = instance.indistinguishable_from_max(8.0);
/// let mut oracle = SimulatedOracle::new(instance.clone(), model, StdRng::seed_from_u64(1));
/// let mut rng = StdRng::seed_from_u64(2);
///
/// let out = expert_max_find(&mut oracle, &instance.ids(), &ExpertMaxConfig::new(un), &mut rng);
/// assert!(instance.max_value() - instance.value(out.winner) <= 2.0); // within 2·δe
/// assert!(out.candidates.len() <= 2 * un); // Lemma 3
/// ```
///
/// # Panics
///
/// Panics if `elements` is empty or `config.un == 0`.
pub fn expert_max_find<O: ComparisonOracle, R: RngCore>(
    oracle: &mut O,
    elements: &[ElementId],
    config: &ExpertMaxConfig,
    rng: &mut R,
) -> ExpertMaxOutcome {
    expert_max_find_checked(oracle, elements, config, rng).unwrap_or_else(|e| panic!("{e}"))
}

/// The two-phase body behind both [`expert_max_find`] and
/// [`try_expert_max_find`]: identical comparison sequence, but the phase
/// snapshot bookkeeping reports a [`CountsRegression`] as a value instead
/// of unwinding, so fallible job drivers can return it.
fn expert_max_find_checked<O: ComparisonOracle, R: RngCore>(
    oracle: &mut O,
    elements: &[ElementId],
    config: &ExpertMaxConfig,
    rng: &mut R,
) -> Result<ExpertMaxOutcome, CountsRegression> {
    assert!(
        !elements.is_empty(),
        "max-finding needs at least one element"
    );
    let start = oracle.counts();

    // Phase 1: naïve filtering.
    let mut filter_cfg = FilterConfig::new(config.un);
    filter_cfg.track_global_losses = config.track_global_losses;
    oracle.observe(TraceEvent::PhaseStart(TracePhase::Filter));
    let phase1 = filter_candidates_checked(oracle, elements, &filter_cfg)?;
    oracle.observe(TraceEvent::PhaseEnd(TracePhase::Filter));
    let candidates = phase1.survivors.clone();
    assert!(
        !candidates.is_empty(),
        "phase 1 returned no candidates — un(n) was severely underestimated"
    );

    // Phase 2: expert selection on S.
    let before_phase2 = oracle.counts();
    oracle.observe(TraceEvent::PhaseStart(TracePhase::Expert));
    let winner = match config.phase2 {
        Phase2::TwoMaxFind => two_max_find(oracle, WorkerClass::Expert, &candidates).winner,
        Phase2::Randomized(rc) => {
            randomized_max_find(oracle, WorkerClass::Expert, &candidates, &rc, rng).winner
        }
        Phase2::AllPlayAll => Tournament::all_play_all(oracle, WorkerClass::Expert, &candidates)
            .champion()
            .expect("candidates are non-empty"),
    };
    oracle.observe(TraceEvent::PhaseEnd(TracePhase::Expert));
    let end = oracle.counts();

    Ok(ExpertMaxOutcome {
        winner,
        candidates,
        phase1,
        phase2_comparisons: end.delta_since(before_phase2)?,
        total_comparisons: end.delta_since(start)?,
    })
}

/// Fallible twin of [`expert_max_find`]: surfaces the first
/// [`OracleError`] instead of fabricating answers.
///
/// Like [`super::filter::try_filter_candidates`], the run proceeds behind a
/// [`FuseOracle`] so both phases terminate even after a mid-run outage; the
/// fabricated outcome is then discarded in favour of the error.
///
/// # Errors
///
/// Returns the first error the oracle's
/// [`try_compare`](ComparisonOracle::try_compare) reported, in either
/// phase, or [`OracleError::CountsRegressed`] if the stack's tally went
/// backwards mid-run (a broken decorator — reported, not unwound).
pub fn try_expert_max_find<O: ComparisonOracle, R: RngCore>(
    oracle: &mut O,
    elements: &[ElementId],
    config: &ExpertMaxConfig,
    rng: &mut R,
) -> Result<ExpertMaxOutcome, OracleError> {
    let mut fuse = FuseOracle::new(oracle);
    let out = expert_max_find_checked(&mut fuse, elements, config, rng);
    match (fuse.take_error(), out) {
        (Some(err), _) => Err(err),
        (None, Err(regression)) => Err(OracleError::CountsRegressed(regression)),
        (None, Ok(out)) => Ok(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Instance;
    use crate::model::{ExpertModel, TiePolicy};
    use crate::oracle::{PerfectOracle, SimulatedOracle};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_instance(n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        Instance::new((0..n).map(|_| rng.gen_range(0.0..1000.0)).collect())
    }

    fn threshold_oracle(
        inst: &Instance,
        delta_n: f64,
        delta_e: f64,
        seed: u64,
    ) -> SimulatedOracle<StdRng> {
        let model = ExpertModel::exact(delta_n, delta_e, TiePolicy::UniformRandom);
        SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed))
    }

    #[test]
    fn perfect_workers_find_the_exact_max() {
        let inst = uniform_instance(500, 1);
        let mut o = PerfectOracle::new(inst.clone());
        let mut rng = StdRng::seed_from_u64(2);
        let out = expert_max_find(&mut o, &inst.ids(), &ExpertMaxConfig::new(5), &mut rng);
        assert_eq!(out.winner, inst.max_element());
    }

    #[test]
    fn within_two_delta_e_with_two_maxfind() {
        for seed in 0..15 {
            let inst = uniform_instance(400, seed);
            let (dn, de) = (25.0, 5.0);
            let un = inst.indistinguishable_from_max(dn);
            let mut o = threshold_oracle(&inst, dn, de, seed + 500);
            let mut rng = StdRng::seed_from_u64(seed);
            let out = expert_max_find(&mut o, &inst.ids(), &ExpertMaxConfig::new(un), &mut rng);
            let gap = inst.max_value() - inst.value(out.winner);
            assert!(gap <= 2.0 * de, "seed {seed}: gap {gap} > 2δe");
        }
    }

    #[test]
    fn comparison_budget_split_between_phases() {
        let inst = uniform_instance(1000, 3);
        let (dn, de) = (20.0, 2.0);
        let un = inst.indistinguishable_from_max(dn).max(1);
        let mut o = threshold_oracle(&inst, dn, de, 7);
        let mut rng = StdRng::seed_from_u64(4);
        let out = expert_max_find(&mut o, &inst.ids(), &ExpertMaxConfig::new(un), &mut rng);

        // Phase 1 uses only naïve workers, phase 2 only experts.
        assert_eq!(out.phase1.comparisons.expert, 0);
        assert_eq!(out.phase2_comparisons.naive, 0);
        assert_eq!(
            out.total_comparisons,
            out.phase1.comparisons + out.phase2_comparisons
        );
        // Theorem 1 budgets.
        assert!(out.phase1.comparisons.naive <= (4 * 1000 * un) as u64);
        let s = out.candidates.len();
        assert!(
            out.phase2_comparisons.expert <= (2.0 * (s as f64).powf(1.5)).ceil() as u64,
            "phase 2 used {} comparisons on |S| = {s}",
            out.phase2_comparisons.expert
        );
    }

    #[test]
    fn candidate_set_respects_lemma_3() {
        let inst = uniform_instance(800, 5);
        let (dn, de) = (30.0, 3.0);
        let un = inst.indistinguishable_from_max(dn).max(1);
        let mut o = threshold_oracle(&inst, dn, de, 11);
        let mut rng = StdRng::seed_from_u64(6);
        let out = expert_max_find(&mut o, &inst.ids(), &ExpertMaxConfig::new(un), &mut rng);
        assert!(out.candidates.len() <= 2 * un);
        assert!(out.candidates.contains(&inst.max_element()));
    }

    #[test]
    fn all_phase2_options_return_good_elements() {
        let inst = uniform_instance(600, 8);
        let (dn, de) = (25.0, 5.0);
        let un = inst.indistinguishable_from_max(dn).max(1);
        for (phase2, factor) in [
            (Phase2::TwoMaxFind, 2.0),
            (
                Phase2::Randomized(RandomizedConfig::default().with_group_size(8)),
                3.0,
            ),
            (Phase2::AllPlayAll, 2.0),
        ] {
            let mut o = threshold_oracle(&inst, dn, de, 13);
            let mut rng = StdRng::seed_from_u64(9);
            let cfg = ExpertMaxConfig::new(un).with_phase2(phase2);
            let out = expert_max_find(&mut o, &inst.ids(), &cfg, &mut rng);
            let gap = inst.max_value() - inst.value(out.winner);
            assert!(gap <= factor * de, "{phase2:?}: gap {gap} > {factor}·δe");
        }
    }

    #[test]
    fn global_losses_option_plumbs_through() {
        let inst = uniform_instance(300, 10);
        let mut o = PerfectOracle::new(inst.clone());
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = ExpertMaxConfig::new(4).with_global_losses();
        let out = expert_max_find(&mut o, &inst.ids(), &cfg, &mut rng);
        assert_eq!(out.winner, inst.max_element());
    }

    #[test]
    fn small_inputs() {
        let inst = Instance::new(vec![1.0, 3.0, 2.0]);
        let mut o = PerfectOracle::new(inst.clone());
        let mut rng = StdRng::seed_from_u64(12);
        let out = expert_max_find(&mut o, &inst.ids(), &ExpertMaxConfig::new(2), &mut rng);
        assert_eq!(out.winner, ElementId(1));
        // n < 2·un: phase 1 is a no-op, everything goes to the experts.
        assert_eq!(out.phase1.comparisons.total(), 0);
        assert_eq!(out.candidates.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn empty_input_panics() {
        let mut o = PerfectOracle::new(Instance::new(vec![1.0]));
        let mut rng = StdRng::seed_from_u64(1);
        expert_max_find(&mut o, &[], &ExpertMaxConfig::new(1), &mut rng);
    }

    #[test]
    fn try_variant_matches_infallible_run_when_nothing_fails() {
        let inst = uniform_instance(400, 21);
        let (dn, de) = (25.0, 5.0);
        let un = inst.indistinguishable_from_max(dn).max(1);
        let mut o = threshold_oracle(&inst, dn, de, 22);
        let mut rng = StdRng::seed_from_u64(23);
        let plain = expert_max_find(&mut o, &inst.ids(), &ExpertMaxConfig::new(un), &mut rng);
        let mut o2 = threshold_oracle(&inst, dn, de, 22);
        let mut rng2 = StdRng::seed_from_u64(23);
        let fallible =
            try_expert_max_find(&mut o2, &inst.ids(), &ExpertMaxConfig::new(un), &mut rng2)
                .unwrap();
        assert_eq!(plain, fallible);
    }

    #[test]
    fn try_variant_surfaces_expert_phase_outages() {
        use crate::oracle::TryFnOracle;
        // Naïve answers flow; the expert pool is empty from the start. The
        // error must surface once phase 2 begins.
        let inst = uniform_instance(300, 24);
        let mut truth = PerfectOracle::new(inst.clone());
        let mut flaky = TryFnOracle::new(move |class, k, j| match class {
            WorkerClass::Naive => Ok(truth.compare(class, k, j)),
            WorkerClass::Expert => Err(OracleError::WorkforceDepleted { class }),
        });
        let mut rng = StdRng::seed_from_u64(25);
        let err = try_expert_max_find(&mut flaky, &inst.ids(), &ExpertMaxConfig::new(3), &mut rng)
            .unwrap_err();
        assert_eq!(
            err,
            OracleError::WorkforceDepleted {
                class: WorkerClass::Expert
            }
        );
    }
}
