//! Algorithm 2 — Phase 1: filter a candidate set with naïve workers.
//!
//! Given `L` of size `n` and the parameter `un(n) = o(n)`, the filter
//! repeatedly partitions the surviving elements into groups of
//! `g = 4·un(n)`, plays an all-play-all tournament inside each group, and
//! keeps only elements winning at least `g − un(n)` games (a smaller last
//! group is kept whole when `|G_ℓ| <= un(n)`, else filtered with threshold
//! `|G_ℓ| − un(n)`). It stops when fewer than `2·un(n)` elements survive.
//!
//! **Lemma 3**: the output `S` satisfies `M ∈ S` and `|S| <= 2·un(n) − 1`,
//! using at most `4·n·un(n)` naïve comparisons. The bound `M ∈ S` holds
//! because, by Lemma 1, `M` never loses more than `un(n) − 1` comparisons to
//! distinct opponents; termination and `|S| <= 2·un(n) − 1` follow from
//! Lemma 2, a counting argument independent of worker behaviour — the filter
//! terminates even against a fully adversarial oracle.
//!
//! The Appendix A optimization is available via
//! [`FilterConfig::track_global_losses`]: an element may lose at most
//! `un(n)` comparisons in a single group, but across rounds its distinct
//! losses can exceed `un(n)`, proving (Lemma 1) it cannot be the maximum;
//! tracking a global per-element loss counter lets the filter discard such
//! elements early and terminate sooner.

use crate::element::ElementId;
use crate::model::WorkerClass;
use crate::oracle::{
    ComparisonCounts, ComparisonOracle, CountsRegression, FuseOracle, OracleError,
};
use crate::trace::TraceEvent;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Configuration for the Phase-1 filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterConfig {
    /// The parameter `un(n)`: (an upper bound on) the number of elements
    /// naïve-indistinguishable from the maximum, including the maximum
    /// itself. Overestimating costs money but never correctness;
    /// underestimating can evict the maximum (Section 5.2).
    pub un: usize,
    /// Enables the Appendix A global-loss-counter optimization.
    pub track_global_losses: bool,
}

impl FilterConfig {
    /// Plain Algorithm 2 with the given `un(n)` and no optimizations.
    pub fn new(un: usize) -> Self {
        FilterConfig {
            un,
            track_global_losses: false,
        }
    }

    /// Enables the global-loss-counter optimization.
    pub fn with_global_losses(mut self) -> Self {
        self.track_global_losses = true;
        self
    }
}

/// The result of running the Phase-1 filter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterOutcome {
    /// The candidate set `S` (contains `M` whenever workers follow the
    /// threshold model and `un` was not underestimated).
    pub survivors: Vec<ElementId>,
    /// Number of filtering rounds (iterations of the outer loop).
    pub rounds: usize,
    /// Survivor-set size after each round, starting from `n`.
    pub sizes: Vec<usize>,
    /// Naïve comparisons performed by the filter (from oracle snapshots).
    pub comparisons: ComparisonCounts,
}

/// Runs Algorithm 2 over `elements` using naïve workers from `oracle`.
///
/// Returns the candidate set and statistics. If `|elements| < 2·un` the
/// while-loop never runs and all elements survive (the set is already small
/// enough for the expert phase).
///
/// ```
/// use crowd_core::prelude::*;
///
/// let instance = Instance::new((0..200).map(|i| i as f64).collect());
/// let mut oracle = PerfectOracle::new(instance.clone());
/// let out = filter_candidates(&mut oracle, &instance.ids(), &FilterConfig::new(4));
/// assert!(out.survivors.contains(&instance.max_element()));
/// assert!(out.survivors.len() <= 2 * 4 - 1);              // Lemma 3 size bound
/// assert!(out.comparisons.naive <= 4 * 200 * 4);          // Lemma 3 cost bound
/// ```
///
/// # Panics
///
/// Panics if `config.un == 0` (the maximum is always indistinguishable from
/// itself, so `un(n) >= 1`) or if `elements` contains duplicates.
pub fn filter_candidates<O: ComparisonOracle>(
    oracle: &mut O,
    elements: &[ElementId],
    config: &FilterConfig,
) -> FilterOutcome {
    filter_candidates_checked(oracle, elements, config).unwrap_or_else(|e| panic!("{e}"))
}

/// The filter body behind both [`filter_candidates`] and
/// [`try_filter_candidates`]: identical comparison sequence, but the
/// outcome's snapshot bookkeeping reports a [`CountsRegression`] as a
/// value instead of unwinding, so fallible job drivers can return it.
pub(crate) fn filter_candidates_checked<O: ComparisonOracle>(
    oracle: &mut O,
    elements: &[ElementId],
    config: &FilterConfig,
) -> Result<FilterOutcome, CountsRegression> {
    assert!(
        config.un >= 1,
        "un(n) >= 1: the maximum is indistinguishable from itself"
    );
    debug_assert!(
        elements.iter().collect::<HashSet<_>>().len() == elements.len(),
        "input elements must be distinct"
    );

    let start = oracle.counts();
    let un = config.un;
    let g = 4 * un;
    let n = elements.len();

    // The arena: elements are referred to by their dense position in the
    // input slice for the rest of the run. `wins` is one flat tally shared
    // by every group (a group resets only its own slots before playing),
    // and `losses[i]` is the capped set of distinct opponents slot `i` has
    // lost to (Appendix A) — capped at `un + 1` entries because the pruning
    // predicate `|losses| <= un` cannot change after that.
    let ids = elements;
    let mut wins: Vec<u32> = vec![0; n];
    let mut losses: Vec<Vec<u32>> = if config.track_global_losses {
        vec![Vec::new(); n]
    } else {
        Vec::new()
    };

    let mut survivors: Vec<u32> = (0..n as u32).collect();
    let mut sizes = vec![survivors.len()];
    let mut rounds = 0usize;
    let mut next: Vec<u32> = Vec::new();
    let mut champions: Vec<u32> = Vec::new();

    while survivors.len() >= 2 * un {
        oracle.observe(TraceEvent::RoundStart(rounds as u32));
        next.clear();
        champions.clear();
        let groups = survivors.len().div_ceil(g);

        for ci in 0..groups {
            let group = &survivors[ci * g..((ci + 1) * g).min(survivors.len())];
            let is_last = ci == groups - 1;
            if is_last && group.len() <= un {
                // Too small a group to certify losses; keep it whole.
                next.extend_from_slice(group);
                champions.extend_from_slice(group);
                continue;
            }
            for &i in group {
                wins[i as usize] = 0;
            }
            for a in 0..group.len() {
                for b in (a + 1)..group.len() {
                    let (i, j) = (group[a], group[b]);
                    let winner =
                        oracle.compare(WorkerClass::Naive, ids[i as usize], ids[j as usize]);
                    let (wi, li) = if winner == ids[i as usize] {
                        (i, j)
                    } else {
                        (j, i)
                    };
                    wins[wi as usize] += 1;
                    if config.track_global_losses {
                        let set = &mut losses[li as usize];
                        if set.len() <= un && !set.contains(&wi) {
                            set.push(wi);
                        }
                    }
                }
            }
            // A smaller last group is filtered with its own size: Lemma 3
            // needs "at most un(n) losses within the group", i.e. at least
            // |G| − un wins, not g − un.
            let threshold = (group.len() - un) as u32;
            let before = next.len();
            next.extend(
                group
                    .iter()
                    .copied()
                    .filter(|&i| wins[i as usize] >= threshold),
            );
            debug_assert!(
                next.len() - before < 2 * un,
                "Lemma 2 violated: {} winners with >= {threshold} wins among {}",
                next.len() - before,
                group.len()
            );
            champions.extend(champion_of(group, &wins));
        }

        if config.track_global_losses {
            // Lemma 1: an element with more than `un` distinct losses cannot
            // be the maximum in a global all-play-all tournament.
            next.retain(|&i| losses[i as usize].len() <= un);
        }

        if next.is_empty() {
            // Only possible when un(n) was underestimated: no element of any
            // group reached `g - un` wins (or global-loss pruning removed
            // them all). The M ∈ S guarantee is already forfeit in this
            // regime, so degrade gracefully — keep each group's champion
            // instead of returning an empty candidate set. Section 5.2
            // studies exactly this regime.
            std::mem::swap(&mut next, &mut champions);
        }

        assert!(
            next.len() < survivors.len(),
            "filter round failed to shrink the survivor set (Lemma 2 violated)"
        );
        std::mem::swap(&mut survivors, &mut next);
        sizes.push(survivors.len());
        oracle.observe(TraceEvent::RoundStats {
            round: rounds as u32,
            groups: groups as u32,
            survivors: survivors.len() as u64,
        });
        oracle.observe(TraceEvent::RoundEnd(rounds as u32));
        rounds += 1;
    }

    Ok(FilterOutcome {
        survivors: survivors.into_iter().map(|i| ids[i as usize]).collect(),
        rounds,
        sizes,
        comparisons: oracle.counts().delta_since(start)?,
    })
}

/// The group member with the most wins (ties: earliest in group order), or
/// `None` for an empty group — the arena twin of
/// [`Tournament::champion`](crate::tournament::Tournament::champion).
fn champion_of(group: &[u32], wins: &[u32]) -> Option<u32> {
    let (mut best, mut best_wins) = (None, 0u32);
    for &i in group {
        let w = wins[i as usize];
        if best.is_none() || w > best_wins {
            best = Some(i);
            best_wins = w;
        }
    }
    best
}

/// Fallible twin of [`filter_candidates`]: surfaces the first
/// [`OracleError`] the oracle reports instead of fabricating answers.
///
/// Internally the run proceeds behind a [`FuseOracle`]; once the fuse
/// blows, remaining comparisons are answered from a consistent fabricated
/// total order (free of charge), which keeps Lemma 2's termination
/// argument intact — the filter always finishes, and the fabricated
/// outcome is then discarded in favour of the error.
///
/// # Errors
///
/// Returns the first error the oracle's
/// [`try_compare`](ComparisonOracle::try_compare) reported, or
/// [`OracleError::CountsRegressed`] if the stack's tally went backwards
/// mid-run (a broken decorator — reported, not unwound).
pub fn try_filter_candidates<O: ComparisonOracle>(
    oracle: &mut O,
    elements: &[ElementId],
    config: &FilterConfig,
) -> Result<FilterOutcome, OracleError> {
    let mut fuse = FuseOracle::new(oracle);
    let out = filter_candidates_checked(&mut fuse, elements, config);
    match (fuse.take_error(), out) {
        (Some(err), _) => Err(err),
        (None, Err(regression)) => Err(OracleError::CountsRegressed(regression)),
        (None, Ok(out)) => Ok(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Instance;
    use crate::model::{ExpertModel, TiePolicy};
    use crate::oracle::{PerfectOracle, SimulatedOracle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform_instance(n: usize, seed: u64) -> Instance {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        Instance::new((0..n).map(|_| rng.gen_range(0.0..1000.0)).collect())
    }

    #[test]
    fn perfect_workers_small_un() {
        let inst = uniform_instance(200, 1);
        let mut o = PerfectOracle::new(inst.clone());
        let out = filter_candidates(&mut o, &inst.ids(), &FilterConfig::new(3));
        assert!(out.survivors.len() < 2 * 3);
        assert!(out.survivors.contains(&inst.max_element()));
        assert!(out.comparisons.naive <= 4 * 200 * 3);
        assert_eq!(out.comparisons.expert, 0);
    }

    #[test]
    fn contains_max_under_threshold_model() {
        for seed in 0..10 {
            let inst = uniform_instance(300, seed);
            let delta_n = 20.0;
            let un = inst.indistinguishable_from_max(delta_n);
            let model = ExpertModel::exact(delta_n, 1.0, TiePolicy::UniformRandom);
            let mut o =
                SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed + 100));
            let out = filter_candidates(&mut o, &inst.ids(), &FilterConfig::new(un));
            assert!(
                out.survivors.contains(&inst.max_element()),
                "seed {seed}: M evicted with true un = {un}"
            );
            assert!(out.survivors.len() <= 2 * un.max(1), "|S| too large");
        }
    }

    #[test]
    fn contains_max_under_adversarial_ties() {
        // FavorLower is the worst case: indistinguishable elements always
        // beat M. M still survives because it loses at most un - 1 games
        // per round.
        let inst = uniform_instance(400, 7);
        let delta_n = 30.0;
        let un = inst.indistinguishable_from_max(delta_n);
        let model = ExpertModel::exact(delta_n, 1.0, TiePolicy::FavorLower);
        let mut o = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(8));
        let out = filter_candidates(&mut o, &inst.ids(), &FilterConfig::new(un));
        assert!(out.survivors.contains(&inst.max_element()));
    }

    #[test]
    fn small_input_passes_through() {
        let inst = uniform_instance(5, 2);
        let mut o = PerfectOracle::new(inst.clone());
        let out = filter_candidates(&mut o, &inst.ids(), &FilterConfig::new(10));
        assert_eq!(out.survivors, inst.ids());
        assert_eq!(out.rounds, 0);
        assert_eq!(out.comparisons.total(), 0);
    }

    #[test]
    fn short_final_group_threshold_scales_to_group_size() {
        // n = 20, un = 3 → g = 12: the last group holds only 8 elements.
        // Lemma 3 requires "at most un(n) losses within the group", so the
        // survival threshold there is |G| − un = 5 wins. A threshold built
        // from the full group size (g − un = 9) is unreachable in an
        // 8-element group and would evict the champion planted at id 15.
        let mut values: Vec<f64> = (0..20).map(f64::from).collect();
        values[15] = 1000.0;
        let inst = Instance::new(values);
        assert_eq!(inst.max_element(), ElementId(15));
        let mut o = PerfectOracle::new(inst.clone());
        let out = filter_candidates(&mut o, &inst.ids(), &FilterConfig::new(3));
        assert!(
            out.survivors.contains(&ElementId(15)),
            "champion in the short final group was evicted: {:?}",
            out.survivors
        );
        assert!(out.survivors.len() < 2 * 3);
    }

    #[test]
    fn comparison_bound_lemma_3() {
        for (n, un) in [(100, 2), (500, 5), (1000, 10), (2000, 25)] {
            let inst = uniform_instance(n, n as u64);
            let mut o = PerfectOracle::new(inst.clone());
            let out = filter_candidates(&mut o, &inst.ids(), &FilterConfig::new(un));
            assert!(
                out.comparisons.naive <= (4 * n * un) as u64,
                "n={n}, un={un}: {} comparisons",
                out.comparisons.naive
            );
        }
    }

    #[test]
    fn sizes_are_recorded_and_decreasing() {
        let inst = uniform_instance(1000, 3);
        let mut o = PerfectOracle::new(inst.clone());
        let out = filter_candidates(&mut o, &inst.ids(), &FilterConfig::new(5));
        assert_eq!(out.sizes[0], 1000);
        assert_eq!(*out.sizes.last().unwrap(), out.survivors.len());
        for w in out.sizes.windows(2) {
            assert!(w[1] < w[0]);
        }
        assert_eq!(out.rounds, out.sizes.len() - 1);
    }

    #[test]
    #[should_panic(expected = "un(n) >= 1")]
    fn zero_un_panics() {
        let inst = uniform_instance(10, 4);
        let mut o = PerfectOracle::new(inst.clone());
        filter_candidates(&mut o, &inst.ids(), &FilterConfig::new(0));
    }

    #[test]
    fn global_losses_never_evict_max_and_never_cost_more() {
        for seed in 0..8 {
            let inst = uniform_instance(600, seed + 50);
            let delta_n = 15.0;
            let un = inst.indistinguishable_from_max(delta_n);
            let mk_oracle = |s| {
                let model = ExpertModel::exact(delta_n, 1.0, TiePolicy::Persistent);
                SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(s))
            };

            let mut plain_o = mk_oracle(seed);
            let plain = filter_candidates(&mut plain_o, &inst.ids(), &FilterConfig::new(un));

            let mut opt_o = mk_oracle(seed);
            let opt = filter_candidates(
                &mut opt_o,
                &inst.ids(),
                &FilterConfig::new(un).with_global_losses(),
            );

            assert!(opt.survivors.contains(&inst.max_element()), "seed {seed}");
            assert!(plain.survivors.contains(&inst.max_element()), "seed {seed}");
            // Lemma 3's size bound holds with or without the optimization.
            assert!(opt.survivors.len() <= 2 * un.max(1), "seed {seed}");
        }
    }

    #[test]
    fn cyclic_outcomes_under_underestimation_fall_back_to_champions() {
        // With un = 1 (severe underestimation) a cyclic group can leave no
        // element with g - un = 3 wins; the filter must not return an empty
        // set — it keeps the group champion instead.
        use crate::oracle::FnOracle;
        let beats = |a: u32, b: u32| -> bool {
            // Cycle 0>1>2>3>0 plus diagonals 0>2 and 3>1: max wins = 2 < 3.
            matches!((a, b), (0, 1) | (1, 2) | (2, 3) | (3, 0) | (0, 2) | (3, 1))
        };
        let mut o = FnOracle::new(
            move |_, k: ElementId, j: ElementId| {
                if beats(k.0, j.0) {
                    k
                } else {
                    j
                }
            },
        );
        let ids: Vec<ElementId> = (0..4).map(ElementId).collect();
        let out = filter_candidates(&mut o, &ids, &FilterConfig::new(1));
        assert_eq!(
            out.survivors,
            vec![ElementId(0)],
            "champion fallback expected"
        );
    }

    #[test]
    fn global_loss_pruning_can_force_the_champion_fallback() {
        // Appendix A pruning removes elements with more than `un` distinct
        // cumulative losses; this construction makes it remove *every*
        // threshold winner of round 2, so the fallback must keep the round
        // champion rather than return an empty set.
        //
        // n = 24, un = 3, g = 12: round 1 plays {0..11} and {12..23} with
        // threshold 9; exactly {0, 1, 2} and {12, 13, 14} reach 9 wins,
        // carrying 2 distinct losses each (0: {1,2}, 1: {2,3}, 2: {3,4},
        // mirrored +12). Round 2 plays the 6 survivors with threshold 3;
        // the answers below give wins (0,1,12,13) = 3 and (2,14) = (2,1),
        // and hand each 3-win element exactly 2 *new* distinct losses —
        // cumulative 4 > un, so pruning empties the winner set.
        use crate::oracle::FnOracle;
        use std::collections::HashSet;

        // Round 1, within one group (local ids, a < b): winner of (a, b).
        fn round1(a: u32, b: u32) -> u32 {
            match (a, b) {
                (0, 1) => 1,
                (0, 2) | (1, 2) => 2,
                (0, _) => 0,
                (1, 3) => 3,
                (1, _) => 1,
                (2, 3) => 3,
                (2, 4) => 4,
                (2, _) => 2,
                // Among the rest, the higher id wins (so none reaches 9).
                (_, b) => b,
            }
        }

        // Round 2, on the survivor set (global ids, a < b): winner of (a, b).
        fn round2(a: u32, b: u32) -> u32 {
            match (a, b) {
                (0, 1) | (0, 2) | (0, 14) => 0,
                (0, 12) | (12, 13) | (12, 14) => 12,
                (0, 13) | (1, 13) | (13, 14) => 13,
                (1, 2) | (1, 12) | (1, 14) => 1,
                (2, 12) | (2, 13) => 2,
                (2, 14) => 14,
                other => panic!("unexpected round-2 pair {other:?}"),
            }
        }

        let survivors_r1 = [0u32, 1, 2, 12, 13, 14];
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        let mut oracle = FnOracle::new(move |_, k: ElementId, j: ElementId| {
            let (a, b) = (k.0.min(j.0), k.0.max(j.0));
            let repeat = !seen.insert((a, b));
            let both_survive = survivors_r1.contains(&a) && survivors_r1.contains(&b);
            let cross_group = (a < 12) != (b < 12);
            let winner = if both_survive && (cross_group || repeat) {
                round2(a, b)
            } else {
                let base = if a >= 12 { 12 } else { 0 };
                base + round1(a - base, b - base)
            };
            if winner == k.0 {
                k
            } else {
                j
            }
        });

        let ids: Vec<ElementId> = (0..24).map(ElementId).collect();
        let out = filter_candidates(
            &mut oracle,
            &ids,
            &FilterConfig::new(3).with_global_losses(),
        );
        assert_eq!(out.rounds, 2);
        assert_eq!(out.sizes, vec![24, 6, 1]);
        assert_eq!(
            out.survivors,
            vec![ElementId(0)],
            "pruning emptied round 2; the fallback must keep its champion"
        );

        // The same answers without pruning keep all four threshold winners
        // — the fallback never fires on the plain path here.
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        let mut plain_oracle = FnOracle::new(move |_, k: ElementId, j: ElementId| {
            let (a, b) = (k.0.min(j.0), k.0.max(j.0));
            let repeat = !seen.insert((a, b));
            let both_survive = survivors_r1.contains(&a) && survivors_r1.contains(&b);
            let cross_group = (a < 12) != (b < 12);
            let winner = if both_survive && (cross_group || repeat) {
                round2(a, b)
            } else {
                let base = if a >= 12 { 12 } else { 0 };
                base + round1(a - base, b - base)
            };
            if winner == k.0 {
                k
            } else {
                j
            }
        });
        let plain = filter_candidates(&mut plain_oracle, &ids, &FilterConfig::new(3));
        assert_eq!(plain.rounds, 2);
        assert_eq!(
            plain.survivors,
            vec![ElementId(0), ElementId(1), ElementId(12), ElementId(13)]
        );
    }

    #[test]
    fn try_filter_matches_infallible_run_when_nothing_fails() {
        let inst = uniform_instance(200, 11);
        let mut o = PerfectOracle::new(inst.clone());
        let plain = filter_candidates(&mut o, &inst.ids(), &FilterConfig::new(3));
        let mut o2 = PerfectOracle::new(inst.clone());
        let fallible = try_filter_candidates(&mut o2, &inst.ids(), &FilterConfig::new(3)).unwrap();
        assert_eq!(plain, fallible);
    }

    #[test]
    fn try_filter_surfaces_a_mid_run_outage_and_terminates() {
        use crate::oracle::{OracleError, TryFnOracle};
        // The oracle dies after 100 honest answers; the run must neither
        // panic nor livelock, and the error must surface.
        let inst = uniform_instance(300, 12);
        let mut inner = PerfectOracle::new(inst.clone());
        let mut left = 100u32;
        let mut flaky = TryFnOracle::new(move |class, k, j| {
            if left == 0 {
                return Err(OracleError::WorkforceDepleted { class });
            }
            left -= 1;
            Ok(inner.compare(class, k, j))
        });
        let err =
            try_filter_candidates(&mut flaky, &inst.ids(), &FilterConfig::new(3)).unwrap_err();
        assert!(matches!(err, OracleError::WorkforceDepleted { .. }));
    }

    #[test]
    fn underestimated_un_may_evict_max_but_still_terminates() {
        // With un = 1 and many indistinguishable elements, M can be evicted
        // — the Section 5.2 phenomenon. The run must still terminate with a
        // small survivor set.
        let values: Vec<f64> = (0..100).map(|i| 1000.0 - (i as f64) * 0.01).collect();
        let inst = Instance::new(values);
        let model = ExpertModel::exact(50.0, 0.0, TiePolicy::FavorLower);
        let mut o = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(5));
        let out = filter_candidates(&mut o, &inst.ids(), &FilterConfig::new(1));
        assert!(out.survivors.len() <= 1);
    }
}
