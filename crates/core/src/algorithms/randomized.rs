//! Algorithm 5 — the randomized second-phase algorithm (Ajtai et al.
//! \[2, Section 3.2\]; paper Appendix B.3).
//!
//! Performs `Θ(s)` comparisons and returns, with high probability, an
//! element within `3δ` of the maximum:
//!
//! 1. while at least `s^{0.3}` elements survive: sample `⌈s^{0.3}⌉`
//!    survivors at random into a witness set `W`; randomly partition the
//!    survivors into sets of size `80(c + 2)`; play an all-play-all
//!    tournament in each set and remove its *minimal* element (fewest wins,
//!    ties broken arbitrarily);
//! 2. add the remaining survivors to `W` and play a final all-play-all
//!    tournament among `W`; return the element with the most wins.
//!
//! The paper keeps this algorithm for the theoretical analysis (it yields
//! the asymptotically optimal `Θ(un(n))` expert comparisons of Lemma 5) but
//! uses 2-MaxFind in the experiments, because "the constants are so high
//! that for the values of n of our interest they lead to a much higher
//! cost" — a claim our benchmarks reproduce.
//!
//! Implementation notes on the pseudocode's edge cases:
//!
//! * groups smaller than two cannot certify a minimal element, so nothing is
//!   removed from them (removing the sole member of a singleton group could
//!   silently discard the maximum);
//! * if a round removes nothing (possible only when every group is a
//!   singleton, i.e. `80(c+2) > |N_i|` and the partition degenerated), the
//!   loop exits — the survivors all go to `W` anyway.

use crate::element::ElementId;
use crate::model::WorkerClass;
use crate::oracle::{ComparisonCounts, ComparisonOracle};
use crate::tournament::Tournament;
use rand::seq::SliceRandom;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Configuration for [`randomized_max_find`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomizedConfig {
    /// The confidence constant `c`: the failure probability is `|S|^{-c}`
    /// and the group size is `80(c + 2)`.
    pub c: u32,
    /// Optional replacement for the theoretical group size `80(c + 2)`.
    ///
    /// The theoretical constant targets asymptotically large inputs; at the
    /// problem sizes of the paper's experiments it makes every round a
    /// near-quadratic tournament (the very reason the paper uses 2-MaxFind
    /// in practice). A small override (e.g. 8–16) preserves the algorithm's
    /// *structure* — random groups, remove the weakest, witness sampling —
    /// at simulation-friendly cost, at the price of the formal whp constant.
    pub group_size_override: Option<usize>,
}

impl RandomizedConfig {
    /// The faithful configuration with confidence constant `c` (groups of
    /// `80(c + 2)`).
    pub fn new(c: u32) -> Self {
        RandomizedConfig {
            c,
            group_size_override: None,
        }
    }

    /// Replaces the group size (must be at least 2).
    ///
    /// # Panics
    ///
    /// Panics if `size < 2` — a group needs two members to certify a
    /// minimal element.
    pub fn with_group_size(mut self, size: usize) -> Self {
        assert!(size >= 2, "group size must be at least 2");
        self.group_size_override = Some(size);
        self
    }

    /// Group size used for the per-round tournaments: the override if set,
    /// else the theoretical `80(c + 2)`.
    pub fn group_size(&self) -> usize {
        self.group_size_override
            .unwrap_or(80 * (self.c as usize + 2))
    }
}

impl Default for RandomizedConfig {
    fn default() -> Self {
        RandomizedConfig::new(1)
    }
}

/// Result of a randomized max-find run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomizedOutcome {
    /// The returned element.
    pub winner: ElementId,
    /// Rounds of the elimination loop.
    pub rounds: usize,
    /// Size of the witness set `W` in the final tournament.
    pub witness_size: usize,
    /// Comparisons performed.
    pub comparisons: ComparisonCounts,
}

/// Runs Algorithm 5 over `elements` with workers of `class`.
///
/// # Panics
///
/// Panics if `elements` is empty.
pub fn randomized_max_find<O: ComparisonOracle, R: RngCore>(
    oracle: &mut O,
    class: WorkerClass,
    elements: &[ElementId],
    config: &RandomizedConfig,
    rng: &mut R,
) -> RandomizedOutcome {
    assert!(
        !elements.is_empty(),
        "randomized max-find needs at least one element"
    );
    let start = oracle.counts();
    let s = elements.len();
    let sample_size = (s as f64).powf(0.3).ceil() as usize;
    let stop_below = sample_size.max(1);
    let group_size = config.group_size();

    let mut survivors: Vec<ElementId> = elements.to_vec();
    let mut witnesses: HashSet<ElementId> = HashSet::new();
    let mut rounds = 0usize;

    while survivors.len() >= stop_below && survivors.len() > 1 {
        // Step 3: sample witnesses from the survivors.
        for &e in survivors.choose_multiple(rng, sample_size.min(survivors.len())) {
            witnesses.insert(e);
        }

        // Step 4: random partition into groups of 80(c + 2).
        survivors.shuffle(rng);
        let mut removed: HashSet<ElementId> = HashSet::new();
        for group in survivors.chunks(group_size) {
            if group.len() < 2 {
                continue; // cannot certify a minimal element
            }
            let t = Tournament::all_play_all(oracle, class, group);
            let weakest = t.weakest().expect("group has at least two members");
            removed.insert(weakest);
        }
        if removed.is_empty() {
            break; // degenerate partition; survivors go straight to W
        }
        survivors.retain(|e| !removed.contains(e));
        rounds += 1;
    }

    // Step 9: W <- W ∪ N_i, then a final tournament.
    for &e in &survivors {
        witnesses.insert(e);
    }
    let mut w: Vec<ElementId> = witnesses.into_iter().collect();
    w.sort_unstable(); // determinism: HashSet order is arbitrary
    let final_tour = Tournament::all_play_all(oracle, class, &w);
    let winner = final_tour.champion().expect("W contains the survivors");

    RandomizedOutcome {
        winner,
        rounds,
        witness_size: w.len(),
        comparisons: oracle
            .counts()
            .delta_since(start)
            .unwrap_or_else(|e| panic!("{e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Instance;
    use crate::model::{ExpertModel, TiePolicy};
    use crate::oracle::{PerfectOracle, SimulatedOracle};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_instance(n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        Instance::new((0..n).map(|_| rng.gen_range(0.0..1000.0)).collect())
    }

    #[test]
    fn perfect_oracle_finds_exact_max() {
        for n in [1, 2, 5, 50, 300] {
            let inst = uniform_instance(n, n as u64);
            let mut o = PerfectOracle::new(inst.clone());
            let mut rng = StdRng::seed_from_u64(42);
            let out = randomized_max_find(
                &mut o,
                WorkerClass::Expert,
                &inst.ids(),
                &RandomizedConfig::default().with_group_size(12),
                &mut rng,
            );
            assert_eq!(out.winner, inst.max_element(), "n = {n}");
        }
    }

    #[test]
    fn faithful_group_size_still_finds_max_on_small_input() {
        // Theoretical group size (240) larger than the input: the partition
        // degenerates to one group per round, removing one element per
        // round — slow, but correct.
        let inst = uniform_instance(60, 21);
        let mut o = PerfectOracle::new(inst.clone());
        let mut rng = StdRng::seed_from_u64(22);
        let out = randomized_max_find(
            &mut o,
            WorkerClass::Expert,
            &inst.ids(),
            &RandomizedConfig::default(),
            &mut rng,
        );
        assert_eq!(out.winner, inst.max_element());
    }

    #[test]
    fn within_three_delta_under_threshold_model() {
        let mut failures = 0;
        let trials = 30;
        for seed in 0..trials {
            let inst = uniform_instance(500, seed);
            let delta = 20.0;
            let model = ExpertModel::exact(delta, delta, TiePolicy::UniformRandom);
            let mut o = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed + 1));
            let mut rng = StdRng::seed_from_u64(seed + 2);
            let out = randomized_max_find(
                &mut o,
                WorkerClass::Expert,
                &inst.ids(),
                &RandomizedConfig::default().with_group_size(8),
                &mut rng,
            );
            let gap = inst.max_value() - inst.value(out.winner);
            if gap > 3.0 * delta {
                failures += 1;
            }
        }
        // "whp" — allow a small number of failures over 30 trials.
        assert!(failures <= 1, "{failures}/{trials} runs exceeded 3δ");
    }

    #[test]
    fn linear_comparison_growth() {
        // Θ(s): comparisons grow roughly linearly (each element plays O(1)
        // group tournaments of constant size, plus a o(s) final tournament).
        let count = |n: usize| {
            let inst = uniform_instance(n, 9);
            let mut o = PerfectOracle::new(inst.clone());
            let mut rng = StdRng::seed_from_u64(10);
            randomized_max_find(
                &mut o,
                WorkerClass::Expert,
                &inst.ids(),
                &RandomizedConfig::default().with_group_size(16),
                &mut rng,
            )
            .comparisons
            .expert
        };
        let c1 = count(2000);
        let c2 = count(4000);
        let ratio = c2 as f64 / c1 as f64;
        assert!(
            ratio < 3.0,
            "doubling n multiplied comparisons by {ratio} — not linear"
        );
    }

    #[test]
    fn rounds_and_witnesses_reported() {
        let inst = uniform_instance(1000, 11);
        let mut o = PerfectOracle::new(inst.clone());
        let mut rng = StdRng::seed_from_u64(12);
        let out = randomized_max_find(
            &mut o,
            WorkerClass::Expert,
            &inst.ids(),
            &RandomizedConfig::default(),
            &mut rng,
        );
        assert!(out.rounds > 0);
        assert!(out.witness_size >= 1);
    }

    #[test]
    fn group_size_formula() {
        assert_eq!(RandomizedConfig::new(0).group_size(), 160);
        assert_eq!(RandomizedConfig::new(1).group_size(), 240);
        assert_eq!(RandomizedConfig::new(3).group_size(), 400);
        assert_eq!(RandomizedConfig::new(1).with_group_size(8).group_size(), 8);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn group_size_override_below_two_panics() {
        RandomizedConfig::new(1).with_group_size(1);
    }

    #[test]
    fn singleton_input() {
        let inst = Instance::new(vec![1.0]);
        let mut o = PerfectOracle::new(inst);
        let mut rng = StdRng::seed_from_u64(1);
        let out = randomized_max_find(
            &mut o,
            WorkerClass::Naive,
            &[ElementId(0)],
            &RandomizedConfig::default(),
            &mut rng,
        );
        assert_eq!(out.winner, ElementId(0));
        assert_eq!(out.comparisons.total(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn empty_input_panics() {
        let mut o = PerfectOracle::new(Instance::new(vec![1.0]));
        let mut rng = StdRng::seed_from_u64(1);
        randomized_max_find(
            &mut o,
            WorkerClass::Naive,
            &[],
            &RandomizedConfig::default(),
            &mut rng,
        );
    }
}
