//! The max-finding algorithms of Section 4, their building blocks, and the
//! baselines of Section 5.
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Algorithm 1 (two-phase expert-aware max) | [`expert_max_find`] |
//! | Algorithm 2 (naïve filtering, Phase 1) | [`filter_candidates`] |
//! | Algorithm 3 (2-MaxFind, deterministic Phase 2) | [`two_max_find`] |
//! | Algorithm 5 (randomized Phase 2) | [`randomized_max_find`] |
//! | 2-MaxFind-naïve / 2-MaxFind-expert baselines | [`two_max_find_naive`], [`two_max_find_expert`] |
//! | Majority voting (Figure 2 methodology) | [`majority_compare`] |
//! | Top-k extension (adjacent work, Davidson et al.) | [`top_k_find`] |
//! | Near-sorting (adjacent work, Ajtai et al.) | [`near_sort`], [`expert_rank`] |

mod baselines;
mod expert_max;
mod filter;
mod majority;
mod randomized;
mod sorting;
mod topk;
mod two_maxfind;

pub use baselines::{all_play_all_max, linear_scan_max, two_max_find_expert, two_max_find_naive};
pub use expert_max::{
    expert_max_find, try_expert_max_find, ExpertMaxConfig, ExpertMaxOutcome, Phase2,
};
pub use filter::{filter_candidates, try_filter_candidates, FilterConfig, FilterOutcome};
pub use majority::{majority_compare, majority_prefix_correct};
pub use randomized::{randomized_max_find, RandomizedConfig, RandomizedOutcome};
pub use sorting::{
    expert_rank, footrule, max_displacement, near_sort, ExpertRankConfig, SortOutcome,
};
pub use topk::{top_k_find, TopKConfig, TopKOutcome};
pub use two_maxfind::{two_max_find, two_max_find_comparison_bound, TwoMaxFindOutcome};
