//! Baseline max-finding strategies the paper compares against
//! (Section 5.1) plus classical single-class references.
//!
//! * [`two_max_find_naive`] / [`two_max_find_expert`] — 2-MaxFind run on
//!   the *whole* input with a single worker class: the paper's
//!   "2-MaxFind-naïve" and "2-MaxFind-expert" comparison points.
//! * [`all_play_all_max`] — the `Θ(n²)` tournament champion.
//! * [`linear_scan_max`] — the textbook `n − 1`-comparison champion scan,
//!   which under the threshold model can drift arbitrarily far below the
//!   maximum (each hard comparison can lose another `δ`), a useful
//!   illustration of why tournaments are needed at all.

use super::two_maxfind::{two_max_find, TwoMaxFindOutcome};
use crate::element::ElementId;
use crate::model::WorkerClass;
use crate::oracle::ComparisonOracle;
use crate::tournament::Tournament;

/// 2-MaxFind over all of `elements` using only naïve workers
/// ("2-MaxFind-naïve"). Cheap but inaccurate when `un(n)` is large: the
/// returned element is only guaranteed within `2δn` of the maximum.
pub fn two_max_find_naive<O: ComparisonOracle>(
    oracle: &mut O,
    elements: &[ElementId],
) -> TwoMaxFindOutcome {
    two_max_find(oracle, WorkerClass::Naive, elements)
}

/// 2-MaxFind over all of `elements` using only experts
/// ("2-MaxFind-expert"). Most accurate (within `2δe`), but every one of its
/// `O(n^{3/2})` comparisons is billed at the expert rate.
pub fn two_max_find_expert<O: ComparisonOracle>(
    oracle: &mut O,
    elements: &[ElementId],
) -> TwoMaxFindOutcome {
    two_max_find(oracle, WorkerClass::Expert, elements)
}

/// All-play-all champion with a single class: `n(n-1)/2` comparisons,
/// winner within `2δ` of the maximum.
pub fn all_play_all_max<O: ComparisonOracle>(
    oracle: &mut O,
    class: WorkerClass,
    elements: &[ElementId],
) -> ElementId {
    Tournament::all_play_all(oracle, class, elements)
        .champion()
        .expect("all_play_all_max needs at least one element")
}

/// Linear champion scan: keep a running champion and compare it against
/// each next element, `n − 1` comparisons total.
///
/// Correct with perfect comparators; under the threshold model the champion
/// can lose `δ` per hard comparison, so the result can end up `Ω(n·δ)`
/// below the maximum — no constant-factor guarantee exists.
pub fn linear_scan_max<O: ComparisonOracle>(
    oracle: &mut O,
    class: WorkerClass,
    elements: &[ElementId],
) -> ElementId {
    let mut iter = elements.iter().copied();
    let mut champion = iter
        .next()
        .expect("linear_scan_max needs at least one element");
    for e in iter {
        champion = oracle.compare(class, champion, e);
    }
    champion
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Instance;
    use crate::model::{ExpertModel, TiePolicy};
    use crate::oracle::{PerfectOracle, SimulatedOracle};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_instance(n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        Instance::new((0..n).map(|_| rng.gen_range(0.0..1000.0)).collect())
    }

    #[test]
    fn all_baselines_agree_with_perfect_workers() {
        let inst = uniform_instance(150, 1);
        let m = inst.max_element();
        let mut o = PerfectOracle::new(inst.clone());
        assert_eq!(two_max_find_naive(&mut o, &inst.ids()).winner, m);
        assert_eq!(two_max_find_expert(&mut o, &inst.ids()).winner, m);
        assert_eq!(all_play_all_max(&mut o, WorkerClass::Naive, &inst.ids()), m);
        assert_eq!(linear_scan_max(&mut o, WorkerClass::Naive, &inst.ids()), m);
    }

    #[test]
    fn naive_baseline_uses_naive_workers_only() {
        let inst = uniform_instance(60, 2);
        let model = ExpertModel::exact(10.0, 1.0, TiePolicy::UniformRandom);
        let mut o = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(3));
        let out = two_max_find_naive(&mut o, &inst.ids());
        assert_eq!(out.comparisons.expert, 0);
        assert!(out.comparisons.naive > 0);
    }

    #[test]
    fn expert_baseline_uses_experts_only() {
        let inst = uniform_instance(60, 4);
        let model = ExpertModel::exact(10.0, 1.0, TiePolicy::UniformRandom);
        let mut o = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(5));
        let out = two_max_find_expert(&mut o, &inst.ids());
        assert_eq!(out.comparisons.naive, 0);
        assert!(out.comparisons.expert > 0);
    }

    #[test]
    fn expert_baseline_beats_naive_on_hard_instances() {
        // Large δn, tiny δe: the naïve baseline's winner is typically far
        // from the max; the expert one is within 2δe. Averaged over seeds.
        let mut naive_gap = 0.0;
        let mut expert_gap = 0.0;
        for seed in 0..10 {
            let inst = uniform_instance(200, seed + 10);
            let model = ExpertModel::exact(100.0, 1.0, TiePolicy::UniformRandom);
            let mut o = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed));
            naive_gap +=
                inst.max_value() - inst.value(two_max_find_naive(&mut o, &inst.ids()).winner);
            expert_gap +=
                inst.max_value() - inst.value(two_max_find_expert(&mut o, &inst.ids()).winner);
        }
        assert!(
            expert_gap < naive_gap,
            "expert total gap {expert_gap} >= naive total gap {naive_gap}"
        );
        assert!(expert_gap <= 10.0 * 2.0, "expert gap exceeds 2δe per run");
    }

    #[test]
    fn linear_scan_uses_n_minus_one_comparisons() {
        let inst = uniform_instance(100, 6);
        let mut o = PerfectOracle::new(inst.clone());
        linear_scan_max(&mut o, WorkerClass::Naive, &inst.ids());
        assert_eq!(o.counts().naive, 99);
    }

    #[test]
    fn linear_scan_drifts_under_adversarial_threshold() {
        // Descending chain spaced just under δ: the scan's champion loses
        // every hard comparison and ends at the bottom.
        let n = 50;
        let values: Vec<f64> = (0..n).map(|i| 1000.0 - i as f64 * 0.9).collect();
        let inst = Instance::new(values);
        let model = ExpertModel::exact(1.0, 0.0, TiePolicy::FavorLower);
        let mut o = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(7));
        let winner = linear_scan_max(&mut o, WorkerClass::Naive, &inst.ids());
        let gap = inst.max_value() - inst.value(winner);
        assert!(gap > 10.0, "expected unbounded drift, got gap {gap}");
    }
}
