//! Majority voting over repeated comparisons (paper Sections 3.1–3.2).
//!
//! Under the probabilistic model with error `p < 1/2`, asking `k` workers
//! the same question and taking the majority drives the error below
//! `exp(-(1-2p)² k / (8(1-p)))` — the wisdom-of-crowds effect measured on
//! DOTS (Figure 2a). Under the threshold model, repetition does **not**
//! help below the threshold — the CARS plateau (Figure 2b). Both behaviours
//! are exercised by `crowd-experiments::fig2`.

use crate::element::ElementId;
use crate::model::WorkerClass;
use crate::oracle::ComparisonOracle;

/// Asks `votes` workers of `class` to compare `k` and `j` and returns the
/// majority answer (ties broken towards the element with the smaller id, so
/// the outcome is deterministic; use an odd `votes` to avoid ties).
///
/// Each vote is a *fresh* judgment: callers must not hand a memoizing
/// oracle to this function, or all votes collapse into one.
///
/// # Panics
///
/// Panics if `votes == 0`.
pub fn majority_compare<O: ComparisonOracle>(
    oracle: &mut O,
    class: WorkerClass,
    k: ElementId,
    j: ElementId,
    votes: u32,
) -> ElementId {
    assert!(votes > 0, "at least one vote is required");
    let mut k_wins = 0u32;
    for _ in 0..votes {
        if oracle.compare(class, k, j) == k {
            k_wins += 1;
        }
    }
    let j_wins = votes - k_wins;
    if k_wins > j_wins || (k_wins == j_wins && k < j) {
        k
    } else {
        j
    }
}

/// Accuracy of incremental majority votes: asks `max_votes` workers once,
/// then reports, for every prefix `1..=max_votes` (the paper plots odd
/// prefixes), whether the majority over that prefix picks `truth`.
///
/// This mirrors the paper's Figure 2 methodology: "on the x-axis we vary
/// the number of workers whose (independent) responses we observe, ordered
/// by time of response, and on the y-axis the aggregate accuracy when we
/// take a majority vote".
pub fn majority_prefix_correct<O: ComparisonOracle>(
    oracle: &mut O,
    class: WorkerClass,
    k: ElementId,
    j: ElementId,
    truth: ElementId,
    max_votes: u32,
) -> Vec<bool> {
    assert!(
        truth == k || truth == j,
        "truth must be one of the compared elements"
    );
    let mut k_wins = 0u32;
    let mut out = Vec::with_capacity(max_votes as usize);
    for v in 1..=max_votes {
        if oracle.compare(class, k, j) == k {
            k_wins += 1;
        }
        let j_wins = v - k_wins;
        let majority = if k_wins > j_wins || (k_wins == j_wins && k < j) {
            k
        } else {
            j
        };
        out.push(majority == truth);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Instance;
    use crate::model::{ExpertModel, TiePolicy};
    use crate::oracle::{PerfectOracle, SimulatedOracle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const A: ElementId = ElementId(0);
    const B: ElementId = ElementId(1);

    fn probabilistic_oracle(p: f64, seed: u64) -> SimulatedOracle<StdRng> {
        // δ = 0 threshold model = probabilistic model with error ε = p.
        let model = ExpertModel::new(0.0, p, 0.0, p, TiePolicy::UniformRandom);
        SimulatedOracle::new(
            Instance::new(vec![1.0, 2.0]),
            model,
            StdRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn majority_beats_single_vote_under_probabilistic_errors() {
        let trials = 400;
        let mut single_ok = 0;
        let mut majority_ok = 0;
        let mut o = probabilistic_oracle(0.35, 1);
        for _ in 0..trials {
            if o.compare(WorkerClass::Naive, A, B) == B {
                single_ok += 1;
            }
            if majority_compare(&mut o, WorkerClass::Naive, A, B, 21) == B {
                majority_ok += 1;
            }
        }
        assert!(
            majority_ok > single_ok,
            "majority {majority_ok} <= single {single_ok}"
        );
        assert!(majority_ok as f64 / trials as f64 > 0.85);
    }

    #[test]
    fn majority_does_not_help_below_threshold() {
        // δ = 10 with d(A, B) = 1: every vote is a coin flip; 21 votes give
        // ~50% accuracy — the CARS plateau.
        let model = ExpertModel::exact(10.0, 10.0, TiePolicy::UniformRandom);
        let mut o = SimulatedOracle::new(
            Instance::new(vec![1.0, 2.0]),
            model,
            StdRng::seed_from_u64(2),
        );
        let trials = 600;
        let ok = (0..trials)
            .filter(|_| majority_compare(&mut o, WorkerClass::Naive, A, B, 21) == B)
            .count();
        let acc = ok as f64 / trials as f64;
        assert!((acc - 0.5).abs() < 0.08, "plateau accuracy {acc}");
    }

    #[test]
    fn majority_counts_every_vote() {
        let mut o = probabilistic_oracle(0.0, 3);
        majority_compare(&mut o, WorkerClass::Naive, A, B, 7);
        assert_eq!(o.counts().naive, 7);
    }

    #[test]
    fn even_vote_ties_break_to_smaller_id() {
        // A deterministic oracle alternating answers produces a 1-1 tie.
        use crate::oracle::FnOracle;
        let mut flip = false;
        let mut o = FnOracle::new(move |_, k, j| {
            flip = !flip;
            if flip {
                k
            } else {
                j
            }
        });
        assert_eq!(majority_compare(&mut o, WorkerClass::Naive, A, B, 2), A);
        assert_eq!(majority_compare(&mut o, WorkerClass::Naive, B, A, 2), A);
    }

    #[test]
    fn prefix_accuracy_has_expected_length_and_truth() {
        let mut o = PerfectOracle::new(Instance::new(vec![1.0, 2.0]));
        let prefix = majority_prefix_correct(&mut o, WorkerClass::Naive, A, B, B, 9);
        assert_eq!(prefix.len(), 9);
        assert!(
            prefix.iter().all(|&ok| ok),
            "perfect workers are always right"
        );
    }

    #[test]
    #[should_panic(expected = "at least one vote")]
    fn zero_votes_panics() {
        let mut o = PerfectOracle::new(Instance::new(vec![1.0, 2.0]));
        majority_compare(&mut o, WorkerClass::Naive, A, B, 0);
    }

    #[test]
    #[should_panic(expected = "truth must be one")]
    fn prefix_rejects_foreign_truth() {
        let mut o = PerfectOracle::new(Instance::new(vec![1.0, 2.0, 3.0]));
        majority_prefix_correct(&mut o, WorkerClass::Naive, A, B, ElementId(2), 3);
    }
}
