//! Algorithm 3 — 2-MaxFind (Ajtai et al. \[2, Section 3.1\]).
//!
//! Deterministic near-max selection under imprecise comparisons. Starting
//! from all `s` input elements as candidates:
//!
//! 1. while more than `⌈√s⌉` candidates remain: pick an arbitrary set of
//!    `⌈√s⌉` candidates, play an all-play-all tournament among them, let `x`
//!    be the element with the most wins; compare `x` against every candidate
//!    and eliminate all candidates that lose to `x`;
//! 2. play a final all-play-all tournament among the at most `⌈√s⌉`
//!    survivors and return the element with the most wins.
//!
//! Under `T(δ, 0)` with consistent answers it returns an element within
//! `2δ` of the maximum — the best achievable in the model \[2\] — using at
//! most `2·s^{3/2}` comparisons (paper Theorem 1).
//!
//! The implementation memoizes comparisons within the run (the paper:
//! "assuming that we memorize results and we do not repeat comparisons").
//! Besides saving cost, memoization guarantees termination even against an
//! oracle whose hard answers are inconsistent coin flips: the round's
//! champion `x` beat at least `⌈(√s − 1)/2⌉` group members in the
//! tournament, and the memo makes those eliminations stick.

use crate::element::ElementId;
use crate::model::WorkerClass;
use crate::oracle::{ComparisonCounts, ComparisonOracle};
use crate::tournament::Tournament;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Result of a 2-MaxFind run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoMaxFindOutcome {
    /// The returned element (the final tournament's champion).
    pub winner: ElementId,
    /// Elimination rounds executed before the final tournament.
    pub rounds: usize,
    /// Ranking of the final tournament, best first — the "ranking of the
    /// last round" the paper reports in Tables 1 and 2.
    pub final_ranking: Vec<(ElementId, u32)>,
    /// Comparisons performed (by the requested class only).
    pub comparisons: ComparisonCounts,
}

/// A memoizing comparison wrapper local to one algorithm run.
struct RunMemo<'a, O> {
    oracle: &'a mut O,
    class: WorkerClass,
    memo: HashMap<(ElementId, ElementId), ElementId>,
}

impl<'a, O: ComparisonOracle> RunMemo<'a, O> {
    fn new(oracle: &'a mut O, class: WorkerClass) -> Self {
        RunMemo {
            oracle,
            class,
            memo: HashMap::new(),
        }
    }

    fn compare(&mut self, k: ElementId, j: ElementId) -> ElementId {
        let key = if k < j { (k, j) } else { (j, k) };
        if let Some(&w) = self.memo.get(&key) {
            return w;
        }
        let w = self.oracle.compare(self.class, k, j);
        self.memo.insert(key, w);
        w
    }
}

impl<O: ComparisonOracle> ComparisonOracle for RunMemo<'_, O> {
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
        debug_assert_eq!(class, self.class, "RunMemo is single-class");
        RunMemo::compare(self, k, j)
    }
    fn counts(&self) -> ComparisonCounts {
        self.oracle.counts()
    }
}

/// Runs 2-MaxFind over `elements`, with all comparisons performed by
/// workers of `class`.
///
/// ```
/// use crowd_core::prelude::*;
///
/// let instance = Instance::new(vec![3.0, 9.0, 1.0, 7.0, 5.0]);
/// let mut oracle = PerfectOracle::new(instance.clone());
/// let out = two_max_find(&mut oracle, WorkerClass::Expert, &instance.ids());
/// assert_eq!(out.winner, instance.max_element());
/// ```
///
/// # Panics
///
/// Panics if `elements` is empty or contains duplicates.
pub fn two_max_find<O: ComparisonOracle>(
    oracle: &mut O,
    class: WorkerClass,
    elements: &[ElementId],
) -> TwoMaxFindOutcome {
    assert!(!elements.is_empty(), "2-MaxFind needs at least one element");
    let start = oracle.counts();
    let s = elements.len();
    let t = (s as f64).sqrt().ceil() as usize;
    let mut memo = RunMemo::new(oracle, class);

    let mut candidates: Vec<ElementId> = elements.to_vec();
    let mut rounds = 0usize;
    while candidates.len() > t {
        // "Pick an arbitrary set of ⌈√s⌉ candidate elements": the first t.
        let group: Vec<ElementId> = candidates[..t].to_vec();
        let tour = Tournament::all_play_all(&mut memo, class, &group);
        let x = tour.champion().expect("group is non-empty");
        // Eliminate every candidate that loses to x (x keeps itself).
        candidates.retain(|&e| e == x || memo.compare(x, e) == e);
        rounds += 1;
    }

    let final_tour = Tournament::all_play_all(&mut memo, class, &candidates);
    let winner = final_tour.champion().expect("candidates are non-empty");
    TwoMaxFindOutcome {
        winner,
        rounds,
        final_ranking: final_tour.ranking(),
        comparisons: oracle.counts() - start,
    }
}

/// Worst-case comparison bound for [`two_max_find`] on `s` elements:
/// `2·s^{3/2}` (paper Theorem 1).
pub fn two_max_find_comparison_bound(s: usize) -> u64 {
    (2.0 * (s as f64).powf(1.5)).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Instance;
    use crate::model::{ExpertModel, TiePolicy};
    use crate::oracle::{PerfectOracle, SimulatedOracle};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_instance(n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        Instance::new((0..n).map(|_| rng.gen_range(0.0..1000.0)).collect())
    }

    #[test]
    fn perfect_oracle_finds_exact_max() {
        for n in [1, 2, 3, 10, 50, 137] {
            let inst = uniform_instance(n, n as u64);
            let mut o = PerfectOracle::new(inst.clone());
            let out = two_max_find(&mut o, WorkerClass::Expert, &inst.ids());
            assert_eq!(out.winner, inst.max_element(), "n = {n}");
            assert_eq!(out.comparisons.naive, 0);
        }
    }

    #[test]
    fn within_two_delta_under_threshold_model() {
        for seed in 0..20 {
            let inst = uniform_instance(120, seed);
            let delta = 25.0;
            let model = ExpertModel::exact(delta, delta, TiePolicy::UniformRandom);
            let mut o =
                SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed + 1000));
            let out = two_max_find(&mut o, WorkerClass::Expert, &inst.ids());
            let gap = inst.max_value() - inst.value(out.winner);
            assert!(
                gap <= 2.0 * delta,
                "seed {seed}: returned {gap} below the max"
            );
        }
    }

    #[test]
    fn within_two_delta_under_adversarial_ties() {
        for seed in 0..20 {
            let inst = uniform_instance(100, seed + 40);
            let delta = 30.0;
            let model = ExpertModel::exact(delta, delta, TiePolicy::FavorLower);
            let mut o = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed));
            let out = two_max_find(&mut o, WorkerClass::Expert, &inst.ids());
            let gap = inst.max_value() - inst.value(out.winner);
            assert!(gap <= 2.0 * delta, "seed {seed}: gap {gap} > 2δ");
        }
    }

    #[test]
    fn two_delta_holds_on_adversarial_tight_chains() {
        // Crafted worst-case geometry: a dense descending chain where every
        // √s-group lies entirely inside the threshold, with the adversarial
        // tie policy that always crowns the smallest element. The chained
        // eliminations could in principle walk the value down δ per round;
        // the group-span bound keeps the total within 2δ.
        let delta = 10.0;
        for (n, spacing) in [(100usize, 1.0), (500, 0.1), (1000, 0.05), (400, 0.2)] {
            let values: Vec<f64> = (0..n).map(|i| 1000.0 - i as f64 * spacing).collect();
            let inst = Instance::new(values);
            let model = ExpertModel::exact(delta, delta, TiePolicy::FavorLower);
            let mut o = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(1));
            let out = two_max_find(&mut o, WorkerClass::Expert, &inst.ids());
            let gap = inst.max_value() - inst.value(out.winner);
            assert!(
                gap <= 2.0 * delta,
                "n={n} spacing={spacing}: gap {gap} > 2δ"
            );
        }
    }

    #[test]
    fn comparison_bound_theorem_1() {
        for n in [10, 50, 100, 400, 1000] {
            let inst = uniform_instance(n, n as u64 + 7);
            // Adversarial ties maximize work.
            let model = ExpertModel::exact(50.0, 50.0, TiePolicy::FavorLower);
            let mut o = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(1));
            let out = two_max_find(&mut o, WorkerClass::Expert, &inst.ids());
            assert!(
                out.comparisons.expert <= two_max_find_comparison_bound(n),
                "n = {n}: {} > 2n^1.5",
                out.comparisons.expert
            );
        }
    }

    #[test]
    fn terminates_against_inconsistent_coin_flip_oracle() {
        // Every answer a fresh fair coin: memoization must still force
        // progress and termination.
        use crate::oracle::FnOracle;
        let mut rng = StdRng::seed_from_u64(99);
        let mut o = FnOracle::new(move |_, k, j| if rng.gen_bool(0.5) { k } else { j });
        let ids: Vec<ElementId> = (0..200).map(ElementId).collect();
        let out = two_max_find(&mut o, WorkerClass::Naive, &ids);
        assert!(ids.contains(&out.winner));
    }

    #[test]
    fn final_ranking_covers_survivors_and_leads_with_winner() {
        let inst = uniform_instance(64, 3);
        let mut o = PerfectOracle::new(inst.clone());
        let out = two_max_find(&mut o, WorkerClass::Expert, &inst.ids());
        assert_eq!(out.final_ranking[0].0, out.winner);
        assert!(out.final_ranking.len() <= (64f64).sqrt().ceil() as usize);
        for w in out.final_ranking.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn single_and_two_element_inputs() {
        let inst = Instance::new(vec![5.0, 9.0]);
        let mut o = PerfectOracle::new(inst.clone());
        let out = two_max_find(&mut o, WorkerClass::Naive, &inst.ids());
        assert_eq!(out.winner, ElementId(1));

        let one = Instance::new(vec![5.0]);
        let mut o1 = PerfectOracle::new(one);
        let out1 = two_max_find(&mut o1, WorkerClass::Naive, &[ElementId(0)]);
        assert_eq!(out1.winner, ElementId(0));
        assert_eq!(out1.comparisons.total(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn empty_input_panics() {
        let mut o = PerfectOracle::new(Instance::new(vec![1.0]));
        two_max_find(&mut o, WorkerClass::Naive, &[]);
    }

    #[test]
    fn bound_function_values() {
        assert_eq!(two_max_find_comparison_bound(1), 2);
        assert_eq!(two_max_find_comparison_bound(4), 16);
        assert_eq!(two_max_find_comparison_bound(100), 2000);
    }
}
