//! Algorithm 3 — 2-MaxFind (Ajtai et al. \[2, Section 3.1\]).
//!
//! Deterministic near-max selection under imprecise comparisons. Starting
//! from all `s` input elements as candidates:
//!
//! 1. while more than `⌈√s⌉` candidates remain: pick an arbitrary set of
//!    `⌈√s⌉` candidates, play an all-play-all tournament among them, let `x`
//!    be the element with the most wins; compare `x` against every candidate
//!    and eliminate all candidates that lose to `x`;
//! 2. play a final all-play-all tournament among the at most `⌈√s⌉`
//!    survivors and return the element with the most wins.
//!
//! Under `T(δ, 0)` with consistent answers it returns an element within
//! `2δ` of the maximum — the best achievable in the model \[2\] — using at
//! most `2·s^{3/2}` comparisons (paper Theorem 1).
//!
//! The implementation memoizes comparisons within the run (the paper:
//! "assuming that we memorize results and we do not repeat comparisons").
//! Besides saving cost, memoization guarantees termination even against an
//! oracle whose hard answers are inconsistent coin flips: the round's
//! champion `x` beat at least `⌈(√s − 1)/2⌉` group members in the
//! tournament, and the memo makes those eliminations stick.

use crate::element::ElementId;
use crate::model::WorkerClass;
use crate::oracle::{ComparisonCounts, ComparisonOracle};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Result of a 2-MaxFind run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoMaxFindOutcome {
    /// The returned element (the final tournament's champion).
    pub winner: ElementId,
    /// Elimination rounds executed before the final tournament.
    pub rounds: usize,
    /// Ranking of the final tournament, best first — the "ranking of the
    /// last round" the paper reports in Tables 1 and 2.
    pub final_ranking: Vec<(ElementId, u32)>,
    /// Comparisons performed (by the requested class only).
    pub comparisons: ComparisonCounts,
}

/// Candidate counts up to this size memoize into a flat `s × s` byte table
/// (one byte per unordered pair, ≤ 16 MiB); larger runs fall back to a
/// hash map so memory stays `O(comparisons)` rather than `O(s²)`.
const DENSE_MEMO_LIMIT: usize = 4096;

/// A memoizing comparison layer local to one algorithm run.
///
/// Elements are addressed by their dense index into the input slice, so
/// the common case is a single flat-table probe per comparison — no
/// hashing, no per-pair allocation.
struct RunMemo<'a, O> {
    oracle: &'a mut O,
    class: WorkerClass,
    ids: &'a [ElementId],
    /// Flat memo for small runs: cell `(lo, hi)` (with `lo < hi`) holds
    /// 0 = unknown, 1 = `lo` won, 2 = `hi` won.
    dense: Vec<u8>,
    /// Pair memo for runs past [`DENSE_MEMO_LIMIT`]: unordered index pair
    /// → winning index.
    sparse: HashMap<(u32, u32), u32>,
}

impl<'a, O: ComparisonOracle> RunMemo<'a, O> {
    fn new(oracle: &'a mut O, class: WorkerClass, ids: &'a [ElementId]) -> Self {
        let dense = if ids.len() <= DENSE_MEMO_LIMIT {
            vec![0u8; ids.len() * ids.len()]
        } else {
            Vec::new()
        };
        RunMemo {
            oracle,
            class,
            ids,
            dense,
            sparse: HashMap::new(),
        }
    }

    /// Compares the candidates at indices `a` and `b`, returning the
    /// winning index; asks the oracle only for pairs not seen this run.
    fn compare(&mut self, a: u32, b: u32) -> u32 {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        if self.dense.is_empty() {
            if let Some(&w) = self.sparse.get(&(lo, hi)) {
                return w;
            }
        } else {
            match self.dense[lo as usize * self.ids.len() + hi as usize] {
                1 => return lo,
                2 => return hi,
                _ => {}
            }
        }
        let w = self
            .oracle
            .compare(self.class, self.ids[a as usize], self.ids[b as usize]);
        let wi = if w == self.ids[a as usize] { a } else { b };
        if self.dense.is_empty() {
            self.sparse.insert((lo, hi), wi);
        } else {
            self.dense[lo as usize * self.ids.len() + hi as usize] = if wi == lo { 1 } else { 2 };
        }
        wi
    }

    /// All-play-all among `group` (candidate indices), tallying wins into
    /// `wins` (cleared and resized to the group length).
    fn play_all(&mut self, group: &[u32], wins: &mut Vec<u32>) {
        wins.clear();
        wins.resize(group.len(), 0);
        for a in 0..group.len() {
            for b in (a + 1)..group.len() {
                let w = self.compare(group[a], group[b]);
                if w == group[a] {
                    wins[a] += 1;
                } else {
                    wins[b] += 1;
                }
            }
        }
    }
}

/// Position of the most-winning entry (ties: the earliest, so "ties broken
/// arbitrarily" is at least deterministic). `wins` must be non-empty.
fn champion_position(wins: &[u32]) -> usize {
    let mut best = 0usize;
    for (i, &w) in wins.iter().enumerate().skip(1) {
        if w > wins[best] {
            best = i;
        }
    }
    best
}

/// Runs 2-MaxFind over `elements`, with all comparisons performed by
/// workers of `class`.
///
/// ```
/// use crowd_core::prelude::*;
///
/// let instance = Instance::new(vec![3.0, 9.0, 1.0, 7.0, 5.0]);
/// let mut oracle = PerfectOracle::new(instance.clone());
/// let out = two_max_find(&mut oracle, WorkerClass::Expert, &instance.ids());
/// assert_eq!(out.winner, instance.max_element());
/// ```
///
/// # Panics
///
/// Panics if `elements` is empty or contains duplicates.
pub fn two_max_find<O: ComparisonOracle>(
    oracle: &mut O,
    class: WorkerClass,
    elements: &[ElementId],
) -> TwoMaxFindOutcome {
    assert!(!elements.is_empty(), "2-MaxFind needs at least one element");
    assert!(
        elements.iter().collect::<HashSet<_>>().len() == elements.len(),
        "duplicate player in tournament"
    );
    let start = oracle.counts();
    let s = elements.len();
    let t = (s as f64).sqrt().ceil() as usize;
    let mut memo = RunMemo::new(oracle, class, elements);

    let mut candidates: Vec<u32> = (0..s as u32).collect();
    let mut rounds = 0usize;
    let mut wins: Vec<u32> = Vec::new();
    while candidates.len() > t {
        // "Pick an arbitrary set of ⌈√s⌉ candidate elements": the first t.
        let group: Vec<u32> = candidates[..t].to_vec();
        memo.play_all(&group, &mut wins);
        let x = group[champion_position(&wins)];
        // Eliminate every candidate that loses to x (x keeps itself).
        candidates.retain(|&e| e == x || memo.compare(x, e) == e);
        rounds += 1;
    }

    memo.play_all(&candidates, &mut wins);
    // The "ranking of the last round": decreasing wins, ties by play order.
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&a, &b| wins[b].cmp(&wins[a]).then(a.cmp(&b)));
    let final_ranking: Vec<(ElementId, u32)> = order
        .into_iter()
        .map(|i| (elements[candidates[i] as usize], wins[i]))
        .collect();
    TwoMaxFindOutcome {
        winner: final_ranking[0].0,
        rounds,
        final_ranking,
        comparisons: oracle
            .counts()
            .delta_since(start)
            .unwrap_or_else(|e| panic!("{e}")),
    }
}

/// Worst-case comparison bound for [`two_max_find`] on `s` elements:
/// `2·s^{3/2}` (paper Theorem 1).
pub fn two_max_find_comparison_bound(s: usize) -> u64 {
    (2.0 * (s as f64).powf(1.5)).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Instance;
    use crate::model::{ExpertModel, TiePolicy};
    use crate::oracle::{PerfectOracle, SimulatedOracle};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_instance(n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        Instance::new((0..n).map(|_| rng.gen_range(0.0..1000.0)).collect())
    }

    #[test]
    fn perfect_oracle_finds_exact_max() {
        for n in [1, 2, 3, 10, 50, 137] {
            let inst = uniform_instance(n, n as u64);
            let mut o = PerfectOracle::new(inst.clone());
            let out = two_max_find(&mut o, WorkerClass::Expert, &inst.ids());
            assert_eq!(out.winner, inst.max_element(), "n = {n}");
            assert_eq!(out.comparisons.naive, 0);
        }
    }

    #[test]
    fn within_two_delta_under_threshold_model() {
        for seed in 0..20 {
            let inst = uniform_instance(120, seed);
            let delta = 25.0;
            let model = ExpertModel::exact(delta, delta, TiePolicy::UniformRandom);
            let mut o =
                SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed + 1000));
            let out = two_max_find(&mut o, WorkerClass::Expert, &inst.ids());
            let gap = inst.max_value() - inst.value(out.winner);
            assert!(
                gap <= 2.0 * delta,
                "seed {seed}: returned {gap} below the max"
            );
        }
    }

    #[test]
    fn within_two_delta_under_adversarial_ties() {
        for seed in 0..20 {
            let inst = uniform_instance(100, seed + 40);
            let delta = 30.0;
            let model = ExpertModel::exact(delta, delta, TiePolicy::FavorLower);
            let mut o = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed));
            let out = two_max_find(&mut o, WorkerClass::Expert, &inst.ids());
            let gap = inst.max_value() - inst.value(out.winner);
            assert!(gap <= 2.0 * delta, "seed {seed}: gap {gap} > 2δ");
        }
    }

    #[test]
    fn two_delta_holds_on_adversarial_tight_chains() {
        // Crafted worst-case geometry: a dense descending chain where every
        // √s-group lies entirely inside the threshold, with the adversarial
        // tie policy that always crowns the smallest element. The chained
        // eliminations could in principle walk the value down δ per round;
        // the group-span bound keeps the total within 2δ.
        let delta = 10.0;
        for (n, spacing) in [(100usize, 1.0), (500, 0.1), (1000, 0.05), (400, 0.2)] {
            let values: Vec<f64> = (0..n).map(|i| 1000.0 - i as f64 * spacing).collect();
            let inst = Instance::new(values);
            let model = ExpertModel::exact(delta, delta, TiePolicy::FavorLower);
            let mut o = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(1));
            let out = two_max_find(&mut o, WorkerClass::Expert, &inst.ids());
            let gap = inst.max_value() - inst.value(out.winner);
            assert!(
                gap <= 2.0 * delta,
                "n={n} spacing={spacing}: gap {gap} > 2δ"
            );
        }
    }

    #[test]
    fn comparison_bound_theorem_1() {
        for n in [10, 50, 100, 400, 1000] {
            let inst = uniform_instance(n, n as u64 + 7);
            // Adversarial ties maximize work.
            let model = ExpertModel::exact(50.0, 50.0, TiePolicy::FavorLower);
            let mut o = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(1));
            let out = two_max_find(&mut o, WorkerClass::Expert, &inst.ids());
            assert!(
                out.comparisons.expert <= two_max_find_comparison_bound(n),
                "n = {n}: {} > 2n^1.5",
                out.comparisons.expert
            );
        }
    }

    #[test]
    fn terminates_against_inconsistent_coin_flip_oracle() {
        // Every answer a fresh fair coin: memoization must still force
        // progress and termination.
        use crate::oracle::FnOracle;
        let mut rng = StdRng::seed_from_u64(99);
        let mut o = FnOracle::new(move |_, k, j| if rng.gen_bool(0.5) { k } else { j });
        let ids: Vec<ElementId> = (0..200).map(ElementId).collect();
        let out = two_max_find(&mut o, WorkerClass::Naive, &ids);
        assert!(ids.contains(&out.winner));
    }

    #[test]
    fn final_ranking_covers_survivors_and_leads_with_winner() {
        let inst = uniform_instance(64, 3);
        let mut o = PerfectOracle::new(inst.clone());
        let out = two_max_find(&mut o, WorkerClass::Expert, &inst.ids());
        assert_eq!(out.final_ranking[0].0, out.winner);
        assert!(out.final_ranking.len() <= (64f64).sqrt().ceil() as usize);
        for w in out.final_ranking.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn single_and_two_element_inputs() {
        let inst = Instance::new(vec![5.0, 9.0]);
        let mut o = PerfectOracle::new(inst.clone());
        let out = two_max_find(&mut o, WorkerClass::Naive, &inst.ids());
        assert_eq!(out.winner, ElementId(1));

        let one = Instance::new(vec![5.0]);
        let mut o1 = PerfectOracle::new(one);
        let out1 = two_max_find(&mut o1, WorkerClass::Naive, &[ElementId(0)]);
        assert_eq!(out1.winner, ElementId(0));
        assert_eq!(out1.comparisons.total(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn empty_input_panics() {
        let mut o = PerfectOracle::new(Instance::new(vec![1.0]));
        two_max_find(&mut o, WorkerClass::Naive, &[]);
    }

    #[test]
    fn bound_function_values() {
        assert_eq!(two_max_find_comparison_bound(1), 2);
        assert_eq!(two_max_find_comparison_bound(4), 16);
        assert_eq!(two_max_find_comparison_bound(100), 2000);
    }
}
