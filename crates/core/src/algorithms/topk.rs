//! Top-k selection with experts — an extension of the paper's two-phase
//! scheme to the top-k problem it cites as adjacent work (Davidson et al.
//! \[8\] study top-k under a distance-based error model, without experts).
//!
//! The same division of labour applies: naïve workers can cheaply rule out
//! everything that is clearly not in the top k, and experts resolve the
//! near-ties among the survivors.
//!
//! * **Phase 1** generalizes Algorithm 2: by the argument of Lemma 1, the
//!   element of true rank `i <= k` wins at least `n − u_n(n) − k + 1`
//!   games in an all-play-all tournament (it can lose only to its
//!   naïve-indistinguishable neighbours and to the at most `k − 1`
//!   elements above it). Filtering groups of `g = 4·(un + k − 1)` with
//!   win threshold `g − (un + k − 1)` therefore keeps the whole top-k;
//!   by Lemma 2 the survivor set shrinks to at most `2·(un + k − 1) − 1`.
//!   In other words, the two-phase machinery runs unchanged with an
//!   *inflated* parameter `un' = un + k − 1`.
//! * **Phase 2** ranks the survivors with experts (all-play-all, the
//!   appropriate choice at `|S| = O(un + k)`) and returns the k elements
//!   with the most wins. Each returned element is within `2δe` of the
//!   true element of its rank.

use super::filter::{filter_candidates, FilterConfig};
use crate::element::ElementId;
use crate::model::WorkerClass;
use crate::oracle::{ComparisonCounts, ComparisonOracle};
use crate::tournament::Tournament;
use serde::{Deserialize, Serialize};

/// Configuration for [`top_k_find`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopKConfig {
    /// How many top elements to return.
    pub k: usize,
    /// The `un(n)` parameter (as for Algorithm 1).
    pub un: usize,
}

impl TopKConfig {
    /// Builds a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `un == 0`.
    pub fn new(k: usize, un: usize) -> Self {
        assert!(k >= 1, "k >= 1");
        assert!(un >= 1, "un(n) >= 1");
        TopKConfig { k, un }
    }

    /// The inflated phase-1 parameter `un + k − 1`.
    pub fn inflated_un(&self) -> usize {
        self.un + self.k - 1
    }
}

/// Result of a top-k run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopKOutcome {
    /// The k selected elements, best first (by expert-tournament wins).
    pub top: Vec<ElementId>,
    /// The full candidate set the experts ranked.
    pub candidates: Vec<ElementId>,
    /// Total comparisons.
    pub comparisons: ComparisonCounts,
}

/// Two-phase top-k selection: naïve filter with the inflated parameter,
/// then an expert all-play-all ranking of the survivors.
///
/// Returns `min(k, n)` elements. The inflated parameter guarantees the
/// whole top-k survives Phase 1 when every top-k element's
/// δn-neighbourhood is no larger than the maximum's; when that is violated
/// (an inner rank sits in a denser cluster — effectively an
/// underestimated `un`), Phase 1 can keep fewer than `k` elements, and the
/// missing slots are backfilled from the filtered-out elements (which
/// Phase 1 judged worse) in input order, without an expert guarantee.
///
/// # Panics
///
/// Panics if `elements` is empty.
pub fn top_k_find<O: ComparisonOracle>(
    oracle: &mut O,
    elements: &[ElementId],
    config: &TopKConfig,
) -> TopKOutcome {
    assert!(!elements.is_empty(), "top-k needs at least one element");
    let start = oracle.counts();

    let phase1 = filter_candidates(oracle, elements, &FilterConfig::new(config.inflated_un()));
    let candidates = phase1.survivors;

    let tournament = Tournament::all_play_all(oracle, WorkerClass::Expert, &candidates);
    let mut top: Vec<ElementId> = tournament
        .ranking()
        .into_iter()
        .take(config.k)
        .map(|(e, _)| e)
        .collect();
    if top.len() < config.k {
        // Backfill from the filtered-out elements (see the doc comment).
        let mut in_top: std::collections::HashSet<ElementId> = top.iter().copied().collect();
        for &e in elements {
            if top.len() >= config.k {
                break;
            }
            if in_top.insert(e) {
                top.push(e);
            }
        }
    }

    TopKOutcome {
        top,
        candidates,
        comparisons: oracle
            .counts()
            .delta_since(start)
            .unwrap_or_else(|e| panic!("{e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Instance;
    use crate::model::{ExpertModel, TiePolicy};
    use crate::oracle::{PerfectOracle, SimulatedOracle};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    fn uniform_instance(n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        Instance::new((0..n).map(|_| rng.gen_range(0.0..100_000.0)).collect())
    }

    #[test]
    fn perfect_workers_return_the_exact_top_k() {
        let inst = uniform_instance(500, 1);
        let mut o = PerfectOracle::new(inst.clone());
        let out = top_k_find(&mut o, &inst.ids(), &TopKConfig::new(5, 3));
        let expected: Vec<ElementId> = inst.ids_by_rank().into_iter().take(5).collect();
        assert_eq!(out.top, expected);
    }

    #[test]
    fn top_k_is_within_two_delta_e_per_slot() {
        for seed in 0..8 {
            let inst = uniform_instance(600, seed + 10);
            let (dn, de) = (2_000.0, 100.0);
            let un = inst.indistinguishable_from_max(dn);
            let model = ExpertModel::exact(dn, de, TiePolicy::UniformRandom);
            let mut o = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed));
            let k = 4;
            let out = top_k_find(&mut o, &inst.ids(), &TopKConfig::new(k, un));
            assert_eq!(out.top.len(), k);
            let true_order = inst.ids_by_rank();
            for (slot, &e) in out.top.iter().enumerate() {
                let ideal = inst.value(true_order[slot]);
                let got = inst.value(e);
                assert!(
                    ideal - got <= 2.0 * de + 1e-9,
                    "seed {seed} slot {slot}: {got} more than 2δe below {ideal}"
                );
            }
        }
    }

    #[test]
    fn all_true_top_k_survive_phase_1() {
        for seed in 0..8 {
            let inst = uniform_instance(800, seed + 30);
            let dn = 3_000.0;
            let un = inst.indistinguishable_from_max(dn);
            let model = ExpertModel::exact(dn, 1.0, TiePolicy::UniformRandom);
            let mut o = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(seed));
            let k = 3;
            let out = top_k_find(&mut o, &inst.ids(), &TopKConfig::new(k, un));
            let survivors: HashSet<ElementId> = out.candidates.iter().copied().collect();
            // Inflating un by k−1 suffices only when the top-k's own
            // indistinguishability neighbourhoods are no larger than the
            // max's; with uniform data that overwhelmingly holds.
            let true_top: Vec<ElementId> = inst.ids_by_rank().into_iter().take(k).collect();
            let kept = true_top.iter().filter(|e| survivors.contains(e)).count();
            assert!(
                kept >= k - 1,
                "seed {seed}: only {kept}/{k} of the top-k survived"
            );
        }
    }

    #[test]
    fn k_equal_one_matches_max_finding_guarantee() {
        let inst = uniform_instance(400, 77);
        let dn = 2_000.0;
        let un = inst.indistinguishable_from_max(dn);
        let model = ExpertModel::exact(dn, 50.0, TiePolicy::UniformRandom);
        let mut o = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(5));
        let out = top_k_find(&mut o, &inst.ids(), &TopKConfig::new(1, un));
        assert_eq!(out.top.len(), 1);
        assert!(inst.max_value() - inst.value(out.top[0]) <= 2.0 * 50.0);
    }

    #[test]
    fn small_inputs_return_everything_ranked() {
        let inst = Instance::new(vec![2.0, 9.0, 5.0]);
        let mut o = PerfectOracle::new(inst.clone());
        let out = top_k_find(&mut o, &inst.ids(), &TopKConfig::new(5, 1));
        assert_eq!(out.top, vec![ElementId(1), ElementId(2), ElementId(0)]);
    }

    #[test]
    fn inflated_parameter_formula() {
        assert_eq!(TopKConfig::new(1, 10).inflated_un(), 10);
        assert_eq!(TopKConfig::new(5, 10).inflated_un(), 14);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        TopKConfig::new(0, 1);
    }
}
