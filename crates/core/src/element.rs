//! Elements, values, and problem instances.
//!
//! The paper (Section 3) works over a universe `U` with a value function
//! `v : U -> R`. A problem instance is a multiset `L` of `n` elements; the
//! goal is to return an element whose value closely approximates
//! `V_L = max_{e in L} v(e)`. The *distance* between two elements is
//! `d(u, v) = |v(u) - v(v)|`, and the error models in [`crate::model`] are
//! all functions of this distance.
//!
//! Values are plain `f64`s here: the universe is abstract in the paper, and
//! everything the algorithms observe flows through a
//! [`ComparisonOracle`](crate::oracle::ComparisonOracle), never through the
//! values directly. The values are only used (a) by the simulated workers and
//! (b) by evaluation code computing the true rank of a returned element.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an element within an [`Instance`].
///
/// Ids are dense indices `0..n`. They are deliberately a newtype (rather than
/// a bare `usize`) so that element identity cannot be confused with ranks,
/// counts, or worker ids anywhere in the crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ElementId(pub u32);

impl ElementId {
    /// The id as a `usize` index into instance-sized arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The value of an element under the (hidden) value function `v`.
pub type Value = f64;

/// A max-finding problem instance: the multiset `L` together with its value
/// function, restricted to `L`.
///
/// The instance is immutable after construction. Element ids are the indices
/// `0..n` into the value vector, so `Instance` doubles as the ground truth
/// used by simulated workers and by evaluation code.
///
/// Values must be finite; construction panics otherwise (a NaN value would
/// make the distance function — and hence every error model — meaningless).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    values: Vec<Value>,
}

impl Instance {
    /// Builds an instance from the values of its elements.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains a non-finite value.
    pub fn new(values: Vec<Value>) -> Self {
        assert!(
            !values.is_empty(),
            "an instance must contain at least one element"
        );
        assert!(
            values.iter().all(|v| v.is_finite()),
            "element values must be finite"
        );
        assert!(
            values.len() <= u32::MAX as usize,
            "instances are limited to 2^32 - 1 elements"
        );
        Instance { values }
    }

    /// Number of elements `n = |L|`.
    #[inline]
    pub fn n(&self) -> usize {
        self.values.len()
    }

    /// The ids `0..n` of all elements, in id order.
    pub fn ids(&self) -> Vec<ElementId> {
        (0..self.values.len() as u32).map(ElementId).collect()
    }

    /// The value `v(e)` of element `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not an element of this instance.
    #[inline]
    pub fn value(&self, e: ElementId) -> Value {
        self.values[e.index()]
    }

    /// The distance `d(u, v) = |v(u) - v(v)|` between two elements.
    #[inline]
    pub fn distance(&self, u: ElementId, v: ElementId) -> f64 {
        (self.value(u) - self.value(v)).abs()
    }

    /// All values, in id order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// An element `M` with maximum value (the smallest id among ties, so the
    /// choice is deterministic).
    pub fn max_element(&self) -> ElementId {
        let mut best = 0u32;
        for (i, &v) in self.values.iter().enumerate().skip(1) {
            if v > self.values[best as usize] {
                best = i as u32;
            }
        }
        ElementId(best)
    }

    /// The maximum value `V_L`.
    pub fn max_value(&self) -> Value {
        self.value(self.max_element())
    }

    /// The true rank of `e`: `1` for a maximum element, and in general one
    /// plus the number of elements with strictly greater value.
    ///
    /// This is the accuracy measure of the paper's Section 5.1 ("by accuracy
    /// we mean the rank of the element returned; if the rank is 1 then we
    /// have perfect accuracy").
    pub fn rank(&self, e: ElementId) -> usize {
        let ve = self.value(e);
        1 + self.values.iter().filter(|&&v| v > ve).count()
    }

    /// `u_δ(n) = |{ e : d(M, e) <= δ }|` — the number of elements within
    /// distance `δ` of the maximum element, *including* the maximum itself
    /// (as in the paper's definition of `u_n(n)`, since `d(M, M) = 0`).
    pub fn indistinguishable_from_max(&self, delta: f64) -> usize {
        let m = self.max_value();
        self.values
            .iter()
            .filter(|&&v| (m - v).abs() <= delta)
            .count()
    }

    /// The number of elements within distance `δ` of element `e`
    /// (including `e` itself).
    pub fn indistinguishable_from(&self, e: ElementId, delta: f64) -> usize {
        let ve = self.value(e);
        self.values
            .iter()
            .filter(|&&v| (ve - v).abs() <= delta)
            .count()
    }

    /// True if `u` and `v` are indistinguishable at threshold `δ`, i.e.
    /// `d(u, v) <= δ`.
    #[inline]
    pub fn is_indistinguishable(&self, u: ElementId, v: ElementId, delta: f64) -> bool {
        self.distance(u, v) <= delta
    }

    /// Ids sorted by decreasing value (rank order; ties by increasing id).
    pub fn ids_by_rank(&self) -> Vec<ElementId> {
        let mut ids = self.ids();
        ids.sort_by(|a, b| {
            self.value(*b)
                .partial_cmp(&self.value(*a))
                .expect("values are finite")
                .then(a.cmp(b))
        });
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        Instance::new(vec![3.0, 1.0, 4.0, 1.5, 4.0, 0.5])
    }

    #[test]
    fn n_and_ids() {
        let i = inst();
        assert_eq!(i.n(), 6);
        assert_eq!(i.ids().len(), 6);
        assert_eq!(i.ids()[0], ElementId(0));
        assert_eq!(i.ids()[5], ElementId(5));
    }

    #[test]
    fn value_and_distance() {
        let i = inst();
        assert_eq!(i.value(ElementId(2)), 4.0);
        assert_eq!(i.distance(ElementId(0), ElementId(1)), 2.0);
        assert_eq!(i.distance(ElementId(1), ElementId(0)), 2.0);
        assert_eq!(i.distance(ElementId(2), ElementId(4)), 0.0);
    }

    #[test]
    fn max_element_prefers_smallest_id_among_ties() {
        let i = inst();
        // values 4.0 at ids 2 and 4; smallest id wins.
        assert_eq!(i.max_element(), ElementId(2));
        assert_eq!(i.max_value(), 4.0);
    }

    #[test]
    fn rank_counts_strictly_greater() {
        let i = inst();
        assert_eq!(i.rank(ElementId(2)), 1);
        assert_eq!(i.rank(ElementId(4)), 1); // tied for the max
        assert_eq!(i.rank(ElementId(0)), 3); // two elements strictly above 3.0
        assert_eq!(i.rank(ElementId(5)), 6);
    }

    #[test]
    fn indistinguishable_from_max_includes_max() {
        let i = inst();
        assert_eq!(i.indistinguishable_from_max(0.0), 2); // both 4.0s
        assert_eq!(i.indistinguishable_from_max(1.0), 3); // plus 3.0
        assert_eq!(i.indistinguishable_from_max(10.0), 6);
    }

    #[test]
    fn indistinguishable_from_arbitrary_element() {
        let i = inst();
        assert_eq!(i.indistinguishable_from(ElementId(1), 0.5), 3); // 1.0, 1.5, 0.5
        assert!(i.is_indistinguishable(ElementId(1), ElementId(3), 0.5));
        assert!(!i.is_indistinguishable(ElementId(1), ElementId(0), 0.5));
    }

    #[test]
    fn ids_by_rank_is_sorted_desc() {
        let i = inst();
        let order = i.ids_by_rank();
        assert_eq!(order[0], ElementId(2));
        assert_eq!(order[1], ElementId(4));
        assert_eq!(order[2], ElementId(0));
        assert_eq!(order[5], ElementId(5));
        for w in order.windows(2) {
            assert!(i.value(w[0]) >= i.value(w[1]));
        }
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn empty_instance_panics() {
        Instance::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_value_panics() {
        Instance::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn singleton_instance() {
        let i = Instance::new(vec![7.0]);
        assert_eq!(i.max_element(), ElementId(0));
        assert_eq!(i.rank(ElementId(0)), 1);
        assert_eq!(i.indistinguishable_from_max(0.0), 1);
    }
}
