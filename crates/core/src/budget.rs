//! Budget-optimal majority voting (the problem of Mo et al. \[23\] in the
//! paper's related work: "compute the number of workers whom to ask the
//! same question such as to achieve the best accuracy with a fixed
//! available budget").
//!
//! Under the probabilistic model with per-vote error `p < 1/2` and a
//! budget of `B` comparisons for `m` independent questions, the planner
//! trades breadth against depth: more votes per question reduce each
//! question's error exponentially (the Section 3.2 Chernoff bound), but a
//! fixed budget then covers fewer questions. [`plan_votes`] picks the odd
//! vote count maximizing the expected number of correctly answered
//! questions; [`budgeted_max_scan`] applies the plan to max-finding with a
//! linear champion scan — the natural baseline for "what can naïve money
//! buy without experts", and under the *threshold* model the demonstration
//! that no budget is enough (the CARS lesson).

use crate::bounds::majority_error_bound;
use crate::element::ElementId;
use crate::model::WorkerClass;
use crate::oracle::{ComparisonCounts, ComparisonOracle};
use serde::{Deserialize, Serialize};

/// A voting plan for a batch of questions under a budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VotePlan {
    /// Odd number of votes per question.
    pub votes_per_question: u32,
    /// Questions answerable within the budget at that depth.
    pub questions_covered: u64,
    /// Upper bound on the per-question majority error.
    pub per_question_error_bound: f64,
}

/// Picks the odd vote count `k` maximizing the expected number of
/// correctly majority-answered questions, `min(B/k, m) · (1 − bound(p, k))`,
/// for a budget of `budget` votes over `questions` questions with per-vote
/// error `p`.
///
/// Returns `None` when `p >= 1/2` (no depth helps — the threshold-model
/// plateau) or when the budget cannot afford one vote per question... in
/// which case depth 1 over `budget` questions is still returned (partial
/// coverage beats none); `None` is reserved for the hopeless-error case.
///
/// # Panics
///
/// Panics if `budget == 0` or `questions == 0`, or `p` is not a
/// probability.
pub fn plan_votes(budget: u64, questions: u64, p: f64) -> Option<VotePlan> {
    assert!(budget > 0, "a budget of zero buys nothing");
    assert!(questions > 0, "no questions to answer");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if p >= 0.5 {
        return None;
    }
    let mut best: Option<(f64, VotePlan)> = None;
    let max_k = (budget / questions).clamp(1, 201);
    let mut k = 1u32;
    while u64::from(k) <= max_k.max(1) {
        let covered = (budget / u64::from(k)).min(questions);
        if covered == 0 {
            break;
        }
        let err = majority_error_bound(p, k);
        let expected_correct = covered as f64 * (1.0 - err);
        let plan = VotePlan {
            votes_per_question: k,
            questions_covered: covered,
            per_question_error_bound: err,
        };
        if best.is_none() || expected_correct > best.expect("checked").0 {
            best = Some((expected_correct, plan));
        }
        k += 2; // odd depths only
    }
    best.map(|(_, plan)| plan)
}

/// Outcome of a budgeted max scan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetedOutcome {
    /// The returned element.
    pub winner: ElementId,
    /// The plan used.
    pub plan: VotePlan,
    /// Comparisons actually performed (within the budget).
    pub comparisons: ComparisonCounts,
}

/// Max-finding by a champion scan with majority-voted comparisons, under a
/// total budget of `budget` naïve votes.
///
/// The scan needs `n − 1` questions; [`plan_votes`] decides the depth. If
/// the budget cannot cover every question even at depth 1, the scan runs
/// until the money runs out and returns the champion so far (with partial
/// coverage the guarantee is only over the scanned prefix).
///
/// Returns `None` when no useful plan exists (`p >= 1/2`).
///
/// # Panics
///
/// Panics if `elements` is empty or `budget == 0`.
pub fn budgeted_max_scan<O: ComparisonOracle>(
    oracle: &mut O,
    elements: &[ElementId],
    budget: u64,
    p: f64,
) -> Option<BudgetedOutcome> {
    assert!(
        !elements.is_empty(),
        "max-finding needs at least one element"
    );
    let start = oracle.counts();
    let questions = (elements.len() as u64).saturating_sub(1).max(1);
    let plan = plan_votes(budget, questions, p)?;

    let mut spent = 0u64;
    let mut champion = elements[0];
    for &e in &elements[1..] {
        let k = u64::from(plan.votes_per_question);
        if spent + k > budget {
            break; // money ran out — return the champion so far
        }
        let mut wins = 0u32;
        for _ in 0..plan.votes_per_question {
            if oracle.compare(WorkerClass::Naive, champion, e) == champion {
                wins += 1;
            }
        }
        spent += k;
        if 2 * wins < plan.votes_per_question {
            champion = e;
        }
    }
    Some(BudgetedOutcome {
        winner: champion,
        plan,
        // Saturating: callers hand in arbitrary oracle stacks, and a
        // decorator with a non-monotone tally must not panic the scan.
        comparisons: oracle.counts().saturating_sub(start),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Instance;
    use crate::model::{ExpertModel, TiePolicy};
    use crate::oracle::SimulatedOracle;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn plan_prefers_depth_when_budget_allows() {
        // Plenty of budget: cover all questions at a useful depth.
        let plan = plan_votes(10_000, 100, 0.3).unwrap();
        assert_eq!(plan.questions_covered, 100);
        assert!(plan.votes_per_question >= 3, "{plan:?}");
        assert_eq!(plan.votes_per_question % 2, 1);
        assert!(plan.per_question_error_bound < 0.2);
    }

    #[test]
    fn plan_prefers_breadth_when_budget_is_tight() {
        // Budget = questions: only depth 1 covers everything, and at
        // p = 0.1 covering everything beats halving coverage for depth 3.
        let plan = plan_votes(100, 100, 0.1).unwrap();
        assert_eq!(plan.votes_per_question, 1);
        assert_eq!(plan.questions_covered, 100);
    }

    #[test]
    fn plan_trades_coverage_for_depth_at_high_error() {
        // At p = 0.45 a single vote is nearly a coin flip; sacrificing
        // coverage for depth pays.
        let deep = plan_votes(300, 100, 0.45).unwrap();
        assert!(deep.votes_per_question >= 3, "{deep:?}");
    }

    #[test]
    fn hopeless_error_returns_none() {
        assert_eq!(plan_votes(1000, 10, 0.5), None);
        assert_eq!(plan_votes(1000, 10, 0.8), None);
    }

    #[test]
    fn budgeted_scan_respects_the_budget() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = Instance::new((0..200).map(|_| rng.gen_range(0.0..1000.0)).collect());
        let model = ExpertModel::new(0.0, 0.2, 0.0, 0.0, TiePolicy::UniformRandom);
        let mut o = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(2));
        let budget = 500;
        let out = budgeted_max_scan(&mut o, &inst.ids(), budget, 0.2).unwrap();
        assert!(out.comparisons.naive <= budget);
        assert!(inst.ids().contains(&out.winner));
    }

    #[test]
    fn bigger_budgets_buy_better_answers_on_average() {
        let mut rank_sum = [0usize; 2];
        let budgets = [250u64, 5_000];
        let trials = 30;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(100 + t);
            let inst = Instance::new((0..120).map(|_| rng.gen_range(0.0..1000.0)).collect());
            for (bi, &b) in budgets.iter().enumerate() {
                let model = ExpertModel::new(0.0, 0.35, 0.0, 0.0, TiePolicy::UniformRandom);
                let mut o = SimulatedOracle::new(
                    inst.clone(),
                    model,
                    StdRng::seed_from_u64(t * 7 + bi as u64),
                );
                let out = budgeted_max_scan(&mut o, &inst.ids(), b, 0.35).unwrap();
                rank_sum[bi] += inst.rank(out.winner);
            }
        }
        assert!(
            rank_sum[1] < rank_sum[0],
            "bigger budget should find better elements: {rank_sum:?}"
        );
    }

    #[test]
    fn no_budget_helps_below_the_threshold() {
        // The CARS lesson: under the threshold model the per-vote "error"
        // on indistinguishable pairs is 1/2, so the planner refuses, no
        // matter the budget.
        assert_eq!(plan_votes(u64::MAX / 2, 100, 0.5), None);
    }

    #[test]
    #[should_panic(expected = "budget of zero")]
    fn zero_budget_panics() {
        plan_votes(0, 10, 0.1);
    }
}
