//! Recording and replaying comparison judgments.
//!
//! Crowdsourced judgments cost money; algorithm development should not.
//! [`RecordingOracle`] captures every judgment an oracle produces (e.g.
//! from a real platform) into a serializable [`JudgmentLog`];
//! [`ReplayOracle`] plays a log back as an oracle, so different algorithm
//! configurations can be compared offline on the *same* human answers —
//! the methodology behind the paper's "we obtained the results for 14
//! executions" style of re-analysis.
//!
//! Replay semantics: answers are keyed by `(class, unordered pair)` and
//! consumed in recording order, so repeated questions get the successive
//! recorded judgments (matching the fresh-judgment behaviour of the
//! source). A replay that asks a question the log cannot answer returns a
//! [`ReplayError`] through the fallible API; the `ComparisonOracle` impl
//! panics instead, because the trait is infallible — use
//! [`ReplayOracle::remaining`] to check coverage first.

use crate::element::ElementId;
use crate::model::WorkerClass;
use crate::oracle::{ComparisonCounts, ComparisonOracle};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::collections::VecDeque;

/// One recorded judgment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordedJudgment {
    /// The worker class asked.
    pub class: WorkerClass,
    /// First element as presented.
    pub k: ElementId,
    /// Second element as presented.
    pub j: ElementId,
    /// The element declared the winner.
    pub winner: ElementId,
}

/// A serializable log of judgments, in recording order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JudgmentLog {
    judgments: Vec<RecordedJudgment>,
}

impl JudgmentLog {
    /// An empty log.
    pub fn new() -> Self {
        JudgmentLog::default()
    }

    /// The judgments, in recording order.
    pub fn judgments(&self) -> &[RecordedJudgment] {
        &self.judgments
    }

    /// Number of recorded judgments.
    pub fn len(&self) -> usize {
        self.judgments.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.judgments.is_empty()
    }

    /// Appends a judgment.
    pub fn push(&mut self, judgment: RecordedJudgment) {
        self.judgments.push(judgment);
    }
}

/// Decorator that records every judgment flowing through an oracle.
#[derive(Debug)]
pub struct RecordingOracle<O> {
    inner: O,
    log: JudgmentLog,
}

impl<O: ComparisonOracle> RecordingOracle<O> {
    /// Wraps `inner` with an empty log.
    pub fn new(inner: O) -> Self {
        RecordingOracle {
            inner,
            log: JudgmentLog::new(),
        }
    }

    /// The log so far.
    pub fn log(&self) -> &JudgmentLog {
        &self.log
    }

    /// Consumes the recorder, returning the log and the wrapped oracle.
    pub fn into_parts(self) -> (JudgmentLog, O) {
        (self.log, self.inner)
    }
}

impl<O: ComparisonOracle> ComparisonOracle for RecordingOracle<O> {
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
        let winner = self.inner.compare(class, k, j);
        self.log.push(RecordedJudgment {
            class,
            k,
            j,
            winner,
        });
        winner
    }

    fn try_compare(
        &mut self,
        class: WorkerClass,
        k: ElementId,
        j: ElementId,
    ) -> Result<ElementId, crate::oracle::OracleError> {
        let winner = self.inner.try_compare(class, k, j)?;
        self.log.push(RecordedJudgment {
            class,
            k,
            j,
            winner,
        });
        Ok(winner)
    }

    /// Forwards the batch to the inner oracle *as a batch* (so its batch
    /// adapters stay engaged), then logs the answered pairs one by one —
    /// a recorded batch run is indistinguishable in the log from the
    /// equivalent scalar run, which is exactly what the
    /// [`equiv`](crate::equiv) harness relies on.
    fn compare_batch(
        &mut self,
        class: WorkerClass,
        pairs: &[(ElementId, ElementId)],
        winners: &mut Vec<ElementId>,
    ) {
        let start = winners.len();
        self.inner.compare_batch(class, pairs, winners);
        for (&(k, j), &winner) in pairs.iter().zip(&winners[start..]) {
            self.log.push(RecordedJudgment {
                class,
                k,
                j,
                winner,
            });
        }
    }

    fn try_compare_batch(
        &mut self,
        class: WorkerClass,
        pairs: &[(ElementId, ElementId)],
        winners: &mut Vec<ElementId>,
    ) -> Result<(), crate::oracle::OracleError> {
        let start = winners.len();
        let outcome = self.inner.try_compare_batch(class, pairs, winners);
        // Log whatever was answered, even on a mid-batch fault.
        for (&(k, j), &winner) in pairs.iter().zip(&winners[start..]) {
            self.log.push(RecordedJudgment {
                class,
                k,
                j,
                winner,
            });
        }
        outcome
    }

    fn counts(&self) -> ComparisonCounts {
        self.inner.counts()
    }

    fn observe(&mut self, event: crate::trace::TraceEvent) {
        self.inner.observe(event);
    }
}

/// Why a replay could not answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayError {
    /// The class asked.
    pub class: WorkerClass,
    /// The pair asked.
    pub pair: (ElementId, ElementId),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "the log has no remaining {} judgment for ({}, {})",
            self.class, self.pair.0, self.pair.1
        )
    }
}

impl std::error::Error for ReplayError {}

/// An oracle answering from a [`JudgmentLog`].
#[derive(Debug)]
pub struct ReplayOracle {
    queues: HashMap<(WorkerClass, ElementId, ElementId), VecDeque<ElementId>>,
    counts: ComparisonCounts,
    remaining: usize,
}

impl ReplayOracle {
    /// Builds a replay from a log.
    pub fn new(log: &JudgmentLog) -> Self {
        let mut queues: HashMap<(WorkerClass, ElementId, ElementId), VecDeque<ElementId>> =
            HashMap::new();
        for &RecordedJudgment {
            class,
            k,
            j,
            winner,
        } in log.judgments()
        {
            let key = if k < j { (class, k, j) } else { (class, j, k) };
            queues.entry(key).or_default().push_back(winner);
        }
        ReplayOracle {
            queues,
            counts: ComparisonCounts::zero(),
            remaining: log.len(),
        }
    }

    /// Judgments not yet consumed.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Fallible comparison: answers from the log or reports the gap.
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError`] when the log has no remaining judgment for
    /// the `(class, pair)`.
    pub fn try_compare(
        &mut self,
        class: WorkerClass,
        k: ElementId,
        j: ElementId,
    ) -> Result<ElementId, ReplayError> {
        let key = if k < j { (class, k, j) } else { (class, j, k) };
        let winner = self
            .queues
            .get_mut(&key)
            .and_then(VecDeque::pop_front)
            .ok_or(ReplayError {
                class,
                pair: (k, j),
            })?;
        self.counts.record(class);
        self.remaining -= 1;
        Ok(winner)
    }
}

impl ComparisonOracle for ReplayOracle {
    /// Answers from the log.
    ///
    /// # Panics
    ///
    /// Panics when the log cannot answer — use
    /// [`try_compare`](Self::try_compare) to handle gaps gracefully.
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
        self.try_compare(class, k, j)
            .expect("the judgment log cannot answer this comparison")
    }

    fn counts(&self) -> ComparisonCounts {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{two_max_find, TwoMaxFindOutcome};
    use crate::element::Instance;
    use crate::model::{ExpertModel, TiePolicy};
    use crate::oracle::SimulatedOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance() -> Instance {
        Instance::new(vec![5.0, 1.0, 9.0, 3.0, 7.0])
    }

    fn run_recorded() -> (JudgmentLog, TwoMaxFindOutcome) {
        let model = ExpertModel::exact(2.0, 0.5, TiePolicy::UniformRandom);
        let oracle = SimulatedOracle::new(instance(), model, StdRng::seed_from_u64(1));
        let mut rec = RecordingOracle::new(oracle);
        let out = two_max_find(&mut rec, WorkerClass::Naive, &instance().ids());
        let (log, _) = rec.into_parts();
        (log, out)
    }

    #[test]
    fn recording_captures_every_judgment() {
        let (log, out) = run_recorded();
        assert_eq!(log.len() as u64, out.comparisons.total());
        for r in log.judgments() {
            assert!(r.winner == r.k || r.winner == r.j);
        }
    }

    #[test]
    fn replay_reproduces_the_original_run_exactly() {
        let (log, original) = run_recorded();
        let mut replay = ReplayOracle::new(&log);
        let replayed = two_max_find(&mut replay, WorkerClass::Naive, &instance().ids());
        assert_eq!(replayed.winner, original.winner);
        assert_eq!(replayed.final_ranking, original.final_ranking);
        assert_eq!(replay.remaining(), 0, "the same run consumes the whole log");
    }

    #[test]
    fn replay_is_order_insensitive_in_pair_presentation() {
        let mut log = JudgmentLog::new();
        log.push(RecordedJudgment {
            class: WorkerClass::Naive,
            k: ElementId(0),
            j: ElementId(1),
            winner: ElementId(1),
        });
        let mut replay = ReplayOracle::new(&log);
        // Asked in the opposite order, the recorded answer still applies.
        assert_eq!(
            replay.compare(WorkerClass::Naive, ElementId(1), ElementId(0)),
            ElementId(1)
        );
    }

    #[test]
    fn exhausted_log_errors_gracefully() {
        let mut log = JudgmentLog::new();
        log.push(RecordedJudgment {
            class: WorkerClass::Naive,
            k: ElementId(0),
            j: ElementId(1),
            winner: ElementId(0),
        });
        let mut replay = ReplayOracle::new(&log);
        replay
            .try_compare(WorkerClass::Naive, ElementId(0), ElementId(1))
            .unwrap();
        let err = replay
            .try_compare(WorkerClass::Naive, ElementId(0), ElementId(1))
            .unwrap_err();
        assert_eq!(err.pair, (ElementId(0), ElementId(1)));
        assert!(err.to_string().contains("no remaining"));
    }

    #[test]
    fn classes_are_kept_separate() {
        let mut log = JudgmentLog::new();
        log.push(RecordedJudgment {
            class: WorkerClass::Expert,
            k: ElementId(0),
            j: ElementId(1),
            winner: ElementId(0),
        });
        let mut replay = ReplayOracle::new(&log);
        assert!(replay
            .try_compare(WorkerClass::Naive, ElementId(0), ElementId(1))
            .is_err());
        assert!(replay
            .try_compare(WorkerClass::Expert, ElementId(0), ElementId(1))
            .is_ok());
    }

    #[test]
    fn log_round_trips_through_json() {
        let (log, _) = run_recorded();
        let json = serde_json::to_string(&log).unwrap();
        let back: JudgmentLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);
    }
}
