//! All-play-all (round-robin) tournaments.
//!
//! The filtering phase (Algorithm 2) and both second-phase algorithms are
//! built out of all-play-all tournaments: each element of a group is compared
//! against every other, and elements are selected by their number of wins.
//! Two combinatorial facts drive the paper's analysis:
//!
//! * **Lemma 1** — in an all-play-all tournament over `L`, the maximum `M`
//!   wins at least `n − un(n)` comparisons (it beats everything farther than
//!   `δn` away);
//! * **Lemma 2** — at most `2r − 1` elements can win at least `|A| − r`
//!   comparisons each, *regardless of the error model* (it is a counting
//!   argument over the `|A| choose 2` games).

use crate::element::ElementId;
use crate::model::WorkerClass;
use crate::oracle::ComparisonOracle;

/// The outcome of an all-play-all tournament: per-element win counts, in the
/// order of the input slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tournament {
    players: Vec<ElementId>,
    wins: Vec<u32>,
    /// Every game as `(winner, loser)`, in play order.
    games: Vec<(ElementId, ElementId)>,
}

impl Tournament {
    /// Plays an all-play-all tournament among `players`, with every
    /// comparison performed by a worker of `class` through `oracle`.
    ///
    /// Performs exactly `|players| · (|players| − 1) / 2` oracle queries
    /// (fewer reach actual workers if the oracle memoizes).
    ///
    /// # Panics
    ///
    /// Panics if `players` contains duplicate ids (each pair must be a pair
    /// of distinct elements).
    pub fn all_play_all<O: ComparisonOracle>(
        oracle: &mut O,
        class: WorkerClass,
        players: &[ElementId],
    ) -> Self {
        let mut wins = vec![0u32; players.len()];
        let mut games = Vec::with_capacity(players.len() * players.len().saturating_sub(1) / 2);
        for i in 0..players.len() {
            for j in (i + 1)..players.len() {
                assert_ne!(players[i], players[j], "duplicate player in tournament");
                let winner = oracle.compare(class, players[i], players[j]);
                if winner == players[i] {
                    wins[i] += 1;
                    games.push((players[i], players[j]));
                } else {
                    wins[j] += 1;
                    games.push((players[j], players[i]));
                }
            }
        }
        Tournament {
            players: players.to_vec(),
            wins,
            games,
        }
    }

    /// Every game played, as `(winner, loser)` pairs in play order.
    pub fn results(&self) -> &[(ElementId, ElementId)] {
        &self.games
    }

    /// The participants, in input order.
    pub fn players(&self) -> &[ElementId] {
        &self.players
    }

    /// Win count of the `i`-th participant.
    pub fn wins(&self, i: usize) -> u32 {
        self.wins[i]
    }

    /// Win count of a participant by id, if present.
    pub fn wins_of(&self, e: ElementId) -> Option<u32> {
        self.players
            .iter()
            .position(|&p| p == e)
            .map(|i| self.wins[i])
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.players.len()
    }

    /// True if the tournament had no participants.
    pub fn is_empty(&self) -> bool {
        self.players.is_empty()
    }

    /// Elements that won at least `min_wins` comparisons, in input order.
    ///
    /// By Lemma 2, if `min_wins = |A| − r` then at most `2r − 1` elements
    /// are returned (checked by a debug assertion).
    pub fn winners_with_at_least(&self, min_wins: u32) -> Vec<ElementId> {
        let selected: Vec<ElementId> = self
            .players
            .iter()
            .zip(&self.wins)
            .filter(|&(_, &w)| w >= min_wins)
            .map(|(&p, _)| p)
            .collect();
        #[cfg(debug_assertions)]
        {
            let n = self.players.len() as u32;
            if min_wins <= n {
                let r = n - min_wins;
                debug_assert!(
                    (selected.len() as u32) < 2 * r.max(1),
                    "Lemma 2 violated: {} winners with >= {} wins among {}",
                    selected.len(),
                    min_wins,
                    n
                );
            }
        }
        selected
    }

    /// An element with the most wins (ties: the earliest in input order, so
    /// "ties broken arbitrarily" is at least deterministic).
    ///
    /// Returns `None` on an empty tournament.
    pub fn champion(&self) -> Option<ElementId> {
        let (mut best, mut best_wins) = (None, 0u32);
        for (&p, &w) in self.players.iter().zip(&self.wins) {
            if best.is_none() || w > best_wins {
                best = Some(p);
                best_wins = w;
            }
        }
        best
    }

    /// An element with the *fewest* wins (ties: earliest in input order) —
    /// the "minimal element" removed by the randomized second-phase
    /// algorithm (Algorithm 5, step 5).
    pub fn weakest(&self) -> Option<ElementId> {
        let (mut worst, mut worst_wins) = (None, u32::MAX);
        for (&p, &w) in self.players.iter().zip(&self.wins) {
            if worst.is_none() || w < worst_wins {
                worst = Some(p);
                worst_wins = w;
            }
        }
        worst
    }

    /// Participants sorted by decreasing wins (ties by input order).
    /// This is the "ranking of the last round" reported in the paper's
    /// Tables 1 and 2.
    pub fn ranking(&self) -> Vec<(ElementId, u32)> {
        let mut order: Vec<usize> = (0..self.players.len()).collect();
        order.sort_by(|&a, &b| self.wins[b].cmp(&self.wins[a]).then(a.cmp(&b)));
        order
            .into_iter()
            .map(|i| (self.players[i], self.wins[i]))
            .collect()
    }

    /// Total number of games played: `len · (len − 1) / 2`.
    pub fn games(&self) -> u64 {
        let n = self.players.len() as u64;
        n * (n.saturating_sub(1)) / 2
    }
}

/// Number of comparisons an all-play-all tournament over `n` elements costs.
pub fn all_play_all_cost(n: usize) -> u64 {
    let n = n as u64;
    n * n.saturating_sub(1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Instance;
    use crate::oracle::PerfectOracle;

    fn ids(v: &[u32]) -> Vec<ElementId> {
        v.iter().copied().map(ElementId).collect()
    }

    fn perfect(values: Vec<f64>) -> PerfectOracle {
        PerfectOracle::new(Instance::new(values))
    }

    #[test]
    fn perfect_tournament_ranks_by_value() {
        let mut o = perfect(vec![3.0, 1.0, 4.0, 2.0]);
        let t = Tournament::all_play_all(&mut o, WorkerClass::Naive, &ids(&[0, 1, 2, 3]));
        assert_eq!(t.wins(0), 2);
        assert_eq!(t.wins(1), 0);
        assert_eq!(t.wins(2), 3);
        assert_eq!(t.wins(3), 1);
        assert_eq!(t.champion(), Some(ElementId(2)));
        assert_eq!(t.weakest(), Some(ElementId(1)));
    }

    #[test]
    fn game_and_cost_accounting() {
        let mut o = perfect(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let t = Tournament::all_play_all(&mut o, WorkerClass::Expert, &ids(&[0, 1, 2, 3, 4]));
        assert_eq!(t.games(), 10);
        assert_eq!(o.counts().expert, 10);
        assert_eq!(o.counts().naive, 0);
        assert_eq!(all_play_all_cost(5), 10);
        assert_eq!(all_play_all_cost(0), 0);
        assert_eq!(all_play_all_cost(1), 0);
    }

    #[test]
    fn winners_with_at_least_filters() {
        let mut o = perfect(vec![3.0, 1.0, 4.0, 2.0]);
        let t = Tournament::all_play_all(&mut o, WorkerClass::Naive, &ids(&[0, 1, 2, 3]));
        // wins: e0=2, e1=0, e2=3, e3=1; threshold |A| - r = 4 - 2 = 2.
        assert_eq!(t.winners_with_at_least(2), ids(&[0, 2]));
        assert_eq!(t.winners_with_at_least(4), Vec::<ElementId>::new());
        assert_eq!(t.winners_with_at_least(0), ids(&[0, 1, 2, 3]));
    }

    #[test]
    fn ranking_orders_by_wins() {
        let mut o = perfect(vec![3.0, 1.0, 4.0, 2.0]);
        let t = Tournament::all_play_all(&mut o, WorkerClass::Naive, &ids(&[0, 1, 2, 3]));
        let r = t.ranking();
        assert_eq!(r[0], (ElementId(2), 3));
        assert_eq!(r[1], (ElementId(0), 2));
        assert_eq!(r[3], (ElementId(1), 0));
    }

    #[test]
    fn singleton_and_empty_tournaments() {
        let mut o = perfect(vec![1.0]);
        let t = Tournament::all_play_all(&mut o, WorkerClass::Naive, &ids(&[0]));
        assert_eq!(t.games(), 0);
        assert_eq!(t.champion(), Some(ElementId(0)));
        assert_eq!(t.winners_with_at_least(0), ids(&[0]));

        let e = Tournament::all_play_all(&mut o, WorkerClass::Naive, &[]);
        assert!(e.is_empty());
        assert_eq!(e.champion(), None);
        assert_eq!(e.weakest(), None);
    }

    #[test]
    fn wins_of_by_id() {
        let mut o = perfect(vec![3.0, 1.0, 4.0]);
        let t = Tournament::all_play_all(&mut o, WorkerClass::Naive, &ids(&[0, 1, 2]));
        assert_eq!(t.wins_of(ElementId(2)), Some(2));
        assert_eq!(t.wins_of(ElementId(7)), None);
    }

    #[test]
    #[should_panic(expected = "duplicate player")]
    fn duplicate_players_panic() {
        let mut o = perfect(vec![1.0, 2.0]);
        Tournament::all_play_all(&mut o, WorkerClass::Naive, &ids(&[0, 0]));
    }

    #[test]
    fn lemma_1_maximum_wins_enough() {
        // Threshold workers with adversarial ties: M still wins everything
        // farther than δn away.
        use crate::model::{ExpertModel, TiePolicy};
        use crate::oracle::SimulatedOracle;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let values: Vec<f64> = (0..40).map(|i| i as f64).collect(); // max = 39
        let inst = Instance::new(values);
        let delta_n = 5.0;
        let un = inst.indistinguishable_from_max(delta_n); // 6 (incl. M)
        let model = ExpertModel::exact(delta_n, 0.0, TiePolicy::FavorLower);
        let mut o = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(1));
        let t = Tournament::all_play_all(&mut o, WorkerClass::Naive, &inst.ids());
        let m_wins = t.wins_of(inst.max_element()).unwrap();
        assert!(
            m_wins as usize >= inst.n() - un,
            "Lemma 1: M won {m_wins} < n - un = {}",
            inst.n() - un
        );
    }

    #[test]
    fn lemma_2_bound_holds_under_adversarial_answers() {
        // Even with an oracle that always favours the smaller id, at most
        // 2r - 1 elements can reach |A| - r wins.
        use crate::oracle::FnOracle;
        let mut o = FnOracle::new(|_, k: ElementId, j: ElementId| if k < j { k } else { j });
        let players = ids(&(0..30).collect::<Vec<_>>());
        let t = Tournament::all_play_all(&mut o, WorkerClass::Naive, &players);
        for r in 1..=15u32 {
            let winners = t.winners_with_at_least(30 - r);
            assert!(
                (winners.len() as u32) < 2 * r,
                "r = {r}: {} winners",
                winners.len()
            );
        }
    }
}
