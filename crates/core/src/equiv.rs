//! Differential oracle equivalence: prove that two ways of driving an
//! oracle issue the **byte-identical comparison sequence**.
//!
//! This is the promoted form of the PR-4 differential proptest harness.
//! Both sides are wrapped in a [`RecordingOracle`], driven by a caller
//! closure, and their [`JudgmentLog`]s — every `(class, k, j, winner)`
//! in caller order — plus their comparison-count deltas are asserted
//! equal, with a first-divergence diagnostic on mismatch.
//!
//! Typical uses:
//!
//! * pin an algorithm rewrite to its reference implementation (the arena
//!   filter vs. the retained pre-refactor filter);
//! * prove a batch execution path ([`ComparisonOracle::compare_batch`])
//!   equals the scalar loop through any decorator stack — see
//!   [`drive_scalar`] / [`drive_batched`].

use crate::element::ElementId;
use crate::model::WorkerClass;
use crate::oracle::ComparisonOracle;
use crate::replay::{JudgmentLog, RecordingOracle};

/// Drives `a` and `b` through recording decorators and asserts they saw
/// the same comparison sequence, produced the same answers, tallied the
/// same counts, and that the two drivers returned equal values.
///
/// Returns the (shared) judgment log and the drivers' common return
/// value, for callers that want to assert more.
///
/// # Panics
///
/// Panics with a first-divergence diagnostic when the logs, count deltas,
/// or driver outputs differ.
#[track_caller]
pub fn assert_oracles_equal<A, B, T, DA, DB>(
    a: A,
    b: B,
    drive_a: DA,
    drive_b: DB,
) -> (JudgmentLog, T)
where
    A: ComparisonOracle,
    B: ComparisonOracle,
    T: PartialEq + std::fmt::Debug,
    DA: FnOnce(&mut RecordingOracle<A>) -> T,
    DB: FnOnce(&mut RecordingOracle<B>) -> T,
{
    let mut rec_a = RecordingOracle::new(a);
    let before_a = rec_a.counts();
    let out_a = drive_a(&mut rec_a);
    let delta_a = rec_a.counts().saturating_sub(before_a);

    let mut rec_b = RecordingOracle::new(b);
    let before_b = rec_b.counts();
    let out_b = drive_b(&mut rec_b);
    let delta_b = rec_b.counts().saturating_sub(before_b);

    let (log_a, _) = rec_a.into_parts();
    let (log_b, _) = rec_b.into_parts();
    if log_a != log_b {
        let ja = log_a.judgments();
        let jb = log_b.judgments();
        let at = ja
            .iter()
            .zip(jb)
            .position(|(x, y)| x != y)
            .unwrap_or_else(|| ja.len().min(jb.len()));
        panic!(
            "comparison sequences diverged at judgment {at}: \
             a = {:?} (of {}), b = {:?} (of {})",
            ja.get(at),
            ja.len(),
            jb.get(at),
            jb.len(),
        );
    }
    assert_eq!(
        delta_a, delta_b,
        "identical judgment logs but different comparison tallies"
    );
    assert_eq!(out_a, out_b, "drivers returned different outcomes");
    (log_a, out_a)
}

/// Drives `pairs` through the oracle one [`compare`] at a time, returning
/// the winners in order — the scalar side of a scalar-vs-batch proof.
///
/// [`compare`]: ComparisonOracle::compare
pub fn drive_scalar<O: ComparisonOracle>(
    oracle: &mut O,
    class: WorkerClass,
    pairs: &[(ElementId, ElementId)],
) -> Vec<ElementId> {
    pairs
        .iter()
        .map(|&(k, j)| oracle.compare(class, k, j))
        .collect()
}

/// Drives `pairs` through the oracle as consecutive
/// [`compare_batch`] calls of the given `segment` lengths (any remainder
/// after the listed segments forms one final batch; zero-length segments
/// are legal and exercise the empty-batch path), returning the winners in
/// order.
///
/// [`compare_batch`]: ComparisonOracle::compare_batch
pub fn drive_batched<O: ComparisonOracle>(
    oracle: &mut O,
    class: WorkerClass,
    pairs: &[(ElementId, ElementId)],
    segments: &[usize],
) -> Vec<ElementId> {
    let mut winners = Vec::with_capacity(pairs.len());
    let mut rest = pairs;
    for &len in segments {
        let take = len.min(rest.len());
        let (batch, tail) = rest.split_at(take);
        oracle.compare_batch(class, batch, &mut winners);
        rest = tail;
    }
    if !rest.is_empty() {
        oracle.compare_batch(class, rest, &mut winners);
    }
    winners
}

/// Drives `pairs` through the oracle as consecutive fallible
/// [`try_compare_batch`] calls of the given `segment` lengths (remainder
/// and zero-length rules as in [`drive_batched`]), stopping at the first
/// error. Returns the winners answered so far — including any completed
/// prefix a partial-batch oracle appended before its error — and the
/// error, if one fired.
///
/// This is the crash/resume driver for [`assert_oracles_equal`]: a chaos
/// harness drives the journaled side until the injected
/// [`OracleError::Interrupted`], resumes from the journal, finishes with a
/// second `drive_until_error` pass, and asserts the concatenated winners
/// against one uninterrupted drive.
///
/// [`try_compare_batch`]: ComparisonOracle::try_compare_batch
/// [`OracleError::Interrupted`]: crate::oracle::OracleError::Interrupted
pub fn drive_until_error<O: ComparisonOracle>(
    oracle: &mut O,
    class: WorkerClass,
    pairs: &[(ElementId, ElementId)],
    segments: &[usize],
) -> (Vec<ElementId>, Option<crate::oracle::OracleError>) {
    let mut winners = Vec::with_capacity(pairs.len());
    let mut rest = pairs;
    for &len in segments {
        let take = len.min(rest.len());
        let (batch, tail) = rest.split_at(take);
        if let Err(e) = oracle.try_compare_batch(class, batch, &mut winners) {
            return (winners, Some(e));
        }
        rest = tail;
    }
    if !rest.is_empty() {
        if let Err(e) = oracle.try_compare_batch(class, rest, &mut winners) {
            return (winners, Some(e));
        }
    }
    (winners, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Instance;
    use crate::oracle::{FnOracle, PerfectOracle};

    fn instance() -> Instance {
        Instance::new(vec![3.0, 1.0, 4.0, 1.5, 9.0, 2.6])
    }

    fn pairs() -> Vec<(ElementId, ElementId)> {
        vec![
            (ElementId(0), ElementId(1)),
            (ElementId(2), ElementId(3)),
            (ElementId(4), ElementId(5)),
            (ElementId(1), ElementId(4)),
        ]
    }

    #[test]
    fn equal_runs_pass_and_return_the_log() {
        let (log, winners) = assert_oracles_equal(
            PerfectOracle::new(instance()),
            PerfectOracle::new(instance()),
            |o| drive_scalar(o, WorkerClass::Naive, &pairs()),
            |o| drive_batched(o, WorkerClass::Naive, &pairs(), &[2]),
        );
        assert_eq!(log.len(), pairs().len());
        assert_eq!(winners.len(), pairs().len());
        assert_eq!(winners[0], ElementId(0));
    }

    #[test]
    #[should_panic(expected = "diverged at judgment 1")]
    fn diverging_answers_name_the_first_bad_judgment() {
        assert_oracles_equal(
            FnOracle::new(|_, k, _| k),
            FnOracle::new(|_, k, j| if k == ElementId(2) { j } else { k }),
            |o| drive_scalar(o, WorkerClass::Naive, &pairs()),
            |o| drive_scalar(o, WorkerClass::Naive, &pairs()),
        );
    }

    #[test]
    #[should_panic(expected = "diverged at judgment 3")]
    fn shorter_runs_diverge_at_the_missing_tail() {
        assert_oracles_equal(
            FnOracle::new(|_, k, _| k),
            FnOracle::new(|_, k, _| k),
            |o| drive_scalar(o, WorkerClass::Naive, &pairs()),
            |o| drive_scalar(o, WorkerClass::Naive, &pairs()[..3]),
        );
    }

    #[test]
    #[should_panic(expected = "different outcomes")]
    fn diverging_driver_outputs_fail() {
        assert_oracles_equal(
            PerfectOracle::new(instance()),
            PerfectOracle::new(instance()),
            |o| {
                drive_scalar(o, WorkerClass::Naive, &pairs());
                1u32
            },
            |o| {
                drive_scalar(o, WorkerClass::Naive, &pairs());
                2u32
            },
        );
    }

    #[test]
    fn zero_length_segments_are_legal() {
        let mut o = PerfectOracle::new(instance());
        let winners = drive_batched(&mut o, WorkerClass::Naive, &pairs(), &[0, 1, 0, 2]);
        assert_eq!(winners.len(), pairs().len());
        assert_eq!(o.counts().naive, pairs().len() as u64);
    }

    /// A perfect oracle that reports [`OracleError::Interrupted`] after a
    /// fixed number of comparisons — the completed prefix of each batch is
    /// kept, mirroring the platform's partial-batch contract.
    struct CrashingOracle {
        inner: PerfectOracle,
        remaining: u64,
    }

    impl ComparisonOracle for CrashingOracle {
        fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
            self.try_compare(class, k, j).expect("crashed")
        }

        fn try_compare(
            &mut self,
            class: WorkerClass,
            k: ElementId,
            j: ElementId,
        ) -> Result<ElementId, crate::oracle::OracleError> {
            if self.remaining == 0 {
                return Err(crate::oracle::OracleError::Interrupted);
            }
            self.remaining -= 1;
            Ok(self.inner.compare(class, k, j))
        }

        fn counts(&self) -> crate::oracle::ComparisonCounts {
            self.inner.counts()
        }
    }

    #[test]
    fn drive_until_error_keeps_the_answered_prefix() {
        let mut o = CrashingOracle {
            inner: PerfectOracle::new(instance()),
            remaining: 3,
        };
        let (winners, err) = drive_until_error(&mut o, WorkerClass::Naive, &pairs(), &[2]);
        // Two pairs from the first batch, then one from the second before
        // the crash: the mid-batch prefix survives.
        assert_eq!(winners.len(), 3);
        assert!(matches!(err, Some(crate::oracle::OracleError::Interrupted)));
        assert_eq!(o.counts().naive, 3);
    }

    #[test]
    fn drive_until_error_without_fault_matches_drive_batched() {
        let mut a = PerfectOracle::new(instance());
        let expected = drive_batched(&mut a, WorkerClass::Naive, &pairs(), &[2]);
        let mut o = CrashingOracle {
            inner: PerfectOracle::new(instance()),
            remaining: u64::MAX,
        };
        let (winners, err) = drive_until_error(&mut o, WorkerClass::Naive, &pairs(), &[2]);
        assert_eq!(winners, expected);
        assert!(err.is_none());
    }
}
