//! Closed-form theoretical bounds from the paper (Sections 3.2, 4.2, 4.3).
//!
//! These functions let experiments and tests compare measured comparison
//! counts against the paper's guarantees:
//!
//! | Result | Function |
//! |---|---|
//! | Lemma 3 upper bound: `≤ 4·n·un` naïve comparisons | [`phase1_upper_bound`] |
//! | Corollary 1 lower bound: `≥ n·un/4` naïve comparisons | [`phase1_lower_bound`] |
//! | Theorem 1 upper bound: `≤ 2·s^{3/2}` expert comparisons | [`two_maxfind_upper_bound`] |
//! | Lemma 6 lower bound: `Ω(un^{4/3})` expert comparisons | [`expert_lower_bound_deterministic`] |
//! | Trivial expert lower bound `Ω(un)` | [`expert_lower_bound`] |
//! | Majority-vote failure bound `exp(-(1-2p)²k / (8(1-p)))` | [`majority_error_bound`] |
//! | Theorem 1 total cost | [`algorithm1_cost_upper_bound`] |

use crate::cost::CostModel;

/// Lemma 3: Algorithm 2 performs at most `4·n·un(n)` naïve comparisons.
pub fn phase1_upper_bound(n: usize, un: usize) -> u64 {
    4 * n as u64 * un as u64
}

/// Corollary 1: any naïve-only algorithm that returns a set guaranteed to
/// contain the maximum with `|S| <= n/2` performs at least `n·un(n)/4`
/// comparisons. Algorithm 2 is therefore optimal up to a factor 16.
pub fn phase1_lower_bound(n: usize, un: usize) -> u64 {
    (n as u64 * un as u64) / 4
}

/// Theorem 1: 2-MaxFind performs at most `2·s^{3/2}` comparisons on an
/// input of size `s`.
pub fn two_maxfind_upper_bound(s: usize) -> u64 {
    (2.0 * (s as f64).powf(1.5)).ceil() as u64
}

/// Lemma 6: any deterministic algorithm returning an element within `2δe`
/// of the maximum performs `Ω(un^{4/3})` expert comparisons. Returned here
/// with constant 1 (the paper gives only the order).
pub fn expert_lower_bound_deterministic(un: usize) -> u64 {
    (un as f64).powf(4.0 / 3.0).round() as u64
}

/// The simple `Ω(un(n))` expert lower bound (Section 4.3): `un(n)` elements
/// may be naïve-indistinguishable from the maximum, and each needs at least
/// one expert look.
pub fn expert_lower_bound(un: usize) -> u64 {
    un as u64
}

/// Section 3.2: with per-comparison error `p < 1/2`, the probability that a
/// `k`-worker majority vote picks the wrong element is at most
/// `exp(-(1-2p)²·k / (8·(1-p)))`.
///
/// Returns 1.0 when `p >= 1/2` (the bound is vacuous there — no amount of
/// voting helps, as in the paper's "n vs n+1 dots" example).
///
/// # Panics
///
/// Panics unless `0 <= p <= 1` and `k >= 1`.
pub fn majority_error_bound(p: f64, k: u32) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!(k >= 1, "at least one voter");
    if p >= 0.5 {
        return 1.0;
    }
    let num = (1.0 - 2.0 * p).powi(2) * k as f64;
    (-num / (8.0 * (1.0 - p))).exp()
}

/// Smallest odd number of voters whose [`majority_error_bound`] is at most
/// `target`. Returns `None` if `p >= 1/2` (unreachable).
pub fn voters_for_error(p: f64, target: f64) -> Option<u32> {
    assert!(target > 0.0 && target < 1.0, "target must be in (0, 1)");
    if p >= 0.5 {
        return None;
    }
    // Solve exp(-(1-2p)² k / (8(1-p))) <= target for k, then round up to odd.
    let k = (8.0 * (1.0 - p) * (1.0 / target).ln() / (1.0 - 2.0 * p).powi(2)).ceil() as u32;
    let k = k.max(1);
    Some(if k % 2 == 0 { k + 1 } else { k })
}

/// Lemma 5 / Theorem 1: an upper bound on the total monetary cost of
/// Algorithm 1 with 2-MaxFind as Phase 2:
/// `cn·4·n·un + ce·2·(2·un)^{3/2}` (Phase 2 runs on `|S| <= 2·un − 1`).
pub fn algorithm1_cost_upper_bound(n: usize, un: usize, prices: &CostModel) -> f64 {
    let naive = phase1_upper_bound(n, un) as f64;
    let expert = two_maxfind_upper_bound(2 * un) as f64;
    prices.naive * naive + prices.expert * expert
}

/// Cost of the 2-MaxFind-expert baseline in the worst case:
/// `ce · 2·n^{3/2}`.
pub fn two_maxfind_expert_cost_upper_bound(n: usize, prices: &CostModel) -> f64 {
    prices.expert * two_maxfind_upper_bound(n) as f64
}

/// Cost of the 2-MaxFind-naïve baseline in the worst case:
/// `cn · 2·n^{3/2}`.
pub fn two_maxfind_naive_cost_upper_bound(n: usize, prices: &CostModel) -> f64 {
    prices.naive * two_maxfind_upper_bound(n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase1_bounds_sandwich() {
        for (n, un) in [(100, 5), (1000, 10), (5000, 50)] {
            assert!(phase1_lower_bound(n, un) <= phase1_upper_bound(n, un));
            assert_eq!(phase1_upper_bound(n, un), 4 * (n * un) as u64);
            assert_eq!(phase1_lower_bound(n, un), (n * un) as u64 / 4);
        }
    }

    #[test]
    fn two_maxfind_bound_values() {
        assert_eq!(two_maxfind_upper_bound(100), 2000);
        assert_eq!(two_maxfind_upper_bound(0), 0);
    }

    #[test]
    fn expert_lower_bounds_are_ordered() {
        for un in [1usize, 10, 100, 1000] {
            assert!(expert_lower_bound(un) <= expert_lower_bound_deterministic(un).max(un as u64));
        }
        assert_eq!(expert_lower_bound_deterministic(8), 16); // 8^(4/3) = 16
    }

    #[test]
    fn majority_bound_decreases_in_k_and_increases_in_p() {
        assert!(majority_error_bound(0.3, 21) < majority_error_bound(0.3, 5));
        assert!(majority_error_bound(0.4, 11) > majority_error_bound(0.2, 11));
        assert_eq!(majority_error_bound(0.5, 100), 1.0);
        assert_eq!(majority_error_bound(0.7, 100), 1.0);
    }

    #[test]
    fn majority_bound_is_a_valid_probability() {
        for p in [0.0, 0.1, 0.25, 0.4, 0.49] {
            for k in [1, 3, 7, 21, 101] {
                let b = majority_error_bound(p, k);
                assert!((0.0..=1.0).contains(&b), "p={p} k={k} bound={b}");
            }
        }
    }

    #[test]
    fn majority_bound_is_actually_an_upper_bound_empirically() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let (p, k) = (0.3, 15u32);
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 30_000;
        let failures = (0..trials)
            .filter(|_| {
                let wrong = (0..k).filter(|_| rng.gen_bool(p)).count() as u32;
                2 * wrong > k // strict majority wrong
            })
            .count();
        let rate = failures as f64 / trials as f64;
        assert!(
            rate <= majority_error_bound(p, k) + 0.01,
            "empirical {rate} vs bound {}",
            majority_error_bound(p, k)
        );
    }

    #[test]
    fn voters_for_error_is_sufficient_and_odd() {
        let k = voters_for_error(0.3, 0.01).unwrap();
        assert_eq!(k % 2, 1);
        assert!(majority_error_bound(0.3, k) <= 0.01);
        // One fewer (odd) voter should not suffice, or k would not be minimal
        // at odd granularity.
        if k > 2 {
            assert!(majority_error_bound(0.3, k - 2) > 0.01);
        }
        assert_eq!(voters_for_error(0.5, 0.01), None);
    }

    #[test]
    fn cost_bounds_compose_prices() {
        let m = CostModel::with_ratio(10.0);
        let c = algorithm1_cost_upper_bound(1000, 10, &m);
        assert_eq!(
            c,
            (4 * 1000 * 10) as f64 + 10.0 * two_maxfind_upper_bound(20) as f64
        );
        assert!(
            two_maxfind_expert_cost_upper_bound(100, &m)
                > two_maxfind_naive_cost_upper_bound(100, &m)
        );
    }
}
