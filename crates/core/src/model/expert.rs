//! The two-class threshold model with experts (paper Section 3.3).
//!
//! The workforce `W` is split into naïve workers following `T(δn, εn)` and
//! expert workers following `T(δe, εe)`, with `δn ≫ δe` and `εe <= εn`
//! (possibly `εe = 0`). Elements within `δn` of each other are
//! *naïve-indistinguishable*; within `δe`, *expert-indistinguishable* —
//! and expert-indistinguishable implies naïve-indistinguishable.
//!
//! The defining property of the model is that an expert's answer **cannot be
//! simulated by aggregating naïve answers**: below `δn`, more naïve votes do
//! not increase accuracy. Which workers are experts is known in advance
//! (they are hired *because* they are experts).

use super::{ErrorModel, ThresholdModel, TiePolicy, WorkerClass};
use crate::element::{ElementId, Value};
use rand::RngCore;

/// A paired naïve/expert worker population.
///
/// This is a convenience for simulations that need "a worker of class `c`":
/// it owns one threshold model per class and dispatches on
/// [`WorkerClass`]. Construction enforces the model's defining inequalities
/// `δe <= δn` and `εe <= εn`.
#[derive(Debug, Clone)]
pub struct ExpertModel {
    naive: ThresholdModel,
    expert: ThresholdModel,
}

impl ExpertModel {
    /// Builds the two-class model from its four parameters, with a shared
    /// tie policy.
    ///
    /// # Panics
    ///
    /// Panics if `δe > δn` or `εe > εn` (the class called "expert" must
    /// actually be at least as good), or if any single-model invariant of
    /// [`ThresholdModel::new`] is violated.
    pub fn new(delta_n: f64, epsilon_n: f64, delta_e: f64, epsilon_e: f64, tie: TiePolicy) -> Self {
        assert!(
            delta_e <= delta_n,
            "experts must discern at least as well: δe <= δn"
        );
        assert!(
            epsilon_e <= epsilon_n,
            "experts must err at most as often: εe <= εn"
        );
        ExpertModel {
            naive: ThresholdModel::new(delta_n, epsilon_n, tie),
            expert: ThresholdModel::new(delta_e, epsilon_e, tie),
        }
    }

    /// The `εn = εe = 0` model used throughout the paper's analysis.
    pub fn exact(delta_n: f64, delta_e: f64, tie: TiePolicy) -> Self {
        Self::new(delta_n, 0.0, delta_e, 0.0, tie)
    }

    /// Builds the model from two independently configured threshold models.
    ///
    /// # Panics
    ///
    /// Panics if the expert model is not at least as discerning and accurate
    /// as the naïve one.
    pub fn from_models(naive: ThresholdModel, expert: ThresholdModel) -> Self {
        assert!(expert.delta() <= naive.delta(), "δe <= δn required");
        assert!(expert.epsilon() <= naive.epsilon(), "εe <= εn required");
        ExpertModel { naive, expert }
    }

    /// The model followed by workers of `class`.
    pub fn model(&self, class: WorkerClass) -> &ThresholdModel {
        match class {
            WorkerClass::Naive => &self.naive,
            WorkerClass::Expert => &self.expert,
        }
    }

    /// Mutable access, for running comparisons.
    pub fn model_mut(&mut self, class: WorkerClass) -> &mut ThresholdModel {
        match class {
            WorkerClass::Naive => &mut self.naive,
            WorkerClass::Expert => &mut self.expert,
        }
    }

    /// The discernment threshold of `class` (`δn` or `δe`).
    pub fn delta(&self, class: WorkerClass) -> f64 {
        self.model(class).delta()
    }

    /// The residual error of `class` (`εn` or `εe`).
    pub fn epsilon(&self, class: WorkerClass) -> f64 {
        self.model(class).epsilon()
    }

    /// Answers a whole run of comparisons as workers of `class` — the
    /// class dispatch happens once per batch instead of once per pair.
    /// Observationally identical to calling [`Self::compare`] per pair;
    /// see [`ThresholdModel::compare_many`] for the contract.
    pub fn compare_many<F, R>(
        &mut self,
        class: WorkerClass,
        pairs: &[(ElementId, ElementId)],
        value_of: F,
        winners: &mut Vec<ElementId>,
        rng: &mut R,
    ) where
        F: Fn(ElementId) -> Value,
        R: RngCore,
    {
        self.model_mut(class)
            .compare_many(pairs, value_of, winners, rng);
    }

    /// Runs one comparison as a worker of `class`.
    pub fn compare(
        &mut self,
        class: WorkerClass,
        k: ElementId,
        vk: Value,
        j: ElementId,
        vj: Value,
        rng: &mut dyn RngCore,
    ) -> ElementId {
        self.model_mut(class).compare(k, vk, j, vj, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const A: ElementId = ElementId(0);
    const B: ElementId = ElementId(1);

    #[test]
    fn expert_discriminates_where_naive_cannot() {
        // d(A, B) = 2: naïve-indistinguishable (δn = 5) but
        // expert-distinguishable (δe = 1).
        let mut m = ExpertModel::exact(5.0, 1.0, TiePolicy::FavorLower);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.compare(WorkerClass::Naive, A, 3.0, B, 1.0, &mut rng), B);
        assert_eq!(m.compare(WorkerClass::Expert, A, 3.0, B, 1.0, &mut rng), A);
    }

    #[test]
    fn expert_indistinguishable_implies_naive_indistinguishable() {
        let m = ExpertModel::exact(5.0, 1.0, TiePolicy::UniformRandom);
        assert!(m.delta(WorkerClass::Expert) <= m.delta(WorkerClass::Naive));
    }

    #[test]
    fn class_accessors() {
        let m = ExpertModel::new(5.0, 0.3, 1.0, 0.1, TiePolicy::UniformRandom);
        assert_eq!(m.delta(WorkerClass::Naive), 5.0);
        assert_eq!(m.delta(WorkerClass::Expert), 1.0);
        assert_eq!(m.epsilon(WorkerClass::Naive), 0.3);
        assert_eq!(m.epsilon(WorkerClass::Expert), 0.1);
    }

    #[test]
    fn from_models_accepts_valid_pair() {
        let n = ThresholdModel::exact(5.0, TiePolicy::UniformRandom);
        let e = ThresholdModel::exact(0.5, TiePolicy::Persistent);
        let m = ExpertModel::from_models(n, e);
        assert_eq!(
            m.model(WorkerClass::Expert).tie_policy(),
            TiePolicy::Persistent
        );
    }

    #[test]
    #[should_panic(expected = "δe <= δn")]
    fn rejects_inverted_deltas() {
        ExpertModel::exact(1.0, 5.0, TiePolicy::UniformRandom);
    }

    #[test]
    #[should_panic(expected = "εe <= εn")]
    fn rejects_inverted_epsilons() {
        ExpertModel::new(5.0, 0.1, 1.0, 0.3, TiePolicy::UniformRandom);
    }
}
