//! The probabilistic error model (paper Section 3.2, "Probabilistic Error
//! Model").
//!
//! "A common approach is to assume that an error occurs with some
//! probability: when a worker is given two elements to compare, she chooses
//! the one with highest value with some probability, and the one with lower
//! value with the residual probability, independently of any other
//! comparison." This is the model of Feige et al. \[11\] and the basic model
//! of Davidson et al. \[8\], and the `δ = 0` special case of the threshold
//! model.

use super::{true_loser, true_winner, ErrorModel};
use crate::element::{ElementId, Value};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// A worker who errs with fixed probability `p` on every comparison,
/// independently.
///
/// With `p < 1/2`, majority voting over `k` independent workers drives the
/// error probability down exponentially in `k` (the paper's bound
/// `exp(-(1-2p)^2 k / (8(1-p)))`, implemented in
/// [`crate::bounds::majority_error_bound`]) — this is the wisdom-of-crowds
/// regime observed on the DOTS dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbabilisticModel {
    p: f64,
}

impl ProbabilisticModel {
    /// A model with error probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`. Values `p >= 1/2` are permitted — they
    /// model the paper's "n dots vs n+1 dots" example where no amount of
    /// voting helps — but the algorithms' guarantees assume `p < 1/2`.
    pub fn new(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "error probability must be in [0, 1]"
        );
        ProbabilisticModel { p }
    }

    /// A perfect comparator (`p = 0`).
    pub fn perfect() -> Self {
        ProbabilisticModel { p: 0.0 }
    }

    /// The error probability `p`.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl ErrorModel for ProbabilisticModel {
    fn compare(
        &mut self,
        k: ElementId,
        vk: Value,
        j: ElementId,
        vj: Value,
        rng: &mut dyn RngCore,
    ) -> ElementId {
        if self.p > 0.0 && rng.gen_bool(self.p) {
            true_loser(k, vk, j, vj)
        } else {
            true_winner(k, vk, j, vj)
        }
    }

    fn delta(&self) -> f64 {
        0.0
    }

    fn epsilon(&self) -> f64 {
        self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const A: ElementId = ElementId(0);
    const B: ElementId = ElementId(1);

    #[test]
    fn perfect_model_never_errs() {
        let mut m = ProbabilisticModel::perfect();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(m.compare(A, 2.0, B, 1.0, &mut rng), A);
            assert_eq!(m.compare(A, 1.0, B, 2.0, &mut rng), B);
        }
    }

    #[test]
    fn p_one_always_errs() {
        let mut m = ProbabilisticModel::new(1.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(m.compare(A, 2.0, B, 1.0, &mut rng), B);
        }
    }

    #[test]
    fn empirical_error_rate_matches_p() {
        let mut m = ProbabilisticModel::new(0.3);
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 20_000;
        let errors = (0..trials)
            .filter(|_| m.compare(A, 2.0, B, 1.0, &mut rng) == B)
            .count();
        let rate = errors as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed error rate {rate}");
    }

    #[test]
    fn delta_is_zero_epsilon_is_p() {
        let m = ProbabilisticModel::new(0.25);
        assert_eq!(m.delta(), 0.0);
        assert_eq!(m.epsilon(), 0.25);
        assert_eq!(m.p(), 0.25);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn rejects_invalid_probability() {
        ProbabilisticModel::new(1.5);
    }
}
