//! Worker error models (paper Sections 3.2–3.3).
//!
//! A worker presented with a pair `(k, j)` "computes" a comparison function
//! `m_w(k, j)` returning the element she believes has the larger value. How
//! `m_w` relates to the true values is governed by an error model:
//!
//! * [`ProbabilisticModel`] — the classical model of Feige et al.: the worker
//!   errs with a fixed probability `p`, independently per comparison.
//! * [`ThresholdModel`] — the paper's `T(δ, ε)` model: above distance `δ`
//!   the worker errs with probability `ε`; at distance `≤ δ` the answer is
//!   *arbitrary* (see [`TiePolicy`]). The probabilistic model is exactly
//!   `T(0, p)`.
//! * [`ExpertModel`] — the two-class model: naïve workers follow
//!   `T(δn, εn)`, experts follow `T(δe, εe)` with `δe ≪ δn`, `εe ≤ εn`.
//!
//! Models are deliberately *stateful* (`&mut self`): the threshold model's
//! [`TiePolicy::Persistent`] remembers its arbitrary choices, matching the
//! paper's remark that a worker asked the same hard question repeatedly "may
//! return k on some occasions and j in others, **or always k or always j**".

mod expert;
mod probabilistic;
mod threshold;

pub use expert::ExpertModel;
pub use probabilistic::ProbabilisticModel;
pub use threshold::{ThresholdModel, TiePolicy};

use crate::element::{ElementId, Value};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The class of worker performing a comparison.
///
/// The paper's cost model (Section 3.4) charges `cn` per naïve comparison
/// and `ce ≫ cn` per expert comparison, and its algorithm uses the classes
/// in different phases; every oracle call is therefore tagged with a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkerClass {
    /// Cheap, plentiful workers with coarse discernment `δn`.
    Naive,
    /// Scarce, expensive workers with fine discernment `δe ≪ δn`.
    Expert,
}

impl WorkerClass {
    /// Both classes, naïve first.
    pub const ALL: [WorkerClass; 2] = [WorkerClass::Naive, WorkerClass::Expert];
}

impl std::fmt::Display for WorkerClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerClass::Naive => write!(f, "naive"),
            WorkerClass::Expert => write!(f, "expert"),
        }
    }
}

/// A worker error model: decides the outcome of a single pairwise comparison.
///
/// Implementations receive the ground-truth values (they simulate the human,
/// who "knows" — imperfectly — the real world) and an RNG, and return the id
/// of the element the worker declares the winner. The algorithms in
/// [`crate::algorithms`] never see values; they only see winners through a
/// [`ComparisonOracle`](crate::oracle::ComparisonOracle).
pub trait ErrorModel {
    /// The element the worker returns when asked to compare `k` and `j`.
    ///
    /// `k` and `j` must be distinct *ids* (the paper allows `d(k, j) = 0`,
    /// i.e. equal values, but a worker is never handed two copies of the same
    /// element).
    fn compare(
        &mut self,
        k: ElementId,
        vk: Value,
        j: ElementId,
        vj: Value,
        rng: &mut dyn RngCore,
    ) -> ElementId;

    /// The discernment threshold `δ` of this model, if it has one
    /// (`0` for the probabilistic model).
    fn delta(&self) -> f64;

    /// The residual error probability `ε` of this model.
    fn epsilon(&self) -> f64;
}

/// Returns the element with the truly larger value (ties: smaller id, so the
/// outcome is deterministic). Shared by the model implementations and
/// available to downstream crates building custom [`ErrorModel`]s.
#[inline]
pub fn true_winner(k: ElementId, vk: Value, j: ElementId, vj: Value) -> ElementId {
    if vk > vj || (vk == vj && k < j) {
        k
    } else {
        j
    }
}

/// Returns the element with the truly smaller value — the "wrong" answer.
#[inline]
pub fn true_loser(k: ElementId, vk: Value, j: ElementId, vj: Value) -> ElementId {
    if true_winner(k, vk, j, vj) == k {
        j
    } else {
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_class_display() {
        assert_eq!(WorkerClass::Naive.to_string(), "naive");
        assert_eq!(WorkerClass::Expert.to_string(), "expert");
    }

    #[test]
    fn true_winner_and_loser_are_complementary() {
        let (a, b) = (ElementId(0), ElementId(1));
        assert_eq!(true_winner(a, 2.0, b, 1.0), a);
        assert_eq!(true_loser(a, 2.0, b, 1.0), b);
        assert_eq!(true_winner(a, 1.0, b, 2.0), b);
        assert_eq!(true_loser(a, 1.0, b, 2.0), a);
    }

    #[test]
    fn true_winner_breaks_value_ties_by_id() {
        let (a, b) = (ElementId(3), ElementId(7));
        assert_eq!(true_winner(a, 5.0, b, 5.0), a);
        assert_eq!(true_winner(b, 5.0, a, 5.0), a);
    }
}
