//! The threshold error model `T(δ, ε)` (paper Section 3.2, "Threshold
//! Model"), extending Ajtai et al. \[2\] and formalizing the psychometric
//! notion of a *Just Noticeable Difference* (Weber–Fechner, Thurstone).
//!
//! Whenever a worker compares `k` and `j`:
//!
//! * if `d(k, j) > δ`, she returns the truly larger element with probability
//!   `1 − ε` and the smaller one with probability `ε`;
//! * if `d(k, j) <= δ` (the elements are *indistinguishable* to her), she
//!   answers **arbitrarily** — and crucially, asking more workers does not
//!   help, which is the accuracy plateau the paper measured on CARS.
//!
//! "Arbitrarily" is not "uniformly at random": the paper explicitly allows a
//! worker to always return `k`, always return `j`, or mix. [`TiePolicy`]
//! makes that choice pluggable, including adversarial policies used by the
//! worst-case experiments (Figures 4, 9, 10).

use super::{true_loser, true_winner, ErrorModel};
use crate::element::{ElementId, Value};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How a threshold worker answers when the two elements are within her
/// discernment threshold (`d(k, j) <= δ`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TiePolicy {
    /// Each indistinguishable comparison is a fresh fair coin flip.
    #[default]
    UniformRandom,
    /// The worker makes an arbitrary (random) choice the *first* time she
    /// sees a pair and sticks to it forever — "always k or always j".
    Persistent,
    /// Adversarial: the truly smaller element always wins. This is the
    /// worst case for max-finding (it hides the maximum) and the policy used
    /// to realize the paper's worst-case cost curves.
    FavorLower,
    /// The truly larger element always wins (a best case: the threshold
    /// never actually hurts).
    FavorHigher,
    /// The element with the smaller id always wins — arbitrary but
    /// value-independent, useful to exercise "consistent yet uninformative"
    /// behaviour in tests.
    FavorSmallerId,
}

/// A worker following the threshold model `T(δ, ε)`.
///
/// `ThresholdModel::new(0.0, p, _)` behaves exactly like
/// [`ProbabilisticModel`](super::ProbabilisticModel) with error `p` when
/// values are distinct (footnote 5 of the paper: "the probabilistic error
/// model is a special case of the threshold model when δ = 0"); equal-valued
/// pairs have `d = 0 <= δ` and fall under the tie policy, which is the only
/// sensible reading since no comparator can order equal values.
#[derive(Debug, Clone)]
pub struct ThresholdModel {
    delta: f64,
    epsilon: f64,
    tie_policy: TiePolicy,
    /// Remembered arbitrary choices for [`TiePolicy::Persistent`], keyed by
    /// unordered pair.
    persistent_choices: HashMap<(ElementId, ElementId), ElementId>,
}

impl ThresholdModel {
    /// A threshold worker with discernment `δ >= 0`, residual error
    /// `ε in [0, 1)`, and the given behaviour on indistinguishable pairs.
    ///
    /// # Panics
    ///
    /// Panics if `δ` is negative or not finite, or if `ε` is outside
    /// `[0, 1)`.
    pub fn new(delta: f64, epsilon: f64, tie_policy: TiePolicy) -> Self {
        assert!(
            delta.is_finite() && delta >= 0.0,
            "δ must be finite and non-negative"
        );
        assert!((0.0..1.0).contains(&epsilon), "ε must be in [0, 1)");
        ThresholdModel {
            delta,
            epsilon,
            tie_policy,
            persistent_choices: HashMap::new(),
        }
    }

    /// A worker with zero residual error: perfect above the threshold,
    /// arbitrary below. This is the `εn = εe = 0` simplification the paper
    /// adopts for its analysis (Section 4, Remark).
    pub fn exact(delta: f64, tie_policy: TiePolicy) -> Self {
        Self::new(delta, 0.0, tie_policy)
    }

    /// The tie policy in force.
    pub fn tie_policy(&self) -> TiePolicy {
        self.tie_policy
    }

    /// Answers a whole run of comparisons, pushing one winner per pair.
    ///
    /// Observationally identical to calling
    /// [`compare`](ErrorModel::compare) once per pair with the same `rng`:
    /// the same answers, in order, consuming the same random draws. What
    /// changes is the cost profile, not the behaviour: the generator is
    /// monomorphic (no per-draw virtual dispatch) and the winner of a
    /// decided pair is picked with branchless selects, so the
    /// data-dependent 50/50 outcome no longer costs a branch
    /// misprediction per comparison. This is the engine under
    /// [`SimulatedOracle::compare_batch`](crate::oracle::SimulatedOracle).
    pub fn compare_many<F, R>(
        &mut self,
        pairs: &[(ElementId, ElementId)],
        value_of: F,
        winners: &mut Vec<ElementId>,
        rng: &mut R,
    ) where
        F: Fn(ElementId) -> Value,
        R: RngCore,
    {
        let delta = self.delta;
        let epsilon = self.epsilon;
        if epsilon == 0.0 && self.tie_policy == TiePolicy::UniformRandom {
            // Exact worker, fair-coin ties — the configuration every
            // benchmark runs — gets a fully branchless two-pass path.
            //
            // Pass 1 answers every pair as if it were decided (a masked
            // select, no branch) and records the positions of ties with a
            // branchless cursor: the slot is written unconditionally and
            // the cursor advances only when the pair was a tie, so the
            // data-dependent 50/50 outcome never becomes a mispredicted
            // branch. Pass 2 walks the tie positions in pair order and
            // overwrites each with one fair-coin draw. Decided pairs
            // consume no randomness when ε = 0, so drawing only at tie
            // positions, in order, reproduces the scalar loop's RNG
            // stream exactly.
            let base = winners.len();
            let mut ties = vec![0u32; pairs.len()];
            let mut tie_count = 0usize;
            winners.extend(pairs.iter().enumerate().map(|(i, &(k, j))| {
                let vk = value_of(k);
                let vj = value_of(j);
                ties[tie_count] = i as u32;
                tie_count += usize::from((vk - vj).abs() <= delta);
                let k_wins = vk > vj || (vk == vj && k < j);
                select(k_wins, k, j)
            }));
            for &i in &ties[..tie_count] {
                let (k, j) = pairs[i as usize];
                winners[base + i as usize] = select(rng.gen_bool(0.5), k, j);
            }
            return;
        }
        // General path: `extend` over an exact-size iterator — the winner
        // buffer grows once up front instead of a capacity check per push.
        // The map closure runs strictly in pair order, so the RNG stream
        // matches the scalar loop draw for draw.
        winners.extend(pairs.iter().map(|&(k, j)| {
            let vk = value_of(k);
            let vj = value_of(j);
            if (vk - vj).abs() <= delta {
                match self.tie_policy {
                    // Same draw as `tie_break`, selected branchlessly.
                    TiePolicy::UniformRandom => select(rng.gen_bool(0.5), k, j),
                    _ => self.tie_break(k, vk, j, vj, rng),
                }
            } else {
                // `true_winner`'s predicate verbatim; a decided pair has
                // d > δ >= 0 so the id tie-break arm is vacuous, but
                // matching it keeps the equivalence self-evident.
                let k_wins = vk > vj || (vk == vj && k < j);
                if epsilon > 0.0 && rng.gen_bool(epsilon) {
                    select(k_wins, j, k)
                } else {
                    select(k_wins, k, j)
                }
            }
        }));
    }

    fn tie_break(
        &mut self,
        k: ElementId,
        vk: Value,
        j: ElementId,
        vj: Value,
        rng: &mut dyn RngCore,
    ) -> ElementId {
        match self.tie_policy {
            TiePolicy::UniformRandom => {
                if rng.gen_bool(0.5) {
                    k
                } else {
                    j
                }
            }
            TiePolicy::Persistent => {
                let key = if k < j { (k, j) } else { (j, k) };
                *self.persistent_choices.entry(key).or_insert_with(|| {
                    if rng.gen_bool(0.5) {
                        k
                    } else {
                        j
                    }
                })
            }
            TiePolicy::FavorLower => true_loser(k, vk, j, vj),
            TiePolicy::FavorHigher => true_winner(k, vk, j, vj),
            TiePolicy::FavorSmallerId => {
                if k < j {
                    k
                } else {
                    j
                }
            }
        }
    }
}

/// `cond ? a : b` as mask arithmetic. The winner of a decided comparison
/// is a 50/50 data-dependent choice; compiled as a branch it costs a
/// misprediction nearly every time, which dominates the batch hot loop.
#[inline(always)]
fn select(cond: bool, a: ElementId, b: ElementId) -> ElementId {
    let mask = (cond as u32).wrapping_neg();
    ElementId((a.0 & mask) | (b.0 & !mask))
}

impl ErrorModel for ThresholdModel {
    fn compare(
        &mut self,
        k: ElementId,
        vk: Value,
        j: ElementId,
        vj: Value,
        rng: &mut dyn RngCore,
    ) -> ElementId {
        let distance = (vk - vj).abs();
        if distance <= self.delta {
            self.tie_break(k, vk, j, vj, rng)
        } else if self.epsilon > 0.0 && rng.gen_bool(self.epsilon) {
            true_loser(k, vk, j, vj)
        } else {
            true_winner(k, vk, j, vj)
        }
    }

    fn delta(&self) -> f64 {
        self.delta
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const A: ElementId = ElementId(0);
    const B: ElementId = ElementId(1);

    #[test]
    fn above_threshold_exact_worker_is_correct() {
        let mut m = ThresholdModel::exact(1.0, TiePolicy::UniformRandom);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(m.compare(A, 5.0, B, 1.0, &mut rng), A);
            assert_eq!(m.compare(A, 1.0, B, 5.0, &mut rng), B);
        }
    }

    #[test]
    fn at_threshold_boundary_is_indistinguishable() {
        // d(k, j) <= δ triggers the tie policy, including equality.
        let mut m = ThresholdModel::exact(1.0, TiePolicy::FavorLower);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(m.compare(A, 2.0, B, 1.0, &mut rng), B); // d = 1.0 = δ
        assert_eq!(m.compare(A, 2.1, B, 1.0, &mut rng), A); // d = 1.1 > δ
    }

    #[test]
    fn uniform_tie_is_roughly_fair() {
        let mut m = ThresholdModel::exact(1.0, TiePolicy::UniformRandom);
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 10_000;
        let a_wins = (0..trials)
            .filter(|_| m.compare(A, 1.5, B, 1.0, &mut rng) == A)
            .count();
        let frac = a_wins as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.03, "A won fraction {frac}");
    }

    #[test]
    fn persistent_tie_never_changes_its_mind() {
        let mut m = ThresholdModel::exact(1.0, TiePolicy::Persistent);
        let mut rng = StdRng::seed_from_u64(4);
        let first = m.compare(A, 1.5, B, 1.0, &mut rng);
        for _ in 0..100 {
            assert_eq!(m.compare(A, 1.5, B, 1.0, &mut rng), first);
            // Order of presentation must not matter either.
            assert_eq!(m.compare(B, 1.0, A, 1.5, &mut rng), first);
        }
    }

    #[test]
    fn persistent_choices_are_per_pair() {
        let mut m = ThresholdModel::exact(10.0, TiePolicy::Persistent);
        let mut rng = StdRng::seed_from_u64(5);
        let c = ElementId(2);
        // Make enough pairs that with overwhelming probability not all
        // choices coincide by chance; just assert stability per pair.
        let ab = m.compare(A, 1.0, B, 1.1, &mut rng);
        let ac = m.compare(A, 1.0, c, 1.2, &mut rng);
        for _ in 0..20 {
            assert_eq!(m.compare(A, 1.0, B, 1.1, &mut rng), ab);
            assert_eq!(m.compare(A, 1.0, c, 1.2, &mut rng), ac);
        }
    }

    #[test]
    fn favor_lower_hides_the_larger_element() {
        let mut m = ThresholdModel::exact(1.0, TiePolicy::FavorLower);
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(m.compare(A, 1.5, B, 1.0, &mut rng), B);
        assert_eq!(m.compare(B, 1.0, A, 1.5, &mut rng), B);
    }

    #[test]
    fn favor_higher_and_smaller_id() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut hi = ThresholdModel::exact(1.0, TiePolicy::FavorHigher);
        assert_eq!(hi.compare(A, 1.0, B, 1.5, &mut rng), B);
        let mut sid = ThresholdModel::exact(1.0, TiePolicy::FavorSmallerId);
        assert_eq!(sid.compare(B, 1.5, A, 1.0, &mut rng), A);
    }

    #[test]
    fn residual_error_applies_above_threshold() {
        let mut m = ThresholdModel::new(0.5, 0.2, TiePolicy::UniformRandom);
        let mut rng = StdRng::seed_from_u64(8);
        let trials = 20_000;
        let errors = (0..trials)
            .filter(|_| m.compare(A, 5.0, B, 1.0, &mut rng) == B)
            .count();
        let rate = errors as f64 / trials as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed ε {rate}");
    }

    #[test]
    fn zero_delta_equals_probabilistic_model_on_distinct_values() {
        let mut m = ThresholdModel::new(0.0, 0.0, TiePolicy::FavorLower);
        let mut rng = StdRng::seed_from_u64(9);
        // Distinct values: always correct despite adversarial tie policy.
        assert_eq!(m.compare(A, 2.0, B, 1.0, &mut rng), A);
        // Equal values: d = 0 <= δ = 0, the tie policy decides.
        assert_eq!(m.compare(A, 1.0, B, 1.0, &mut rng), B);
    }

    #[test]
    #[should_panic(expected = "ε must be in [0, 1)")]
    fn rejects_epsilon_one() {
        ThresholdModel::new(1.0, 1.0, TiePolicy::UniformRandom);
    }

    #[test]
    #[should_panic(expected = "δ must be finite")]
    fn rejects_negative_delta() {
        ThresholdModel::new(-1.0, 0.0, TiePolicy::UniformRandom);
    }
}
