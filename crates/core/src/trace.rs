//! Comparison-level tracing: attribute worker-performed comparisons to
//! algorithm phases and filter rounds, and tally them across threads.
//!
//! Two cooperating mechanisms live here:
//!
//! * [`InstrumentedOracle`] — a [`ComparisonOracle`] decorator that listens
//!   to the round/phase boundary events emitted by
//!   [`filter_candidates`](crate::algorithms::filter_candidates) and
//!   [`expert_max_find`](crate::algorithms::expert_max_find) (via the
//!   provided [`ComparisonOracle::observe`] hook) and turns them into a
//!   [`Trace`]: one [`TraceSpan`] per round and per phase, each carrying
//!   the per-class comparison tally and the wall-clock time spent inside.
//! * [`TallySink`] — a thread-safe comparison counter that can be
//!   *installed* on the current thread ([`install_sink`]); while installed,
//!   every worker-performed comparison recorded anywhere in the process on
//!   that thread (the single chokepoint is
//!   [`ComparisonCounts::record`]) is also added to the sink. Sinks nest:
//!   an experiment-level sink and a trial-level sink both see the same
//!   comparison. Parallel runners capture the caller's sink stack with
//!   [`current_sinks`] and re-install it on their worker threads
//!   ([`install_sinks`]) so fan-out attributes work to the right owner.
//!
//! Neither mechanism changes algorithm behaviour or existing signatures:
//! `observe` has a no-op default, and sinks only add to atomic counters.

use crate::element::ElementId;
use crate::model::WorkerClass;
use crate::oracle::{ComparisonCounts, ComparisonOracle};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The two phases of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TracePhase {
    /// Phase 1: the naïve tournament filter (Algorithm 2).
    Filter,
    /// Phase 2: expert selection on the candidate set.
    Expert,
}

/// Boundary events emitted by the algorithms through
/// [`ComparisonOracle::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A phase of Algorithm 1 begins.
    PhaseStart(TracePhase),
    /// The matching phase ends.
    PhaseEnd(TracePhase),
    /// Filter round `r` (0-based) begins.
    RoundStart(u32),
    /// Filter round `r` ends.
    RoundEnd(u32),
    /// Summary of a finished filter round, emitted between the round's
    /// work and its [`RoundEnd`](TraceEvent::RoundEnd): how many tournament
    /// groups it played and how many elements survived. Listeners that
    /// snapshotted [`ComparisonOracle::counts`] at
    /// [`RoundStart`](TraceEvent::RoundStart) can attribute the round's
    /// comparison cost by diffing here.
    RoundStats {
        /// Round index (0-based), matching the bracketing start/end events.
        round: u32,
        /// Tournament groups the round played.
        groups: u32,
        /// Elements surviving the round.
        survivors: u64,
    },
    /// A fault was injected or handled somewhere below this oracle.
    Fault {
        /// The worker class the faulting judgment was assigned to.
        class: WorkerClass,
        /// What went wrong (or what recovery fired).
        kind: FaultKind,
    },
}

/// The kinds of faults and recovery actions the platform layer can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// A worker dropped out of the campaign before judging anything.
    Dropout,
    /// A worker abandoned an assigned judgment mid-job.
    Abandon,
    /// A worker transiently failed to answer one judgment.
    NoAnswer,
    /// An assigned judgment exceeded the timeout and was written off.
    Timeout,
    /// A judgment was re-assigned to a different worker.
    Retry,
    /// A unit exhausted its retries and was dead-lettered.
    DeadLetter,
    /// An expert job fell back to boosted naïve majority voting.
    ExpertFallback,
}

impl FaultKind {
    /// All kinds, in declaration order — handy for iteration in reports.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::Dropout,
        FaultKind::Abandon,
        FaultKind::NoAnswer,
        FaultKind::Timeout,
        FaultKind::Retry,
        FaultKind::DeadLetter,
        FaultKind::ExpertFallback,
    ];
}

/// Why a unit was dead-lettered — the distinction dashboards need to tell
/// a quarantine storm from a small pool or an exhausted campaign budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeadLetterReason {
    /// Every retry was attempted and none produced a usable judgment.
    RetriesExhausted,
    /// Healthy workers exist, but each one already touched the unit (the
    /// distinct-workers-per-unit invariant forbids re-use).
    NoFreshWorkers,
    /// Every eligible worker was unhealthy — excluded or quarantined by a
    /// circuit breaker — when the retry looked for a fresh assignee.
    NoHealthyWorkers,
    /// The campaign or tenant budget refused to fund further attempts.
    BudgetExhausted,
}

impl DeadLetterReason {
    /// All reasons, in declaration order.
    pub const ALL: [DeadLetterReason; 4] = [
        DeadLetterReason::RetriesExhausted,
        DeadLetterReason::NoFreshWorkers,
        DeadLetterReason::NoHealthyWorkers,
        DeadLetterReason::BudgetExhausted,
    ];
}

/// Why a job completed in degraded mode instead of the full two-phase
/// protocol. A degraded result is still an answer — the service contract
/// is "correct or *explicitly* degraded", never a panic or a hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DegradedReason {
    /// The job's logical-clock deadline lapsed before it finished.
    DeadlineLapsed,
    /// No healthy expert remained, so the verification phase fell back to
    /// vote-boosted naïve majorities.
    ExpertExhausted,
    /// The tenant's comparison budget ran out mid-job.
    BudgetExhausted,
    /// One or more comparisons dead-lettered and their outcomes were
    /// defaulted deterministically.
    DeadLetters,
}

impl DegradedReason {
    /// All reasons, in declaration order.
    pub const ALL: [DegradedReason; 4] = [
        DegradedReason::DeadlineLapsed,
        DegradedReason::ExpertExhausted,
        DegradedReason::BudgetExhausted,
        DegradedReason::DeadLetters,
    ];
}

/// Per-kind fault tallies for one worker class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultTally {
    /// Workers that dropped out before judging.
    pub dropouts: u64,
    /// Judgments abandoned mid-job.
    pub abandons: u64,
    /// Transient no-answer faults.
    pub no_answers: u64,
    /// Judgments written off after exceeding the timeout.
    pub timeouts: u64,
    /// Judgments re-assigned to a different worker.
    pub retries: u64,
    /// Units dead-lettered after exhausting retries.
    pub dead_letters: u64,
    /// Jobs degraded to boosted naïve majority voting.
    pub expert_fallbacks: u64,
}

impl FaultTally {
    /// All-zero tally.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Increments the counter for `kind`.
    pub fn record(&mut self, kind: FaultKind) {
        *self.slot(kind) += 1;
    }

    /// The count for `kind`.
    pub fn of(&self, kind: FaultKind) -> u64 {
        match kind {
            FaultKind::Dropout => self.dropouts,
            FaultKind::Abandon => self.abandons,
            FaultKind::NoAnswer => self.no_answers,
            FaultKind::Timeout => self.timeouts,
            FaultKind::Retry => self.retries,
            FaultKind::DeadLetter => self.dead_letters,
            FaultKind::ExpertFallback => self.expert_fallbacks,
        }
    }

    /// Sum over all kinds.
    pub fn total(&self) -> u64 {
        FaultKind::ALL.iter().map(|k| self.of(*k)).sum()
    }

    fn slot(&mut self, kind: FaultKind) -> &mut u64 {
        match kind {
            FaultKind::Dropout => &mut self.dropouts,
            FaultKind::Abandon => &mut self.abandons,
            FaultKind::NoAnswer => &mut self.no_answers,
            FaultKind::Timeout => &mut self.timeouts,
            FaultKind::Retry => &mut self.retries,
            FaultKind::DeadLetter => &mut self.dead_letters,
            FaultKind::ExpertFallback => &mut self.expert_fallbacks,
        }
    }
}

impl std::ops::Add for FaultTally {
    type Output = FaultTally;
    fn add(mut self, rhs: FaultTally) -> FaultTally {
        self += rhs;
        self
    }
}

impl std::ops::AddAssign for FaultTally {
    fn add_assign(&mut self, rhs: FaultTally) {
        for kind in FaultKind::ALL {
            *self.slot(kind) += rhs.of(kind);
        }
    }
}

/// Fault tallies split by worker class — the fault-side twin of
/// [`ComparisonCounts`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounts {
    /// Faults on naïve-class judgments and workers.
    pub naive: FaultTally,
    /// Faults on expert-class judgments and workers.
    pub expert: FaultTally,
}

impl FaultCounts {
    /// All-zero counts.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Records one fault *and* feeds every installed [`TallySink`] — the
    /// chokepoint the platform layer calls when it injects or handles a
    /// fault. The twin of [`ComparisonCounts::record`].
    pub fn record(&mut self, class: WorkerClass, kind: FaultKind) {
        self.add(class, kind);
        note_fault(class, kind);
    }

    /// Plain increment without sink feeding — for decorators tallying
    /// faults they merely *observed* (already recorded at the source).
    pub fn add(&mut self, class: WorkerClass, kind: FaultKind) {
        self.by_class_mut(class).record(kind);
    }

    /// The tally for `class`.
    pub fn by_class(&self, class: WorkerClass) -> &FaultTally {
        match class {
            WorkerClass::Naive => &self.naive,
            WorkerClass::Expert => &self.expert,
        }
    }

    /// Sum over both classes and all kinds.
    pub fn total(&self) -> u64 {
        self.naive.total() + self.expert.total()
    }

    fn by_class_mut(&mut self, class: WorkerClass) -> &mut FaultTally {
        match class {
            WorkerClass::Naive => &mut self.naive,
            WorkerClass::Expert => &mut self.expert,
        }
    }
}

impl std::ops::Add for FaultCounts {
    type Output = FaultCounts;
    fn add(self, rhs: FaultCounts) -> FaultCounts {
        FaultCounts {
            naive: self.naive + rhs.naive,
            expert: self.expert + rhs.expert,
        }
    }
}

/// What a closed [`TraceSpan`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// One phase of Algorithm 1.
    Phase(TracePhase),
    /// One filter round (0-based).
    Round(u32),
}

/// One closed span: comparisons and wall time between a start event and
/// its matching end event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// The span's extent.
    pub kind: SpanKind,
    /// Worker-performed comparisons inside the span, by class.
    pub comparisons: ComparisonCounts,
    /// Wall-clock time inside the span, in nanoseconds.
    pub wall_nanos: u64,
}

/// An ordered log of closed spans.
///
/// Spans appear in *closing* order, so a phase's rounds precede the phase
/// span that contains them.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// All closed spans.
    pub spans: Vec<TraceSpan>,
}

impl Trace {
    /// The round spans, in round order.
    pub fn rounds(&self) -> impl Iterator<Item = &TraceSpan> {
        self.spans
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::Round(_)))
    }

    /// The span of `phase`, if that phase closed.
    pub fn phase(&self, phase: TracePhase) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.kind == SpanKind::Phase(phase))
    }
}

/// Decorator recording a [`Trace`] from the boundary events the wrapped
/// algorithms emit.
///
/// ```
/// use crowd_core::prelude::*;
///
/// let instance = Instance::new((0..200).map(|i| i as f64).collect());
/// let mut oracle = InstrumentedOracle::new(PerfectOracle::new(instance.clone()));
/// let out = filter_candidates(&mut oracle, &instance.ids(), &FilterConfig::new(4));
/// let trace = oracle.take_trace();
/// let per_round: u64 = trace.rounds().map(|s| s.comparisons.naive).sum();
/// assert_eq!(per_round, out.comparisons.naive); // every comparison attributed
/// ```
#[derive(Debug)]
pub struct InstrumentedOracle<O> {
    inner: O,
    trace: Trace,
    open: Vec<(SpanKind, ComparisonCounts, Instant)>,
    faults: FaultCounts,
}

impl<O: ComparisonOracle> InstrumentedOracle<O> {
    /// Wraps `inner` with an empty trace.
    pub fn new(inner: O) -> Self {
        InstrumentedOracle {
            inner,
            trace: Trace::default(),
            open: Vec::new(),
            faults: FaultCounts::zero(),
        }
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Fault events observed so far (retries, timeouts, dropouts, ...),
    /// tallied by worker class.
    pub fn fault_counts(&self) -> FaultCounts {
        self.faults
    }

    /// Takes the recorded trace, leaving an empty one.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Consumes the decorator, returning the wrapped oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }

    fn open_span(&mut self, kind: SpanKind) {
        self.open.push((kind, self.inner.counts(), Instant::now()));
    }

    fn close_span(&mut self, kind: SpanKind) {
        // Pop the most recent matching span; an end without a start (a
        // hand-written driver emitting unbalanced events) is ignored.
        if let Some(pos) = self.open.iter().rposition(|(k, _, _)| *k == kind) {
            let (_, before, started) = self.open.remove(pos);
            // Saturating: a hand-written driver pairing events across two
            // different oracles must not bring the whole run down.
            self.trace.spans.push(TraceSpan {
                kind,
                comparisons: self.inner.counts().saturating_sub(before),
                wall_nanos: started.elapsed().as_nanos() as u64,
            });
        }
    }
}

impl<O: ComparisonOracle> ComparisonOracle for InstrumentedOracle<O> {
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
        self.inner.compare(class, k, j)
    }

    fn try_compare(
        &mut self,
        class: WorkerClass,
        k: ElementId,
        j: ElementId,
    ) -> Result<ElementId, crate::oracle::OracleError> {
        self.inner.try_compare(class, k, j)
    }

    fn compare_batch(
        &mut self,
        class: WorkerClass,
        pairs: &[(ElementId, ElementId)],
        winners: &mut Vec<ElementId>,
    ) {
        self.inner.compare_batch(class, pairs, winners);
    }

    fn try_compare_batch(
        &mut self,
        class: WorkerClass,
        pairs: &[(ElementId, ElementId)],
        winners: &mut Vec<ElementId>,
    ) -> Result<(), crate::oracle::OracleError> {
        self.inner.try_compare_batch(class, pairs, winners)
    }

    fn counts(&self) -> ComparisonCounts {
        self.inner.counts()
    }

    fn observe(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::PhaseStart(p) => self.open_span(SpanKind::Phase(p)),
            TraceEvent::PhaseEnd(p) => self.close_span(SpanKind::Phase(p)),
            TraceEvent::RoundStart(r) => self.open_span(SpanKind::Round(r)),
            TraceEvent::RoundEnd(r) => self.close_span(SpanKind::Round(r)),
            // Span bookkeeping already covers rounds; the summary is for
            // listeners that want per-round structure (e.g. `crowd-obs`).
            TraceEvent::RoundStats { .. } => {}
            // Already recorded (and sink-fed) at the source; a plain add
            // here would otherwise double-count in the manifest.
            TraceEvent::Fault { class, kind } => self.faults.add(class, kind),
        }
        self.inner.observe(event);
    }
}

/// A thread-safe per-class comparison (and fault) tally fed by
/// [`ComparisonCounts::record`] / [`FaultCounts::record`] while installed
/// on a thread.
#[derive(Debug, Default)]
pub struct TallySink {
    naive: AtomicU64,
    expert: AtomicU64,
    faults: Mutex<FaultCounts>,
}

impl TallySink {
    /// A fresh zero tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one comparison of `class`.
    pub fn add(&self, class: WorkerClass) {
        self.add_many(class, 1);
    }

    /// Adds `n` comparisons of `class` in one atomic step — the bulk feed
    /// used by [`ComparisonCounts::record_many`] so a batch costs one
    /// `fetch_add` per sink instead of one per comparison.
    pub fn add_many(&self, class: WorkerClass, n: u64) {
        match class {
            WorkerClass::Naive => self.naive.fetch_add(n, Ordering::Relaxed),
            WorkerClass::Expert => self.expert.fetch_add(n, Ordering::Relaxed),
        };
    }

    /// Adds one fault of `kind` on a `class` judgment or worker.
    pub fn add_fault(&self, class: WorkerClass, kind: FaultKind) {
        self.faults
            .lock()
            .expect("fault tally lock poisoned")
            .add(class, kind);
    }

    /// The comparison tally so far.
    pub fn counts(&self) -> ComparisonCounts {
        ComparisonCounts {
            naive: self.naive.load(Ordering::Relaxed),
            expert: self.expert.load(Ordering::Relaxed),
        }
    }

    /// The fault tally so far.
    pub fn faults(&self) -> FaultCounts {
        *self.faults.lock().expect("fault tally lock poisoned")
    }
}

thread_local! {
    static SINKS: RefCell<Vec<Arc<TallySink>>> = const { RefCell::new(Vec::new()) };
}

/// Uninstalls the sinks its [`install_sink`]/[`install_sinks`] call pushed,
/// when dropped. Not `Send`: the guard must drop on the installing thread.
#[derive(Debug)]
pub struct SinkGuard {
    installed: usize,
    _not_send: PhantomData<*const ()>,
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        SINKS.with(|s| {
            let mut stack = s.borrow_mut();
            let keep = stack.len().saturating_sub(self.installed);
            stack.truncate(keep);
        });
    }
}

/// Installs `sink` on the current thread until the guard drops; every
/// comparison recorded meanwhile is added to it (and to any sinks already
/// installed below it).
#[must_use = "the sink uninstalls when the guard drops"]
pub fn install_sink(sink: Arc<TallySink>) -> SinkGuard {
    SINKS.with(|s| s.borrow_mut().push(sink));
    SinkGuard {
        installed: 1,
        _not_send: PhantomData,
    }
}

/// Installs a whole stack of sinks at once — how a worker thread inherits
/// its spawner's attribution context (see [`current_sinks`]).
#[must_use = "the sinks uninstall when the guard drops"]
pub fn install_sinks(sinks: &[Arc<TallySink>]) -> SinkGuard {
    SINKS.with(|s| s.borrow_mut().extend(sinks.iter().cloned()));
    SinkGuard {
        installed: sinks.len(),
        _not_send: PhantomData,
    }
}

/// The sinks installed on the current thread, bottom-up — capture before
/// spawning workers, re-install on each with [`install_sinks`].
pub fn current_sinks() -> Vec<Arc<TallySink>> {
    SINKS.with(|s| s.borrow().clone())
}

/// Feeds `n` recorded comparisons to every installed sink in one pass.
/// Called from [`ComparisonCounts::record_many`], the chokepoint every
/// worker-performed comparison passes through — batch oracles pay the
/// thread-local lookup once per batch rather than once per comparison.
pub(crate) fn note_comparisons(class: WorkerClass, n: u64) {
    SINKS.with(|s| {
        for sink in s.borrow().iter() {
            sink.add_many(class, n);
        }
    });
}

/// Feeds one recorded fault to every installed sink. Called from
/// [`FaultCounts::record`], the chokepoint the platform layer reports
/// injected and handled faults through.
pub(crate) fn note_fault(class: WorkerClass, kind: FaultKind) {
    SINKS.with(|s| {
        for sink in s.borrow().iter() {
            sink.add_fault(class, kind);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{expert_max_find, filter_candidates, ExpertMaxConfig, FilterConfig};
    use crate::element::Instance;
    use crate::oracle::PerfectOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance(n: usize) -> Instance {
        Instance::new((0..n).map(|i| ((i * 37) % n) as f64).collect())
    }

    #[test]
    fn filter_rounds_partition_the_comparisons() {
        let inst = instance(300);
        let mut o = InstrumentedOracle::new(PerfectOracle::new(inst.clone()));
        let out = filter_candidates(&mut o, &inst.ids(), &FilterConfig::new(4));
        let trace = o.take_trace();
        assert_eq!(trace.rounds().count(), out.rounds);
        let attributed: u64 = trace.rounds().map(|s| s.comparisons.naive).sum();
        assert_eq!(attributed, out.comparisons.naive);
        for (r, span) in trace.rounds().enumerate() {
            assert_eq!(span.kind, SpanKind::Round(r as u32));
            assert_eq!(span.comparisons.expert, 0);
        }
    }

    #[test]
    fn phases_split_by_worker_class() {
        let inst = instance(400);
        let mut o = InstrumentedOracle::new(PerfectOracle::new(inst.clone()));
        let mut rng = StdRng::seed_from_u64(3);
        let out = expert_max_find(&mut o, &inst.ids(), &ExpertMaxConfig::new(5), &mut rng);
        let trace = o.trace();
        let filter = trace.phase(TracePhase::Filter).expect("filter phase span");
        let expert = trace.phase(TracePhase::Expert).expect("expert phase span");
        assert_eq!(filter.comparisons, out.phase1.comparisons);
        assert_eq!(expert.comparisons, out.phase2_comparisons);
        assert_eq!(filter.comparisons.expert, 0);
        assert_eq!(expert.comparisons.naive, 0);
        // Rounds nest inside the filter phase and close before it.
        let filter_pos = trace
            .spans
            .iter()
            .position(|s| s.kind == SpanKind::Phase(TracePhase::Filter))
            .unwrap();
        assert!(trace.spans[..filter_pos]
            .iter()
            .all(|s| matches!(s.kind, SpanKind::Round(_))));
    }

    #[test]
    fn unbalanced_end_events_are_ignored() {
        let inst = instance(10);
        let mut o = InstrumentedOracle::new(PerfectOracle::new(inst));
        o.observe(TraceEvent::PhaseEnd(TracePhase::Expert));
        o.observe(TraceEvent::RoundEnd(7));
        assert!(o.trace().spans.is_empty());
    }

    #[test]
    fn sinks_nest_and_uninstall() {
        use crate::model::WorkerClass;
        let outer = Arc::new(TallySink::new());
        let inner = Arc::new(TallySink::new());
        let inst = instance(8);
        let mut o = PerfectOracle::new(inst.clone());
        {
            let _g1 = install_sink(outer.clone());
            {
                let _g2 = install_sink(inner.clone());
                o.compare(WorkerClass::Naive, inst.ids()[0], inst.ids()[1]);
            }
            o.compare(WorkerClass::Expert, inst.ids()[0], inst.ids()[2]);
        }
        // After both guards drop, nothing is attributed any more.
        o.compare(WorkerClass::Naive, inst.ids()[3], inst.ids()[4]);
        assert_eq!(
            inner.counts(),
            ComparisonCounts {
                naive: 1,
                expert: 0
            }
        );
        assert_eq!(
            outer.counts(),
            ComparisonCounts {
                naive: 1,
                expert: 1
            }
        );
        assert!(current_sinks().is_empty());
    }

    #[test]
    fn worker_threads_inherit_the_captured_stack() {
        use crate::model::WorkerClass;
        let sink = Arc::new(TallySink::new());
        let _g = install_sink(sink.clone());
        let captured = current_sinks();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let captured = captured.clone();
                s.spawn(move || {
                    let _g = install_sinks(&captured);
                    let inst = instance(4);
                    let mut o = PerfectOracle::new(inst.clone());
                    o.compare(WorkerClass::Naive, inst.ids()[0], inst.ids()[1]);
                });
            }
        });
        assert_eq!(sink.counts().naive, 2);
    }

    #[test]
    fn fault_record_feeds_sinks_and_observe_tallies_without_double_count() {
        use crate::model::WorkerClass;
        let sink = Arc::new(TallySink::new());
        let inst = instance(4);
        let mut o = InstrumentedOracle::new(PerfectOracle::new(inst));
        let mut counts = FaultCounts::zero();
        {
            let _g = install_sink(sink.clone());
            // The platform-side pattern: record at the source (feeds the
            // sink), then notify decorators via observe (plain add).
            counts.record(WorkerClass::Naive, FaultKind::Timeout);
            counts.record(WorkerClass::Naive, FaultKind::Retry);
            counts.record(WorkerClass::Expert, FaultKind::ExpertFallback);
            for kind in [FaultKind::Timeout, FaultKind::Retry] {
                o.observe(TraceEvent::Fault {
                    class: WorkerClass::Naive,
                    kind,
                });
            }
            o.observe(TraceEvent::Fault {
                class: WorkerClass::Expert,
                kind: FaultKind::ExpertFallback,
            });
        }
        // Sink saw each fault exactly once (record feeds it, observe does not).
        assert_eq!(sink.faults(), counts);
        assert_eq!(sink.faults().naive.timeouts, 1);
        assert_eq!(sink.faults().naive.retries, 1);
        assert_eq!(sink.faults().expert.expert_fallbacks, 1);
        // The decorator holds the same picture, via observe.
        assert_eq!(o.fault_counts(), counts);
        assert_eq!(counts.total(), 3);
        // After the guard drops, records no longer reach the sink.
        counts.record(WorkerClass::Naive, FaultKind::Dropout);
        assert_eq!(sink.faults().total(), 3);
        assert_eq!(counts.total(), 4);
    }

    #[test]
    fn fault_tally_arithmetic_and_iteration() {
        let mut a = FaultTally::zero();
        a.record(FaultKind::Dropout);
        a.record(FaultKind::Dropout);
        a.record(FaultKind::DeadLetter);
        let mut b = FaultTally::zero();
        b.record(FaultKind::NoAnswer);
        let sum = a + b;
        assert_eq!(sum.of(FaultKind::Dropout), 2);
        assert_eq!(sum.of(FaultKind::DeadLetter), 1);
        assert_eq!(sum.of(FaultKind::NoAnswer), 1);
        assert_eq!(sum.total(), 4);
        assert_eq!(FaultKind::ALL.len(), 7);

        let counts = FaultCounts {
            naive: a,
            expert: b,
        } + FaultCounts::zero();
        assert_eq!(counts.by_class(WorkerClass::Naive).total(), 3);
        assert_eq!(counts.by_class(WorkerClass::Expert).total(), 1);
    }

    #[test]
    fn fault_counts_serialize() {
        let mut counts = FaultCounts::zero();
        counts.add(WorkerClass::Naive, FaultKind::Retry);
        let json = serde_json::to_string(&counts).unwrap();
        assert!(json.contains("retries"), "{json}");
        assert!(json.contains("dead_letters"), "{json}");
    }

    #[test]
    fn trace_serializes() {
        let trace = Trace {
            spans: vec![TraceSpan {
                kind: SpanKind::Round(0),
                comparisons: ComparisonCounts {
                    naive: 3,
                    expert: 0,
                },
                wall_nanos: 42,
            }],
        };
        let json = serde_json::to_string(&trace).unwrap();
        assert!(json.contains("Round"), "{json}");
        assert!(json.contains("wall_nanos"), "{json}");
    }
}
