//! # crowd-core
//!
//! A faithful implementation of *"The Importance of Being Expert: Efficient
//! Max-Finding in Crowdsourcing"* (Anagnostopoulos, Becchetti, Fazzone,
//! Mele, Riondato — SIGMOD 2015).
//!
//! The paper models crowdsourced pairwise comparisons with the **threshold
//! error model** `T(δ, ε)` and two worker classes — cheap *naïve* workers
//! and scarce, expensive *experts* (`δe ≪ δn`) — and gives a two-phase
//! algorithm that finds an element within `2δe` of the maximum using an
//! asymptotically optimal number of comparisons from each class.
//!
//! ## Crate map
//!
//! * [`element`] — elements, values, instances, ranks.
//! * [`model`] — the probabilistic and threshold error models, the
//!   two-class expert model, and tie policies for the arbitrary regime.
//! * [`oracle`] — comparison oracles: the simulated workforce, comparison
//!   counting, memoization, and the "simulated expert by 7 naïve votes"
//!   construction.
//! * [`tournament`] — all-play-all tournaments (Lemmas 1–2 machinery).
//! * [`algorithms`] — Algorithms 1, 2, 3, 5 and the paper's baselines.
//! * [`estimation`] — Algorithm 4: estimating `un(n)` and `perr` from gold
//!   data.
//! * [`multiclass`] — the paper's future-work extension: `k` worker
//!   classes on an expertise ladder and a cascaded filter.
//! * [`cost`] — the monetary cost model `C(n) = xe·ce + xn·cn`.
//! * [`bounds`] — the paper's closed-form upper/lower bounds.
//! * [`budget`] — budget-optimal majority voting (the Mo et al. problem
//!   from the related work).
//! * [`equiv`] — the differential-equivalence harness: prove two oracle
//!   drives issue the byte-identical comparison sequence.
//! * [`replay`] — record judgments once, replay them offline across
//!   algorithm variants.
//! * [`stats`] — aggregation helpers for experiments.
//! * [`trace`] — comparison-level tracing: per-round/per-phase tallies and
//!   wall-clock timings, plus cross-thread tally sinks.
//!
//! ## Quick start
//!
//! ```
//! use crowd_core::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // 1000 elements with uniform random values.
//! let mut rng = StdRng::seed_from_u64(7);
//! let values: Vec<f64> = (0..1000).map(|i| ((i * 37) % 1000) as f64).collect();
//! let instance = Instance::new(values);
//!
//! // Naïve workers cannot tell elements closer than 20 apart; experts
//! // discern down to 2. Nobody errs above their threshold.
//! let model = ExpertModel::exact(20.0, 2.0, TiePolicy::UniformRandom);
//! let un = instance.indistinguishable_from_max(20.0);
//! let mut oracle = SimulatedOracle::new(instance.clone(), model, StdRng::seed_from_u64(8));
//!
//! let outcome = expert_max_find(
//!     &mut oracle,
//!     &instance.ids(),
//!     &ExpertMaxConfig::new(un),
//!     &mut rng,
//! );
//!
//! // The returned element is within 2·δe of the true maximum …
//! assert!(instance.max_value() - instance.value(outcome.winner) <= 2.0 * 2.0);
//! // … and the expensive experts saw only the small candidate set.
//! assert!(outcome.total_comparisons.expert < outcome.total_comparisons.naive);
//!
//! // Bill the run: naïve comparisons cost 1, expert ones 50.
//! let bill = CostModel::with_ratio(50.0).cost(outcome.total_comparisons);
//! assert!(bill > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod algorithms;
pub mod bounds;
pub mod budget;
pub mod cost;
pub mod element;
pub mod equiv;
pub mod estimation;
pub mod model;
pub mod multiclass;
pub mod oracle;
pub mod replay;
pub mod stats;
pub mod tournament;
pub mod trace;

/// One-stop imports for typical users of the crate.
pub mod prelude {
    pub use crate::algorithms::{
        all_play_all_max, expert_max_find, expert_rank, filter_candidates, linear_scan_max,
        majority_compare, near_sort, randomized_max_find, top_k_find, try_expert_max_find,
        try_filter_candidates, two_max_find, two_max_find_expert, two_max_find_naive,
        ExpertMaxConfig, ExpertMaxOutcome, FilterConfig, FilterOutcome, Phase2, RandomizedConfig,
        TopKConfig,
    };
    pub use crate::budget::{budgeted_max_scan, plan_votes, VotePlan};
    pub use crate::cost::CostModel;
    pub use crate::element::{ElementId, Instance, Value};
    pub use crate::equiv::{assert_oracles_equal, drive_batched, drive_scalar};
    pub use crate::estimation::{estimate_perr, estimate_un, EstimationConfig, TrainingSet};
    pub use crate::model::{
        ErrorModel, ExpertModel, ProbabilisticModel, ThresholdModel, TiePolicy, WorkerClass,
    };
    pub use crate::multiclass::{
        cascade_max_find, CascadeOutcome, ClassSpec, ExpertiseLadder, LadderOracle,
        MultiClassOracle,
    };
    pub use crate::oracle::{
        ComparisonCounts, ComparisonOracle, FnOracle, FuseOracle, MajorityOracle, MemoOracle,
        ModelOracle, OracleError, PerfectOracle, SimulatedExpertOracle, SimulatedOracle,
        TryFnOracle,
    };
    pub use crate::replay::{JudgmentLog, RecordingOracle, ReplayOracle};
    pub use crate::tournament::Tournament;
    pub use crate::trace::{
        FaultCounts, FaultKind, FaultTally, InstrumentedOracle, SpanKind, TallySink, Trace,
        TraceEvent, TracePhase, TraceSpan,
    };
}
