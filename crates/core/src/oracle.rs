//! Comparison oracles: the only channel between algorithms and workers.
//!
//! The algorithms of Section 4 never see element values. They ask an oracle
//! "which of `k`, `j` wins, according to a worker of class `c`?" and the
//! oracle answers; every answer is tallied by class so that the cost model
//! of Section 3.4 (`C(n) = xe·ce + xn·cn`) can be applied afterwards.
//!
//! The main implementation, [`SimulatedOracle`], drives an
//! [`ExpertModel`] over an
//! [`Instance`]. Decorators provide:
//!
//! * [`MemoOracle`] — the Appendix A optimization "avoid repeating the
//!   comparison of two elements multiple times by the same type of workers"
//!   (the algorithm keeps an `n × n` table of first answers);
//! * [`SimulatedExpertOracle`] — the Section 5.3 construction that answers
//!   each *expert* query with the majority of `k` naïve judgments (the
//!   paper uses `k = 7`), which works on wisdom-of-crowds tasks like DOTS
//!   and fails on expertise tasks like CARS.

use crate::element::{ElementId, Instance};
use crate::model::{ErrorModel, ExpertModel, WorkerClass};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::collections::HashMap;
use std::ops::{Add, AddAssign, Sub};

/// Tally of comparisons performed, by worker class.
///
/// These are the `xn(n)` and `xe(n)` of the paper's cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComparisonCounts {
    /// Comparisons answered by naïve workers.
    pub naive: u64,
    /// Comparisons answered by expert workers.
    pub expert: u64,
}

impl ComparisonCounts {
    /// A zero tally.
    pub fn zero() -> Self {
        Self::default()
    }

    /// The count for one class.
    pub fn of(&self, class: WorkerClass) -> u64 {
        match class {
            WorkerClass::Naive => self.naive,
            WorkerClass::Expert => self.expert,
        }
    }

    /// Records one comparison by `class`.
    ///
    /// This is the single chokepoint every worker-performed comparison
    /// passes through (decorators answering for free never call it), so it
    /// also feeds any [`TallySink`](crate::trace::TallySink)s installed on
    /// the current thread.
    pub fn record(&mut self, class: WorkerClass) {
        self.record_many(class, 1);
    }

    /// Records `n` comparisons by `class` in one step.
    ///
    /// Equivalent to calling [`record`](Self::record) `n` times, but the
    /// thread-local [`TallySink`](crate::trace::TallySink) feed happens
    /// once for the whole delta instead of once per comparison — this is
    /// what lets batch oracles amortize tally bookkeeping per batch.
    pub fn record_many(&mut self, class: WorkerClass, n: u64) {
        match class {
            WorkerClass::Naive => self.naive += n,
            WorkerClass::Expert => self.expert += n,
        }
        crate::trace::note_comparisons(class, n);
    }

    /// Total comparisons across both classes.
    pub fn total(&self) -> u64 {
        self.naive + self.expert
    }

    /// Per-class difference `self - rhs`, or `None` if `rhs` exceeds
    /// `self` in either class (the snapshots were diffed in the wrong
    /// order, or across different oracles).
    pub fn checked_sub(self, rhs: Self) -> Option<Self> {
        Some(ComparisonCounts {
            naive: self.naive.checked_sub(rhs.naive)?,
            expert: self.expert.checked_sub(rhs.expert)?,
        })
    }

    /// Per-class difference `self - rhs`, clamping each class at zero.
    ///
    /// Prefer this (or [`checked_sub`](Self::checked_sub)) over the `-`
    /// operator outside tests: production snapshot diffs over
    /// user-composed oracle stacks should degrade to a zero tally, not
    /// panic.
    pub fn saturating_sub(self, rhs: Self) -> Self {
        ComparisonCounts {
            naive: self.naive.saturating_sub(rhs.naive),
            expert: self.expert.saturating_sub(rhs.expert),
        }
    }

    /// The delta accumulated since an `earlier` snapshot of the same
    /// tally, as a structured result: `Ok(self - earlier)` when the pair
    /// is monotone, [`CountsRegression`] otherwise.
    ///
    /// This is the phase-bookkeeping form of [`checked_sub`]: algorithm
    /// outcomes diff a before/after snapshot pair to report per-phase
    /// comparison budgets, and a regression there means the oracle's
    /// [`counts`](ComparisonOracle::counts) went backwards mid-run — a
    /// broken decorator, not a worker fault. Fallible job drivers surface
    /// it as [`OracleError::CountsRegressed`] instead of unwinding.
    ///
    /// [`checked_sub`]: Self::checked_sub
    ///
    /// # Errors
    ///
    /// Returns [`CountsRegression`] when `earlier` exceeds `self` in
    /// either class.
    pub fn delta_since(self, earlier: Self) -> Result<Self, CountsRegression> {
        self.checked_sub(earlier).ok_or(CountsRegression {
            before: earlier,
            after: self,
        })
    }
}

/// A comparison tally that went backwards across a snapshot pair: the
/// "after" snapshot is smaller than the "before" in at least one class.
///
/// Only a buggy oracle stack can produce this ([`ComparisonOracle::counts`]
/// is monotone for every oracle in this workspace), so it is reported as a
/// structured error rather than silently clamped — but also rather than
/// unwinding from deep inside a tournament loop mid-job. See
/// [`ComparisonCounts::delta_since`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountsRegression {
    /// The earlier snapshot.
    pub before: ComparisonCounts,
    /// The later — yet smaller — snapshot.
    pub after: ComparisonCounts,
}

impl std::fmt::Display for CountsRegression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "comparison tally regressed mid-run: {}n+{}e before, {}n+{}e after \
             (snapshots diffed in the wrong order, or across different oracles?)",
            self.before.naive, self.before.expert, self.after.naive, self.after.expert
        )
    }
}

impl std::error::Error for CountsRegression {}

impl Add for ComparisonCounts {
    type Output = ComparisonCounts;
    fn add(self, rhs: Self) -> Self {
        ComparisonCounts {
            naive: self.naive + rhs.naive,
            expert: self.expert + rhs.expert,
        }
    }
}

impl AddAssign for ComparisonCounts {
    fn add_assign(&mut self, rhs: Self) {
        self.naive += rhs.naive;
        self.expert += rhs.expert;
    }
}

impl Sub for ComparisonCounts {
    type Output = ComparisonCounts;
    /// Difference of two tallies — used to isolate the comparisons of one
    /// phase by snapshotting before and after.
    ///
    /// This is the *loud* variant: algorithm internals use it where a
    /// snapshot pair is monotone by construction (same oracle, later minus
    /// earlier) and an underflow would mean a bug worth crashing on, and
    /// tests use it to pin that contract. Code diffing snapshots across
    /// user-composed oracle stacks should use
    /// [`ComparisonCounts::saturating_sub`] or
    /// [`ComparisonCounts::checked_sub`] instead.
    ///
    /// # Panics
    ///
    /// Panics when `rhs` exceeds `self` in either class: a snapshot diff
    /// taken in the wrong order (or across different oracles) would
    /// otherwise wrap around to a huge bogus tally.
    fn sub(self, rhs: Self) -> Self {
        let checked = |class: &str, a: u64, b: u64| {
            a.checked_sub(b).unwrap_or_else(|| {
                panic!(
                    "ComparisonCounts subtraction underflow: {a} {class} - {b} {class} \
                     (snapshots diffed in the wrong order, or across different oracles?)"
                )
            })
        };
        ComparisonCounts {
            naive: checked("naive", self.naive, rhs.naive),
            expert: checked("expert", self.expert, rhs.expert),
        }
    }
}

/// An irrecoverable fault while obtaining a comparison answer.
///
/// Simulated oracles never fail, but an oracle backed by a live platform
/// can: every worker of a class may have dropped out, a unit may exhaust
/// its retry budget, or the campaign budget may run dry mid-algorithm.
/// [`ComparisonOracle::try_compare`] surfaces these instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleError {
    /// No eligible worker of `class` remains to answer the comparison.
    WorkforceDepleted {
        /// The class whose pool is empty (or too small for the schedule).
        class: WorkerClass,
    },
    /// The comparison unit exhausted its retries without enough answers.
    Unanswered {
        /// Judgment attempts made before giving up (including retries).
        attempts: u32,
    },
    /// The campaign budget cap was reached before the comparison ran.
    BudgetExhausted,
    /// The run was interrupted by a crash (or a simulated one — see the
    /// platform crate's chaos harness) before the comparison could be
    /// bought. Recovery replays the job's write-ahead journal instead of
    /// re-purchasing answered comparisons.
    Interrupted,
    /// The oracle's comparison tally went backwards across a phase
    /// snapshot — a broken decorator stack, surfaced as a structured
    /// error by the fallible drivers instead of an unwind mid-job.
    CountsRegressed(CountsRegression),
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::WorkforceDepleted { class } => {
                write!(f, "no eligible {class} workers remain")
            }
            OracleError::Unanswered { attempts } => {
                write!(f, "comparison unanswered after {attempts} attempts")
            }
            OracleError::BudgetExhausted => write!(f, "campaign budget exhausted"),
            OracleError::Interrupted => write!(f, "the run was interrupted by a crash"),
            OracleError::CountsRegressed(regression) => write!(f, "{regression}"),
        }
    }
}

impl std::error::Error for OracleError {}

/// A source of pairwise-comparison answers.
///
/// `compare(class, k, j)` returns the element a worker of `class` declares
/// the winner. Implementations must:
///
/// * return either `k` or `j`;
/// * tally every *worker-performed* comparison in [`counts`](Self::counts)
///   (a memoizing decorator answers repeats for free and does not tally
///   them — no worker was paid).
pub trait ComparisonOracle {
    /// Ask one worker of `class` to compare distinct elements `k` and `j`.
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId;

    /// Fallible variant of [`compare`](Self::compare): oracles backed by a
    /// fault-prone workforce return an [`OracleError`] instead of
    /// fabricating an answer or panicking.
    ///
    /// The default implementation wraps `compare` and never fails, so
    /// existing infallible oracles need no changes. Decorators forward it
    /// inward so errors surface through any stack.
    ///
    /// # Errors
    ///
    /// Implementations return an [`OracleError`] when no worker can answer.
    fn try_compare(
        &mut self,
        class: WorkerClass,
        k: ElementId,
        j: ElementId,
    ) -> Result<ElementId, OracleError> {
        Ok(self.compare(class, k, j))
    }

    /// Ask workers of `class` to compare every pair in `pairs`, appending
    /// one winner per pair to `winners`, in input order.
    ///
    /// This is the batch-first entry point of the oracle API: semantically
    /// it *is* `for (k, j) in pairs { winners.push(self.compare(..)) }` —
    /// the default implementation is exactly that loop, so every oracle
    /// keeps working unchanged. Implementations that override it must
    /// issue the byte-identical comparison sequence (same answers, same
    /// tallies, same RNG consumption as the scalar loop) and may only
    /// amortize *bookkeeping* across the batch: tally deltas, event
    /// emission, budget checks, billing. The
    /// [`equiv`](crate::equiv) harness exists to pin that contract.
    fn compare_batch(
        &mut self,
        class: WorkerClass,
        pairs: &[(ElementId, ElementId)],
        winners: &mut Vec<ElementId>,
    ) {
        winners.reserve(pairs.len());
        for &(k, j) in pairs {
            let winner = self.compare(class, k, j);
            winners.push(winner);
        }
    }

    /// Fallible variant of [`compare_batch`](Self::compare_batch).
    ///
    /// Appends winners in input order until the first failure; on `Err`,
    /// `winners` holds the answers obtained before the fault. Those
    /// comparisons were already purchased, so implementations must append
    /// the completed prefix rather than discard it — recovery and billing
    /// rely on never buying the same answer twice.
    ///
    /// # Errors
    ///
    /// Returns the first [`OracleError`] encountered.
    fn try_compare_batch(
        &mut self,
        class: WorkerClass,
        pairs: &[(ElementId, ElementId)],
        winners: &mut Vec<ElementId>,
    ) -> Result<(), OracleError> {
        winners.reserve(pairs.len());
        for &(k, j) in pairs {
            let winner = self.try_compare(class, k, j)?;
            winners.push(winner);
        }
        Ok(())
    }

    /// Comparisons performed so far, by class.
    fn counts(&self) -> ComparisonCounts;

    /// Receives round/phase boundary events from the algorithms.
    ///
    /// A no-op by default; decorators forward it inward so an
    /// [`InstrumentedOracle`](crate::trace::InstrumentedOracle) hears the
    /// events wherever it sits in the stack.
    fn observe(&mut self, event: crate::trace::TraceEvent) {
        let _ = event;
    }
}

/// Blanket impl so that algorithms taking `&mut O: ComparisonOracle` can be
/// handed `&mut &mut oracle` by composing code.
impl<O: ComparisonOracle + ?Sized> ComparisonOracle for &mut O {
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
        (**self).compare(class, k, j)
    }
    fn try_compare(
        &mut self,
        class: WorkerClass,
        k: ElementId,
        j: ElementId,
    ) -> Result<ElementId, OracleError> {
        (**self).try_compare(class, k, j)
    }
    fn compare_batch(
        &mut self,
        class: WorkerClass,
        pairs: &[(ElementId, ElementId)],
        winners: &mut Vec<ElementId>,
    ) {
        (**self).compare_batch(class, pairs, winners);
    }
    fn try_compare_batch(
        &mut self,
        class: WorkerClass,
        pairs: &[(ElementId, ElementId)],
        winners: &mut Vec<ElementId>,
    ) -> Result<(), OracleError> {
        (**self).try_compare_batch(class, pairs, winners)
    }
    fn counts(&self) -> ComparisonCounts {
        (**self).counts()
    }
    fn observe(&mut self, event: crate::trace::TraceEvent) {
        (**self).observe(event);
    }
}

/// Error-fuse decorator: runs an infallible algorithm over a fallible
/// oracle and captures the first [`OracleError`] instead of panicking.
///
/// The paper's algorithms are written against the infallible
/// [`compare`](ComparisonOracle::compare); rather than threading `Result`
/// through every tournament loop, the fuse translates faults at the oracle
/// boundary. Until a fault occurs, queries pass through
/// [`try_compare`](ComparisonOracle::try_compare) and every answer is
/// remembered. Once the fuse *blows*, no further query reaches the inner
/// oracle (no worker is bothered, nothing is tallied): repeats are answered
/// from memory and fresh pairs by the smaller [`ElementId`] — a consistent
/// total order, so every tournament-based algorithm still terminates. The
/// driver then discards the fabricated outcome and reports the captured
/// error (see `try_filter_candidates` / `try_expert_max_find`).
#[derive(Debug)]
pub struct FuseOracle<O> {
    inner: O,
    error: Option<OracleError>,
    answered: HashMap<(WorkerClass, ElementId, ElementId), ElementId>,
}

impl<O: ComparisonOracle> FuseOracle<O> {
    /// Wraps `inner` with an intact fuse.
    pub fn new(inner: O) -> Self {
        FuseOracle {
            inner,
            error: None,
            answered: HashMap::new(),
        }
    }

    /// The first error the inner oracle reported, if any.
    pub fn error(&self) -> Option<&OracleError> {
        self.error.as_ref()
    }

    /// True once a fault has been captured.
    pub fn blown(&self) -> bool {
        self.error.is_some()
    }

    /// Takes the captured error, resetting the fuse.
    pub fn take_error(&mut self) -> Option<OracleError> {
        self.error.take()
    }

    /// Consumes the decorator, returning the wrapped oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: ComparisonOracle> ComparisonOracle for FuseOracle<O> {
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
        let key = if k < j { (class, k, j) } else { (class, j, k) };
        if self.error.is_none() {
            match self.inner.try_compare(class, k, j) {
                Ok(winner) => {
                    self.answered.insert(key, winner);
                    return winner;
                }
                Err(e) => self.error = Some(e),
            }
        }
        // Blown: answer consistently (past answers win, fresh pairs go to
        // the smaller id) so the driving algorithm terminates; the caller
        // discards the outcome and returns the captured error.
        *self
            .answered
            .entry(key)
            .or_insert_with(|| if k < j { k } else { j })
    }

    /// Batch adapter for the fault layer: while the fuse is intact the
    /// whole batch is forwarded to the inner oracle in one
    /// [`try_compare_batch`](ComparisonOracle::try_compare_batch) call, so
    /// a platform underneath decides the batch's fault fate once instead
    /// of per comparison. On a fault the fuse blows mid-batch and the
    /// remaining pairs are fabricated exactly like scalar post-blow
    /// answers. Equal to the scalar loop whenever the inner oracle's batch
    /// entry matches its scalar sequence — in particular always for
    /// simulated oracles, and for platform oracles until the first fault.
    /// An inner oracle that appends the completed prefix before its error
    /// (as the platform adapter does) keeps those purchased answers: the
    /// fuse memoizes the prefix and fabricates only the true remainder.
    fn compare_batch(
        &mut self,
        class: WorkerClass,
        pairs: &[(ElementId, ElementId)],
        winners: &mut Vec<ElementId>,
    ) {
        winners.reserve(pairs.len());
        let start = winners.len();
        if self.error.is_none() {
            let outcome = self.inner.try_compare_batch(class, pairs, winners);
            for (&(k, j), &winner) in pairs.iter().zip(&winners[start..]) {
                let key = if k < j { (class, k, j) } else { (class, j, k) };
                self.answered.insert(key, winner);
            }
            match outcome {
                Ok(()) => return,
                Err(e) => self.error = Some(e),
            }
        }
        // Blown: fabricate the unanswered remainder of the batch, same
        // policy as the scalar path.
        let done = winners.len() - start;
        for &(k, j) in &pairs[done..] {
            let key = if k < j { (class, k, j) } else { (class, j, k) };
            let winner = *self
                .answered
                .entry(key)
                .or_insert_with(|| if k < j { k } else { j });
            winners.push(winner);
        }
    }

    fn counts(&self) -> ComparisonCounts {
        self.inner.counts()
    }

    fn observe(&mut self, event: crate::trace::TraceEvent) {
        self.inner.observe(event);
    }
}

/// An oracle that simulates the two-class threshold workforce of Section 3.3
/// over a ground-truth [`Instance`].
///
/// Generic over *how* the instance is held: by default it is owned
/// (`B = Instance`, cloned by the caller if shared), which keeps every
/// algorithm signature lifetime-free. Hot paths that mint one oracle per
/// tournament group — the parallel filter's per-group factories — pass
/// `&Instance` instead, so constructing an oracle is O(1) rather than a
/// full copy of the ground-truth values.
#[derive(Debug)]
pub struct SimulatedOracle<R: RngCore, B: Borrow<Instance> = Instance> {
    instance: B,
    model: ExpertModel,
    rng: R,
    counts: ComparisonCounts,
}

impl<R: RngCore, B: Borrow<Instance>> SimulatedOracle<R, B> {
    /// Builds an oracle over `instance` with the given workforce `model`.
    ///
    /// `instance` may be owned (`Instance`) or borrowed (`&Instance`);
    /// see the type-level docs for when each is appropriate.
    pub fn new(instance: B, model: ExpertModel, rng: R) -> Self {
        SimulatedOracle {
            instance,
            model,
            rng,
            counts: ComparisonCounts::zero(),
        }
    }

    /// The ground-truth instance this oracle simulates workers over.
    pub fn instance(&self) -> &Instance {
        self.instance.borrow()
    }

    /// The workforce model.
    pub fn model(&self) -> &ExpertModel {
        &self.model
    }
}

impl<R: RngCore, B: Borrow<Instance>> ComparisonOracle for SimulatedOracle<R, B> {
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
        assert_ne!(
            k, j,
            "a worker is never handed two copies of the same element"
        );
        self.counts.record(class);
        let instance = self.instance.borrow();
        let (vk, vj) = (instance.value(k), instance.value(j));
        self.model.compare(class, k, vk, j, vj, &mut self.rng)
    }

    /// One tally delta for the whole batch; the per-pair answers consume
    /// the RNG in exactly the order the scalar loop would (the answering
    /// itself runs through the model's monomorphic, branch-free
    /// [`ExpertModel::compare_many`] run).
    fn compare_batch(
        &mut self,
        class: WorkerClass,
        pairs: &[(ElementId, ElementId)],
        winners: &mut Vec<ElementId>,
    ) {
        // The scalar path asserts per comparison; here a separate release
        // pass over the whole batch would re-read every pair once just to
        // re-check what the filter construction already guarantees, so the
        // check is debug-only on the batch path.
        debug_assert!(
            pairs.iter().all(|&(k, j)| k != j),
            "a worker is never handed two copies of the same element"
        );
        self.counts.record_many(class, pairs.len() as u64);
        let instance = self.instance.borrow();
        self.model.compare_many(
            class,
            pairs,
            |id| instance.value(id),
            winners,
            &mut self.rng,
        );
    }

    fn counts(&self) -> ComparisonCounts {
        self.counts
    }
}

/// Memoizing decorator: per worker class, the first answer for each
/// unordered pair is remembered and repeats are answered for free.
///
/// This realizes the Appendix A optimization and, importantly, makes worker
/// behaviour *consistent*: algorithms like
/// [`two_max_find`](crate::algorithms::two_max_find) rely on a repeated
/// question getting the same answer to guarantee progress.
#[derive(Debug)]
pub struct MemoOracle<O> {
    inner: O,
    memo: HashMap<(WorkerClass, ElementId, ElementId), ElementId>,
    /// Queries answered from the memo (no worker involved, no cost).
    hits: u64,
}

impl<O: ComparisonOracle> MemoOracle<O> {
    /// Wraps `inner` with a fresh memo table.
    pub fn new(inner: O) -> Self {
        MemoOracle {
            inner,
            memo: HashMap::new(),
            hits: 0,
        }
    }

    /// Number of queries answered from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Consumes the decorator, returning the wrapped oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: ComparisonOracle> ComparisonOracle for MemoOracle<O> {
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
        let key = if k < j { (class, k, j) } else { (class, j, k) };
        if let Some(&winner) = self.memo.get(&key) {
            self.hits += 1;
            return winner;
        }
        let winner = self.inner.compare(class, k, j);
        self.memo.insert(key, winner);
        winner
    }

    fn try_compare(
        &mut self,
        class: WorkerClass,
        k: ElementId,
        j: ElementId,
    ) -> Result<ElementId, OracleError> {
        let key = if k < j { (class, k, j) } else { (class, j, k) };
        if let Some(&winner) = self.memo.get(&key) {
            self.hits += 1;
            return Ok(winner);
        }
        let winner = self.inner.try_compare(class, k, j)?;
        self.memo.insert(key, winner);
        Ok(winner)
    }

    fn counts(&self) -> ComparisonCounts {
        self.inner.counts()
    }

    fn observe(&mut self, event: crate::trace::TraceEvent) {
        self.inner.observe(event);
    }
}

/// Decorator that *simulates* experts by majority vote of naïve workers
/// (paper Section 5.3: "simulating each expert query by 7 naïve queries and
/// selecting the answer that received most votes").
///
/// Expert queries are translated into `votes` fresh naïve judgments; the
/// majority wins (ties broken towards `k` — with odd `votes`, ties cannot
/// occur). Naïve queries pass through unchanged. The tally consequently
/// contains only naïve comparisons: that is the point — no experts exist.
#[derive(Debug)]
pub struct SimulatedExpertOracle<O> {
    inner: O,
    votes: u32,
}

impl<O: ComparisonOracle> SimulatedExpertOracle<O> {
    /// Simulates each expert query with `votes` naïve judgments.
    ///
    /// # Panics
    ///
    /// Panics if `votes` is even or zero (the paper uses 7; an odd count
    /// guarantees a strict majority).
    pub fn new(inner: O, votes: u32) -> Self {
        assert!(votes % 2 == 1, "vote count must be odd to avoid ties");
        SimulatedExpertOracle { inner, votes }
    }

    /// The paper's configuration: 7 naïve votes per expert query.
    pub fn paper_default(inner: O) -> Self {
        Self::new(inner, 7)
    }

    /// Consumes the decorator, returning the wrapped oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: ComparisonOracle> ComparisonOracle for SimulatedExpertOracle<O> {
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
        match class {
            WorkerClass::Naive => self.inner.compare(WorkerClass::Naive, k, j),
            WorkerClass::Expert => {
                let mut k_wins = 0u32;
                for _ in 0..self.votes {
                    if self.inner.compare(WorkerClass::Naive, k, j) == k {
                        k_wins += 1;
                    }
                }
                if 2 * k_wins > self.votes {
                    k
                } else {
                    j
                }
            }
        }
    }

    fn try_compare(
        &mut self,
        class: WorkerClass,
        k: ElementId,
        j: ElementId,
    ) -> Result<ElementId, OracleError> {
        match class {
            WorkerClass::Naive => self.inner.try_compare(WorkerClass::Naive, k, j),
            WorkerClass::Expert => {
                let mut k_wins = 0u32;
                for _ in 0..self.votes {
                    if self.inner.try_compare(WorkerClass::Naive, k, j)? == k {
                        k_wins += 1;
                    }
                }
                Ok(if 2 * k_wins > self.votes { k } else { j })
            }
        }
    }

    fn counts(&self) -> ComparisonCounts {
        self.inner.counts()
    }

    fn observe(&mut self, event: crate::trace::TraceEvent) {
        self.inner.observe(event);
    }
}

/// Decorator aggregating every comparison over several independent
/// judgments by majority vote, per class.
///
/// Crowdsourcing platforms collect multiple judgments per unit and report
/// the aggregate (CrowdFlower "requested at least 21 answers" per pair in
/// the paper's calibration jobs); this decorator models that: a single
/// logical comparison fans out to `votes` worker judgments on the inner
/// oracle, all of which are tallied/paid. Majority ties break towards the
/// smaller id; use odd vote counts to avoid them.
#[derive(Debug)]
pub struct MajorityOracle<O> {
    inner: O,
    naive_votes: u32,
    expert_votes: u32,
}

impl<O: ComparisonOracle> MajorityOracle<O> {
    /// Aggregates naïve comparisons over `naive_votes` judgments and expert
    /// comparisons over `expert_votes`.
    ///
    /// # Panics
    ///
    /// Panics if either vote count is zero.
    pub fn new(inner: O, naive_votes: u32, expert_votes: u32) -> Self {
        assert!(
            naive_votes > 0 && expert_votes > 0,
            "vote counts must be positive"
        );
        MajorityOracle {
            inner,
            naive_votes,
            expert_votes,
        }
    }

    /// Consumes the decorator, returning the wrapped oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: ComparisonOracle> ComparisonOracle for MajorityOracle<O> {
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
        let votes = match class {
            WorkerClass::Naive => self.naive_votes,
            WorkerClass::Expert => self.expert_votes,
        };
        let mut k_wins = 0u32;
        for _ in 0..votes {
            if self.inner.compare(class, k, j) == k {
                k_wins += 1;
            }
        }
        let j_wins = votes - k_wins;
        if k_wins > j_wins || (k_wins == j_wins && k < j) {
            k
        } else {
            j
        }
    }

    fn try_compare(
        &mut self,
        class: WorkerClass,
        k: ElementId,
        j: ElementId,
    ) -> Result<ElementId, OracleError> {
        let votes = match class {
            WorkerClass::Naive => self.naive_votes,
            WorkerClass::Expert => self.expert_votes,
        };
        let mut k_wins = 0u32;
        for _ in 0..votes {
            if self.inner.try_compare(class, k, j)? == k {
                k_wins += 1;
            }
        }
        let j_wins = votes - k_wins;
        Ok(if k_wins > j_wins || (k_wins == j_wins && k < j) {
            k
        } else {
            j
        })
    }

    fn counts(&self) -> ComparisonCounts {
        self.inner.counts()
    }

    fn observe(&mut self, event: crate::trace::TraceEvent) {
        self.inner.observe(event);
    }
}

/// An oracle driving two arbitrary [`ErrorModel`]s — one per worker class —
/// over a ground-truth instance.
///
/// [`SimulatedOracle`] is the common case (both classes are threshold
/// workers); `ModelOracle` admits any model implementation, e.g. the
/// empirically calibrated DOTS/CARS worker models of `crowd-datasets`.
#[derive(Debug)]
pub struct ModelOracle<MN, ME, R> {
    instance: Instance,
    naive: MN,
    expert: ME,
    rng: R,
    counts: ComparisonCounts,
}

impl<MN: ErrorModel, ME: ErrorModel, R: RngCore> ModelOracle<MN, ME, R> {
    /// Builds an oracle whose naïve workers follow `naive` and experts
    /// follow `expert`.
    pub fn new(instance: Instance, naive: MN, expert: ME, rng: R) -> Self {
        ModelOracle {
            instance,
            naive,
            expert,
            rng,
            counts: ComparisonCounts::zero(),
        }
    }

    /// The ground-truth instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }
}

impl<MN: ErrorModel, ME: ErrorModel, R: RngCore> ComparisonOracle for ModelOracle<MN, ME, R> {
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
        assert_ne!(
            k, j,
            "a worker is never handed two copies of the same element"
        );
        self.counts.record(class);
        let (vk, vj) = (self.instance.value(k), self.instance.value(j));
        match class {
            WorkerClass::Naive => self.naive.compare(k, vk, j, vj, &mut self.rng),
            WorkerClass::Expert => self.expert.compare(k, vk, j, vj, &mut self.rng),
        }
    }

    fn compare_batch(
        &mut self,
        class: WorkerClass,
        pairs: &[(ElementId, ElementId)],
        winners: &mut Vec<ElementId>,
    ) {
        self.counts.record_many(class, pairs.len() as u64);
        winners.reserve(pairs.len());
        for &(k, j) in pairs {
            assert_ne!(
                k, j,
                "a worker is never handed two copies of the same element"
            );
            let (vk, vj) = (self.instance.value(k), self.instance.value(j));
            winners.push(match class {
                WorkerClass::Naive => self.naive.compare(k, vk, j, vj, &mut self.rng),
                WorkerClass::Expert => self.expert.compare(k, vk, j, vj, &mut self.rng),
            });
        }
    }

    fn counts(&self) -> ComparisonCounts {
        self.counts
    }
}

/// An oracle backed by a closure over ground truth — handy for tests and for
/// adversarial responders that need full control over every answer.
///
/// The closure receives `(class, k, j)` and must return `k` or `j`.
pub struct FnOracle<F> {
    f: F,
    counts: ComparisonCounts,
}

impl<F: FnMut(WorkerClass, ElementId, ElementId) -> ElementId> FnOracle<F> {
    /// Builds an oracle that delegates every comparison to `f`.
    pub fn new(f: F) -> Self {
        FnOracle {
            f,
            counts: ComparisonCounts::zero(),
        }
    }
}

impl<F: FnMut(WorkerClass, ElementId, ElementId) -> ElementId> ComparisonOracle for FnOracle<F> {
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
        assert_ne!(
            k, j,
            "a worker is never handed two copies of the same element"
        );
        self.counts.record(class);
        let winner = (self.f)(class, k, j);
        debug_assert!(winner == k || winner == j, "oracle must answer k or j");
        winner
    }

    fn counts(&self) -> ComparisonCounts {
        self.counts
    }
}

/// The fallible sibling of [`FnOracle`]: the closure may refuse to answer.
///
/// The closure receives `(class, k, j)` and returns `Ok(k)`, `Ok(j)`, or an
/// [`OracleError`]. Failed attempts are not billed (no count is recorded).
/// Calling the infallible [`compare`](ComparisonOracle::compare) on a
/// refusing closure panics — drive it through `try_compare` (directly or
/// behind a [`FuseOracle`]).
pub struct TryFnOracle<F> {
    f: F,
    counts: ComparisonCounts,
}

impl<F: FnMut(WorkerClass, ElementId, ElementId) -> Result<ElementId, OracleError>> TryFnOracle<F> {
    /// Builds an oracle that delegates every comparison to `f`.
    pub fn new(f: F) -> Self {
        TryFnOracle {
            f,
            counts: ComparisonCounts::zero(),
        }
    }
}

impl<F: FnMut(WorkerClass, ElementId, ElementId) -> Result<ElementId, OracleError>> ComparisonOracle
    for TryFnOracle<F>
{
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
        self.try_compare(class, k, j)
            .expect("TryFnOracle refused to answer — use try_compare")
    }

    fn try_compare(
        &mut self,
        class: WorkerClass,
        k: ElementId,
        j: ElementId,
    ) -> Result<ElementId, OracleError> {
        assert_ne!(
            k, j,
            "a worker is never handed two copies of the same element"
        );
        let winner = (self.f)(class, k, j)?;
        self.counts.record(class);
        debug_assert!(winner == k || winner == j, "oracle must answer k or j");
        Ok(winner)
    }

    fn counts(&self) -> ComparisonCounts {
        self.counts
    }
}

/// A perfect oracle over an instance: both classes always return the truly
/// larger element (value ties broken by smaller id). Useful as a baseline
/// and in tests.
#[derive(Debug)]
pub struct PerfectOracle {
    instance: Instance,
    counts: ComparisonCounts,
}

impl PerfectOracle {
    /// Builds a perfect oracle over `instance`.
    pub fn new(instance: Instance) -> Self {
        PerfectOracle {
            instance,
            counts: ComparisonCounts::zero(),
        }
    }
}

impl ComparisonOracle for PerfectOracle {
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
        assert_ne!(
            k, j,
            "a worker is never handed two copies of the same element"
        );
        self.counts.record(class);
        crate::model::true_winner(k, self.instance.value(k), j, self.instance.value(j))
    }

    fn compare_batch(
        &mut self,
        class: WorkerClass,
        pairs: &[(ElementId, ElementId)],
        winners: &mut Vec<ElementId>,
    ) {
        self.counts.record_many(class, pairs.len() as u64);
        winners.reserve(pairs.len());
        for &(k, j) in pairs {
            assert_ne!(
                k, j,
                "a worker is never handed two copies of the same element"
            );
            winners.push(crate::model::true_winner(
                k,
                self.instance.value(k),
                j,
                self.instance.value(j),
            ));
        }
    }

    fn counts(&self) -> ComparisonCounts {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TiePolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance() -> Instance {
        Instance::new(vec![10.0, 20.0, 30.0, 31.0])
    }

    fn oracle(seed: u64) -> SimulatedOracle<StdRng> {
        // δn = 5 (30 and 31 naïve-indistinguishable), δe = 0.5.
        let model = ExpertModel::exact(5.0, 0.5, TiePolicy::UniformRandom);
        SimulatedOracle::new(instance(), model, StdRng::seed_from_u64(seed))
    }

    #[test]
    fn counts_arithmetic() {
        let mut c = ComparisonCounts::zero();
        c.record(WorkerClass::Naive);
        c.record(WorkerClass::Naive);
        c.record(WorkerClass::Expert);
        assert_eq!(c.naive, 2);
        assert_eq!(c.expert, 1);
        assert_eq!(c.total(), 3);
        assert_eq!(c.of(WorkerClass::Naive), 2);
        let d = c + c;
        assert_eq!(d.total(), 6);
        assert_eq!((d - c).total(), 3);
        let mut e = c;
        e += c;
        assert_eq!(e, d);
    }

    #[test]
    fn checked_and_saturating_sub_handle_underflow() {
        let small = ComparisonCounts {
            naive: 1,
            expert: 5,
        };
        let big = ComparisonCounts {
            naive: 3,
            expert: 7,
        };
        assert_eq!(
            big.checked_sub(small),
            Some(ComparisonCounts {
                naive: 2,
                expert: 2
            })
        );
        assert_eq!(small.checked_sub(big), None);
        // Mixed direction: naive underflows, expert does not.
        let mixed = ComparisonCounts {
            naive: 4,
            expert: 6,
        };
        assert_eq!(mixed.checked_sub(big), None);
        assert_eq!(
            mixed.saturating_sub(big),
            ComparisonCounts {
                naive: 1,
                expert: 0
            }
        );
        assert_eq!(big.saturating_sub(small), big.checked_sub(small).unwrap());
    }

    #[test]
    fn snapshot_diff_isolates_a_phase() {
        // The before/after snapshot pattern used by filter_candidates and
        // expert_max_find.
        let mut o = oracle(30);
        o.compare(WorkerClass::Naive, ElementId(0), ElementId(1));
        let before = o.counts();
        o.compare(WorkerClass::Naive, ElementId(0), ElementId(2));
        o.compare(WorkerClass::Expert, ElementId(2), ElementId(3));
        let phase = o.counts() - before;
        assert_eq!(
            phase,
            ComparisonCounts {
                naive: 1,
                expert: 1
            }
        );
    }

    #[test]
    #[should_panic(expected = "subtraction underflow")]
    fn snapshot_diff_in_wrong_order_panics() {
        let mut o = oracle(31);
        let before = o.counts();
        o.compare(WorkerClass::Naive, ElementId(0), ElementId(1));
        let _ = before - o.counts(); // wrong order: would wrap to u64::MAX
    }

    #[test]
    fn simulated_oracle_counts_by_class() {
        let mut o = oracle(1);
        o.compare(WorkerClass::Naive, ElementId(0), ElementId(2));
        o.compare(WorkerClass::Naive, ElementId(0), ElementId(3));
        o.compare(WorkerClass::Expert, ElementId(2), ElementId(3));
        assert_eq!(o.counts().naive, 2);
        assert_eq!(o.counts().expert, 1);
    }

    #[test]
    fn simulated_oracle_respects_class_thresholds() {
        let mut o = oracle(2);
        // d(0, 2) = 20 > δn: naïve workers answer correctly (ε = 0).
        for _ in 0..20 {
            assert_eq!(
                o.compare(WorkerClass::Naive, ElementId(0), ElementId(2)),
                ElementId(2)
            );
        }
        // d(2, 3) = 1 > δe: experts answer correctly.
        for _ in 0..20 {
            assert_eq!(
                o.compare(WorkerClass::Expert, ElementId(2), ElementId(3)),
                ElementId(3)
            );
        }
    }

    #[test]
    #[should_panic(expected = "same element")]
    fn self_comparison_panics() {
        oracle(3).compare(WorkerClass::Naive, ElementId(1), ElementId(1));
    }

    #[test]
    fn memo_answers_repeats_for_free() {
        let mut o = MemoOracle::new(oracle(4));
        let first = o.compare(WorkerClass::Naive, ElementId(2), ElementId(3));
        for _ in 0..10 {
            assert_eq!(
                o.compare(WorkerClass::Naive, ElementId(2), ElementId(3)),
                first
            );
            assert_eq!(
                o.compare(WorkerClass::Naive, ElementId(3), ElementId(2)),
                first
            );
        }
        assert_eq!(o.counts().naive, 1, "only the first query reaches a worker");
        assert_eq!(o.hits(), 20);
    }

    #[test]
    fn memo_is_per_class() {
        let mut o = MemoOracle::new(oracle(5));
        o.compare(WorkerClass::Naive, ElementId(2), ElementId(3));
        o.compare(WorkerClass::Expert, ElementId(2), ElementId(3));
        assert_eq!(o.counts().naive, 1);
        assert_eq!(o.counts().expert, 1);
        assert_eq!(o.hits(), 0);
    }

    #[test]
    fn simulated_expert_uses_naive_majority() {
        // Experts simulated by 7 naïve votes: the tally must contain only
        // naïve comparisons, 7 per expert query.
        let mut o = SimulatedExpertOracle::paper_default(oracle(6));
        o.compare(WorkerClass::Expert, ElementId(0), ElementId(2));
        assert_eq!(o.counts().naive, 7);
        assert_eq!(o.counts().expert, 0);
        // d(0, 2) = 20 > δn, so the majority is unanimous and correct.
        let w = o.compare(WorkerClass::Expert, ElementId(0), ElementId(2));
        assert_eq!(w, ElementId(2));
    }

    #[test]
    fn simulated_expert_plateaus_below_naive_threshold() {
        // d(2, 3) = 1 <= δn = 5: naïve votes are coin flips, so the
        // simulated expert is right only ~half the time — the CARS effect.
        let mut o = SimulatedExpertOracle::paper_default(oracle(7));
        let trials = 2_000;
        let correct = (0..trials)
            .filter(|_| o.compare(WorkerClass::Expert, ElementId(2), ElementId(3)) == ElementId(3))
            .count();
        let acc = correct as f64 / trials as f64;
        assert!((acc - 0.5).abs() < 0.05, "simulated-expert accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn simulated_expert_rejects_even_votes() {
        SimulatedExpertOracle::new(oracle(8), 6);
    }

    #[test]
    fn majority_oracle_aggregates_and_counts_all_votes() {
        use crate::model::ProbabilisticModel;
        // Naïve workers err 30% of the time; a 21-vote majority is nearly
        // always right.
        let inner = ModelOracle::new(
            instance(),
            ProbabilisticModel::new(0.3),
            ProbabilisticModel::perfect(),
            StdRng::seed_from_u64(20),
        );
        let mut o = MajorityOracle::new(inner, 21, 1);
        let correct = (0..100)
            .filter(|_| o.compare(WorkerClass::Naive, ElementId(0), ElementId(2)) == ElementId(2))
            .count();
        assert!(correct >= 95, "majority accuracy too low: {correct}/100");
        assert_eq!(o.counts().naive, 2100, "every judgment is paid for");
        o.compare(WorkerClass::Expert, ElementId(0), ElementId(1));
        assert_eq!(o.counts().expert, 1);
        let _ = o.into_inner();
    }

    #[test]
    #[should_panic(expected = "vote counts must be positive")]
    fn majority_oracle_rejects_zero_votes() {
        MajorityOracle::new(oracle(21), 0, 1);
    }

    #[test]
    fn model_oracle_dispatches_per_class() {
        use crate::model::ProbabilisticModel;
        // Naïve workers always err (p = 1), experts never do.
        let mut o = ModelOracle::new(
            instance(),
            ProbabilisticModel::new(1.0),
            ProbabilisticModel::perfect(),
            StdRng::seed_from_u64(10),
        );
        assert_eq!(
            o.compare(WorkerClass::Naive, ElementId(0), ElementId(1)),
            ElementId(0)
        );
        assert_eq!(
            o.compare(WorkerClass::Expert, ElementId(0), ElementId(1)),
            ElementId(1)
        );
        assert_eq!(o.counts().naive, 1);
        assert_eq!(o.counts().expert, 1);
        assert_eq!(o.instance().n(), 4);
    }

    #[test]
    fn fn_oracle_delegates_and_counts() {
        let mut o = FnOracle::new(|_, k, _j| k);
        assert_eq!(
            o.compare(WorkerClass::Naive, ElementId(5), ElementId(9)),
            ElementId(5)
        );
        assert_eq!(o.counts().naive, 1);
    }

    #[test]
    fn perfect_oracle_is_always_right() {
        let mut o = PerfectOracle::new(instance());
        assert_eq!(
            o.compare(WorkerClass::Naive, ElementId(2), ElementId(3)),
            ElementId(3)
        );
        assert_eq!(
            o.compare(WorkerClass::Expert, ElementId(0), ElementId(1)),
            ElementId(1)
        );
        assert_eq!(o.counts().total(), 2);
    }

    #[test]
    fn mut_ref_forwarding() {
        let mut o = oracle(9);
        let r = &mut o;
        r.compare(WorkerClass::Naive, ElementId(0), ElementId(1));
        assert_eq!(o.counts().naive, 1);
    }

    /// A test oracle that answers `budget` queries, then fails forever.
    struct FlakyOracle {
        budget: u64,
        counts: ComparisonCounts,
    }

    impl FlakyOracle {
        fn new(budget: u64) -> Self {
            FlakyOracle {
                budget,
                counts: ComparisonCounts::zero(),
            }
        }
    }

    impl ComparisonOracle for FlakyOracle {
        fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
            self.try_compare(class, k, j)
                .expect("budget exhausted — use try_compare")
        }

        fn try_compare(
            &mut self,
            class: WorkerClass,
            k: ElementId,
            j: ElementId,
        ) -> Result<ElementId, OracleError> {
            if self.budget == 0 {
                return Err(OracleError::WorkforceDepleted { class });
            }
            self.budget -= 1;
            self.counts.record(class);
            Ok(if k > j { k } else { j })
        }

        fn counts(&self) -> ComparisonCounts {
            self.counts
        }
    }

    #[test]
    fn try_compare_default_wraps_compare() {
        let mut o = oracle(40);
        let w = o
            .try_compare(WorkerClass::Naive, ElementId(0), ElementId(2))
            .unwrap();
        assert_eq!(w, ElementId(2));
        assert_eq!(o.counts().naive, 1);
    }

    #[test]
    fn try_compare_forwards_through_decorators() {
        // Memo over a flaky oracle: the memoized pair survives the outage.
        let mut o = MemoOracle::new(FlakyOracle::new(1));
        let w = o
            .try_compare(WorkerClass::Naive, ElementId(1), ElementId(2))
            .unwrap();
        assert_eq!(w, ElementId(2));
        // Repeat: memo hit, no worker needed even though the pool is gone.
        assert_eq!(
            o.try_compare(WorkerClass::Naive, ElementId(2), ElementId(1)),
            Ok(ElementId(2))
        );
        assert_eq!(o.hits(), 1);
        // A fresh pair now fails, and the failure is typed.
        assert_eq!(
            o.try_compare(WorkerClass::Naive, ElementId(3), ElementId(4)),
            Err(OracleError::WorkforceDepleted {
                class: WorkerClass::Naive
            })
        );
    }

    #[test]
    fn try_compare_surfaces_mid_vote_failures() {
        // An expert query = 7 naive votes; the pool dies after 3.
        let mut o = SimulatedExpertOracle::paper_default(FlakyOracle::new(3));
        let err = o
            .try_compare(WorkerClass::Expert, ElementId(0), ElementId(1))
            .unwrap_err();
        assert_eq!(
            err,
            OracleError::WorkforceDepleted {
                class: WorkerClass::Naive
            }
        );
        assert_eq!(o.counts().naive, 3, "the three completed votes are paid");
    }

    #[test]
    fn fuse_passes_through_until_the_first_error() {
        let mut fuse = FuseOracle::new(FlakyOracle::new(2));
        assert_eq!(
            fuse.compare(WorkerClass::Naive, ElementId(0), ElementId(5)),
            ElementId(5)
        );
        assert_eq!(
            fuse.compare(WorkerClass::Naive, ElementId(1), ElementId(6)),
            ElementId(6)
        );
        assert!(!fuse.blown());
        // Third query hits the outage: fabricated answer, fuse blows.
        assert_eq!(
            fuse.compare(WorkerClass::Naive, ElementId(9), ElementId(3)),
            ElementId(3),
            "fresh pairs go to the smaller id after the fuse blows"
        );
        assert!(fuse.blown());
        assert_eq!(
            fuse.error(),
            Some(&OracleError::WorkforceDepleted {
                class: WorkerClass::Naive
            })
        );
        // Post-blow answers are consistent and free.
        let before = fuse.counts();
        assert_eq!(
            fuse.compare(WorkerClass::Naive, ElementId(0), ElementId(5)),
            ElementId(5),
            "pre-blow answers are remembered"
        );
        assert_eq!(
            fuse.compare(WorkerClass::Naive, ElementId(3), ElementId(9)),
            ElementId(3)
        );
        assert_eq!(fuse.counts(), before, "no worker is bothered after a blow");
        assert_eq!(
            fuse.take_error(),
            Some(OracleError::WorkforceDepleted {
                class: WorkerClass::Naive
            })
        );
        assert!(!fuse.blown());
        let _ = fuse.into_inner();
    }

    #[test]
    fn oracle_error_displays() {
        assert!(OracleError::WorkforceDepleted {
            class: WorkerClass::Expert
        }
        .to_string()
        .contains("expert"));
        assert!(OracleError::Unanswered { attempts: 4 }
            .to_string()
            .contains('4'));
        assert!(OracleError::BudgetExhausted.to_string().contains("budget"));
    }
}
