//! Small statistics helpers for experiment aggregation.
//!
//! The paper's figures report averages over randomly generated instances
//! (e.g. "the average real rank of the maximum element returned"). These
//! helpers provide numerically careful accumulation (Welford's algorithm)
//! without pulling in a statistics dependency.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics on non-finite observations.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "observations must be finite");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (0 when empty).
    pub fn sem(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Builds a summary from an iterator of observations.
    pub fn collect<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.push(x);
        }
        s
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Linear-interpolation quantile of a sample (the "type 7" estimator).
///
/// # Panics
///
/// Panics if `values` is empty, contains non-finite numbers, or `q` is
/// outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "q must be in [0, 1]");
    let mut sorted: Vec<f64> = values.to_vec();
    assert!(
        sorted.iter().all(|v| v.is_finite()),
        "values must be finite"
    );
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let s = RunningStats::collect([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_singleton() {
        let e = RunningStats::new();
        assert_eq!(e.count(), 0);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.variance(), 0.0);
        assert_eq!(e.sem(), 0.0);

        let s = RunningStats::collect([3.0]);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = data.split_at(37);
        let mut left = RunningStats::collect(a.iter().copied());
        let right = RunningStats::collect(b.iter().copied());
        left.merge(&right);
        let all = RunningStats::collect(data.iter().copied());
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = RunningStats::collect([1.0, 2.0]);
        let before = s;
        s.merge(&RunningStats::new());
        assert_eq!(s, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantiles() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert_eq!(quantile(&v, 0.5), 2.5);
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn quantile_of_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_observation_panics() {
        RunningStats::new().push(f64::NAN);
    }
}
