//! Estimating `un(n)` and `perr` from training (gold) data
//! (paper Section 4.4, Algorithm 4).
//!
//! The algorithms of Section 4 take `un(n)` as a parameter. Without extra
//! assumptions the model makes `un(n)` unlearnable (workers may answer
//! correctly below the threshold, revealing nothing about `δn`), so the
//! paper adopts:
//!
//! * **Assumption 1** — the training set is statistically like the real
//!   data: `(n/n̂)·un(n̂)` estimates `un(n)`;
//! * **Assumption 2** — below the threshold, workers err with probability
//!   `perr > 0` (e.g. `perr ≈ 0.4` from the CARS plateau), independently.
//!
//! Algorithm 4 compares every training element against the known training
//! maximum `M̂` once and returns
//! `(n/n̂)·max(c·ln n, 2·#errors / perr)`, an upper bound on `un(n)` whp.
//! Overestimation costs money, never correctness.

use crate::element::{ElementId, Instance};
use crate::model::WorkerClass;
use crate::oracle::ComparisonOracle;
use serde::{Deserialize, Serialize};

/// A training ("gold") set: an instance whose maximum element is known to
/// the task owner.
///
/// "Training data like this are typically used in crowdsourcing platforms
/// to evaluate the workers and are sometimes referred to as gold data."
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingSet {
    instance: Instance,
    max: ElementId,
}

impl TrainingSet {
    /// Builds a training set; the maximum is derived from the instance's
    /// ground truth (the owner knows it — that is what makes it gold data).
    pub fn new(instance: Instance) -> Self {
        let max = instance.max_element();
        TrainingSet { instance, max }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The known maximum `M̂`.
    pub fn max(&self) -> ElementId {
        self.max
    }

    /// Training-set size `n̂`.
    pub fn n_hat(&self) -> usize {
        self.instance.n()
    }
}

/// Configuration for [`estimate_un`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimationConfig {
    /// Assumption 2's below-threshold error probability `perr`
    /// (the paper suggests `≈ 0.4` from the CARS accuracy plateau).
    pub perr: f64,
    /// The confidence constant `c` in the `c·ln n` floor.
    pub c: f64,
}

impl EstimationConfig {
    /// Builds a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < perr < 1` and `c > 0`.
    pub fn new(perr: f64, c: f64) -> Self {
        assert!(perr > 0.0 && perr < 1.0, "perr must be in (0, 1)");
        assert!(c > 0.0, "the confidence constant must be positive");
        EstimationConfig { perr, c }
    }
}

impl Default for EstimationConfig {
    /// `perr = 0.4` (the paper's CARS reading of Figure 2b) and `c = 1`.
    fn default() -> Self {
        EstimationConfig::new(0.4, 1.0)
    }
}

/// Outcome of an [`estimate_un`] run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnEstimate {
    /// The estimated upper bound on `un(n)` (at least 1 — the maximum is
    /// always indistinguishable from itself).
    pub un: usize,
    /// Errors observed among the training comparisons.
    pub errors: usize,
    /// Training comparisons performed (`n̂ − 1`).
    pub comparisons: usize,
}

/// Algorithm 4: estimates an upper bound on `un(n)` for a target input of
/// size `n`, by comparing each training element against the training
/// maximum `M̂` with one naïve worker.
///
/// A worker "makes an error" when she returns the element with the lower
/// value — for these pairs, the element other than `M̂` (value ties cannot
/// occur against a *strict* maximum, and `M̂` itself is skipped).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn estimate_un<O: ComparisonOracle>(
    oracle: &mut O,
    training: &TrainingSet,
    config: &EstimationConfig,
    n: usize,
) -> UnEstimate {
    assert!(n > 0, "the target input size must be positive");
    let m_hat = training.max();
    let mut errors = 0usize;
    let mut comparisons = 0usize;
    for x in training.instance().ids() {
        if x == m_hat {
            continue;
        }
        comparisons += 1;
        if oracle.compare(WorkerClass::Naive, x, m_hat) == x {
            errors += 1;
        }
    }
    let n_hat = training.n_hat() as f64;
    let floor = config.c * (n as f64).ln();
    let empirical = 2.0 * errors as f64 / config.perr;
    let scaled = (n as f64 / n_hat) * floor.max(empirical);
    UnEstimate {
        un: (scaled.ceil() as usize).max(1),
        errors,
        comparisons,
    }
}

/// Outcome of a [`estimate_perr`] run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerrEstimate {
    /// The estimated below-threshold error probability, or `None` if every
    /// sampled pair reached consensus (no below-threshold pair observed).
    pub perr: Option<f64>,
    /// Pairs whose votes reached consensus (treated as above-threshold and
    /// excluded from the estimate).
    pub consensus_pairs: usize,
    /// Pairs contributing to the estimate.
    pub contested_pairs: usize,
    /// Total comparisons performed.
    pub comparisons: usize,
}

/// Estimates `perr` from training data (Section 4.4's discussion): each
/// listed pair is judged by `votes` naïve workers; unanimous pairs are
/// taken as above-threshold (up to a residual probability exponentially
/// small in `votes`) and excluded; for the remaining (below-threshold)
/// pairs the fraction of wrong votes estimates `perr`.
///
/// # Panics
///
/// Panics if `votes < 2` (consensus over one vote is vacuous) or if a pair
/// repeats an element.
pub fn estimate_perr<O: ComparisonOracle>(
    oracle: &mut O,
    training: &TrainingSet,
    pairs: &[(ElementId, ElementId)],
    votes: u32,
) -> PerrEstimate {
    assert!(votes >= 2, "consensus needs at least two votes");
    let inst = training.instance();
    let mut consensus_pairs = 0usize;
    let mut contested_pairs = 0usize;
    let mut wrong_votes = 0usize;
    let mut contested_votes = 0usize;
    let mut comparisons = 0usize;

    for &(k, j) in pairs {
        let truth = if inst.value(k) >= inst.value(j) { k } else { j };
        let mut answers = Vec::with_capacity(votes as usize);
        for _ in 0..votes {
            answers.push(oracle.compare(WorkerClass::Naive, k, j));
            comparisons += 1;
        }
        let first = answers[0];
        if answers.iter().all(|&a| a == first) {
            consensus_pairs += 1;
        } else {
            contested_pairs += 1;
            contested_votes += answers.len();
            wrong_votes += answers.iter().filter(|&&a| a != truth).count();
        }
    }

    PerrEstimate {
        perr: (contested_votes > 0).then(|| wrong_votes as f64 / contested_votes as f64),
        consensus_pairs,
        contested_pairs,
        comparisons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ExpertModel, TiePolicy};
    use crate::oracle::{PerfectOracle, SimulatedOracle};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn training_with_cluster(n_hat: usize, cluster: usize, delta: f64, seed: u64) -> TrainingSet {
        // `cluster` elements within `delta` of the max (including the max),
        // the rest far below.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut values = vec![1000.0];
        for _ in 1..cluster {
            values.push(1000.0 - rng.gen_range(0.0..delta));
        }
        for _ in cluster..n_hat {
            values.push(rng.gen_range(0.0..(1000.0 - 2.0 * delta)));
        }
        TrainingSet::new(Instance::new(values))
    }

    fn coin_flip_oracle(ts: &TrainingSet, delta: f64, seed: u64) -> SimulatedOracle<StdRng> {
        let model = ExpertModel::exact(delta, 0.0, TiePolicy::UniformRandom);
        SimulatedOracle::new(ts.instance().clone(), model, StdRng::seed_from_u64(seed))
    }

    #[test]
    fn training_set_knows_its_max() {
        let ts = TrainingSet::new(Instance::new(vec![1.0, 9.0, 3.0]));
        assert_eq!(ts.max(), ElementId(1));
        assert_eq!(ts.n_hat(), 3);
    }

    #[test]
    fn estimate_is_an_upper_bound_on_true_un() {
        // Below-threshold comparisons flip a fair coin, so perr = 0.5.
        let delta = 10.0;
        let mut upper_bound_held = 0;
        let trials = 20;
        for seed in 0..trials {
            let ts = training_with_cluster(200, 20, delta, seed);
            let true_un = ts.instance().indistinguishable_from_max(delta);
            let mut o = coin_flip_oracle(&ts, delta, seed + 100);
            let cfg = EstimationConfig::new(0.5, 1.0);
            let est = estimate_un(&mut o, &ts, &cfg, 200);
            if est.un >= true_un {
                upper_bound_held += 1;
            }
        }
        // "whp": the Chernoff argument allows rare failures.
        assert!(
            upper_bound_held >= trials - 2,
            "{upper_bound_held}/{trials} held"
        );
    }

    #[test]
    fn estimate_scales_with_target_size() {
        let delta = 10.0;
        let ts = training_with_cluster(200, 20, delta, 1);
        let mut o1 = coin_flip_oracle(&ts, delta, 2);
        let mut o2 = coin_flip_oracle(&ts, delta, 2);
        let cfg = EstimationConfig::new(0.5, 1.0);
        let small = estimate_un(&mut o1, &ts, &cfg, 200);
        let large = estimate_un(&mut o2, &ts, &cfg, 2000);
        assert!(
            large.un > small.un,
            "scaling by n/n̂ failed: {small:?} vs {large:?}"
        );
    }

    #[test]
    fn perfect_workers_trigger_the_log_floor() {
        let ts = TrainingSet::new(Instance::new((0..100).map(|i| i as f64 * 100.0).collect()));
        let mut o = PerfectOracle::new(ts.instance().clone());
        let est = estimate_un(&mut o, &ts, &EstimationConfig::default(), 100);
        assert_eq!(est.errors, 0);
        // max(c ln 100, 0) = ln 100 ≈ 4.6 → 5.
        assert_eq!(est.un, (100f64.ln()).ceil() as usize);
        assert_eq!(est.comparisons, 99);
    }

    #[test]
    fn estimate_perr_recovers_the_coin() {
        let delta = 10.0;
        let ts = training_with_cluster(100, 50, delta, 3);
        let inst = ts.instance();
        // Pairs inside the cluster (below threshold) and far pairs.
        let mut pairs = Vec::new();
        for i in 1..40u32 {
            pairs.push((ElementId(0), ElementId(i))); // within the cluster
        }
        for i in 60..90u32 {
            pairs.push((ElementId(0), ElementId(i))); // far below
        }
        let mut o = coin_flip_oracle(&ts, delta, 4);
        let est = estimate_perr(&mut o, &ts, &pairs, 9);
        // Far pairs reach consensus; cluster pairs are coin flips (perr 0.5).
        assert!(est.consensus_pairs >= 30, "{est:?}");
        assert!(est.contested_pairs >= 30, "{est:?}");
        let perr = est.perr.expect("contested pairs exist");
        assert!((perr - 0.5).abs() < 0.08, "estimated perr {perr}");
        let _ = inst;
    }

    #[test]
    fn estimate_perr_all_consensus_returns_none() {
        let ts = TrainingSet::new(Instance::new(vec![0.0, 100.0, 200.0]));
        let mut o = PerfectOracle::new(ts.instance().clone());
        let pairs = [(ElementId(0), ElementId(1)), (ElementId(1), ElementId(2))];
        let est = estimate_perr(&mut o, &ts, &pairs, 5);
        assert_eq!(est.perr, None);
        assert_eq!(est.consensus_pairs, 2);
        assert_eq!(est.comparisons, 10);
    }

    #[test]
    #[should_panic(expected = "perr must be in (0, 1)")]
    fn config_rejects_zero_perr() {
        EstimationConfig::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two votes")]
    fn perr_rejects_single_vote() {
        let ts = TrainingSet::new(Instance::new(vec![0.0, 1.0]));
        let mut o = PerfectOracle::new(ts.instance().clone());
        estimate_perr(&mut o, &ts, &[(ElementId(0), ElementId(1))], 1);
    }
}
