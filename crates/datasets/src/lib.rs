//! # crowd-datasets
//!
//! Workload generators reproducing the datasets of *"The Importance of
//! Being Expert"* (SIGMOD 2015). The paper's data came from image
//! generation, a cars.com scrape, and Google result lists; since none of
//! those are shippable, each generator synthesizes data with the same
//! structural properties and pairs it with a worker model calibrated to the
//! paper's measured accuracy curves (Figure 2):
//!
//! * [`dots`] — the DOTS dot-counting images (wisdom-of-crowds regime:
//!   accuracy converges with more votes).
//! * [`cars`] — the CARS price-comparison catalog (expertise regime:
//!   accuracy plateaus at 0.6–0.7 below a 20% relative difference).
//! * [`synthetic`] — uniform and planted-`un(n)` instances driving the
//!   simulation figures (3–7, 9, 10).
//! * [`adversarial`] — the Lemma 7 lower-bound gadget, descending chains,
//!   and the worst-case responder behind the paper's worst-case curves.
//! * [`search`] — the Section 5.3 search-result evaluation scenario.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod adversarial;
pub mod cars;
pub mod dots;
pub mod search;
pub mod synthetic;

pub use adversarial::{descending_chain, lemma7_instance, AdversarialOracle};
pub use cars::{BodyStyle, Car, CarsCatalog, CarsWorkerModel};
pub use dots::{relative_difference, DotsDataset, DotsImage, DotsWorkerModel};
pub use search::{SearchResult, SearchResultSet};
pub use synthetic::{
    paper_parameter_grid, planted_instance, uniform_instance, PlantedInstance, VALUE_RANGE,
};
