//! Adversarial instances and responders (paper Sections 4.3, 5,
//! Appendix B/C).
//!
//! Three constructions back the paper's lower bounds and worst-case curves:
//!
//! * [`lemma7_instance`] — the Lemma 7 gadget: an element `e`, a far ring
//!   `E1` at distance ≈ 1.5·δn, and a near ring `E2` at ≈ 0.8·δn, arranged
//!   so that any comparison set in which `e` participates fewer than
//!   `un(n)` times is consistent with `e` being the maximum. It drives
//!   Corollary 1's `Ω(n·un/4)` naïve lower bound.
//! * [`descending_chain`] — values spaced just inside `δ`, the worst case
//!   for champion-scan style algorithms and a stressor for 2-MaxFind.
//! * [`AdversarialOracle`] — the Section 5 worst-case responder: "in all
//!   the comparisons of step 4 of Algorithm 3, whenever the difference is
//!   below the threshold, we make element x lose, such as to maximize the
//!   number of elements that go to the next round." The oracle realizes
//!   this without knowing who `x` is by always making the element with the
//!   larger number of *prior wins* lose below-threshold comparisons — the
//!   round champion is exactly the recent multi-winner.

use crowd_core::element::{ElementId, Instance};
use crowd_core::model::{true_loser, true_winner, WorkerClass};
use crowd_core::oracle::{ComparisonCounts, ComparisonOracle};
use std::collections::HashMap;

/// The Lemma 7 instance: element 0 is the designated "possible maximum"
/// `e`; `un − 1` elements sit at distance ≈ 0.8·δn (the near ring `E2`,
/// naïve-indistinguishable from `e`), and the remaining `n − un` at
/// distance ≈ 1.5·δn below (the far ring `E1`).
///
/// Every pair of non-`e` elements is within `δn` of each other (both rings
/// fit in an interval of width `0.1·δn` each, `0.7·δn` apart), so *their*
/// comparisons reveal nothing; only comparisons involving `e` can rule `e`
/// out, and it takes more than `un − 1` of them.
///
/// # Panics
///
/// Panics unless `1 <= un <= n`.
pub fn lemma7_instance(n: usize, un: usize, delta_n: f64) -> Instance {
    assert!(un >= 1 && un <= n, "need 1 <= un <= n");
    assert!(delta_n > 0.0, "δn must be positive");
    let v = 10.0 * delta_n; // e's value, comfortably above zero
    let mut values = Vec::with_capacity(n);
    values.push(v);
    // Near ring E2: un - 1 distinct values in an interval of width 0.1·δn
    // centred at distance 0.8·δn below e.
    for i in 0..(un - 1) {
        let offset = 0.8 * delta_n - 0.05 * delta_n + 0.1 * delta_n * (i as f64 + 1.0) / un as f64;
        values.push(v - offset);
    }
    // Far ring E1: the rest, width 0.1·δn at distance 1.5·δn.
    let far = n - un;
    for i in 0..far {
        let offset =
            1.5 * delta_n - 0.05 * delta_n + 0.1 * delta_n * (i as f64 + 1.0) / (far + 1) as f64;
        values.push(v - offset);
    }
    Instance::new(values)
}

/// A descending chain of `n` values spaced `spacing` apart (choose
/// `spacing <= δ` to make every adjacent pair indistinguishable).
pub fn descending_chain(n: usize, top: f64, spacing: f64) -> Instance {
    assert!(n > 0, "need at least one element");
    Instance::new((0..n).map(|i| top - i as f64 * spacing).collect())
}

/// The worst-case responder of Section 5: below the threshold, the current
/// "champion" (the element with the most wins so far) loses, maximizing
/// the survivors of 2-MaxFind's elimination step; above the threshold the
/// answer is truthful.
///
/// Both classes share the same threshold `delta` here because the paper
/// uses this responder to stress a *single-class* run of 2-MaxFind.
#[derive(Debug)]
pub struct AdversarialOracle {
    instance: Instance,
    delta: f64,
    wins: HashMap<ElementId, u64>,
    counts: ComparisonCounts,
}

impl AdversarialOracle {
    /// Builds the responder over `instance` with threshold `delta`.
    pub fn new(instance: Instance, delta: f64) -> Self {
        assert!(
            delta >= 0.0 && delta.is_finite(),
            "δ must be finite and non-negative"
        );
        AdversarialOracle {
            instance,
            delta,
            wins: HashMap::new(),
            counts: ComparisonCounts::zero(),
        }
    }

    /// The ground-truth instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }
}

impl ComparisonOracle for AdversarialOracle {
    fn compare(&mut self, class: WorkerClass, k: ElementId, j: ElementId) -> ElementId {
        assert_ne!(
            k, j,
            "a worker is never handed two copies of the same element"
        );
        self.counts.record(class);
        let (vk, vj) = (self.instance.value(k), self.instance.value(j));
        let winner = if (vk - vj).abs() <= self.delta {
            // Below threshold: the leader loses. Ties in win counts fall
            // back to hiding the truly larger element.
            let (wk, wj) = (
                self.wins.get(&k).copied().unwrap_or(0),
                self.wins.get(&j).copied().unwrap_or(0),
            );
            match wk.cmp(&wj) {
                std::cmp::Ordering::Greater => j,
                std::cmp::Ordering::Less => k,
                std::cmp::Ordering::Equal => true_loser(k, vk, j, vj),
            }
        } else {
            true_winner(k, vk, j, vj)
        };
        *self.wins.entry(winner).or_insert(0) += 1;
        winner
    }

    fn counts(&self) -> ComparisonCounts {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_core::algorithms::{two_max_find, two_max_find_comparison_bound};
    use crowd_core::model::{ExpertModel, TiePolicy};
    use crowd_core::oracle::SimulatedOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lemma7_geometry() {
        let (n, un, dn) = (100, 10, 1.0);
        let inst = lemma7_instance(n, un, dn);
        assert_eq!(inst.n(), n);
        // e (id 0) is the maximum.
        assert_eq!(inst.max_element(), ElementId(0));
        // Exactly un elements are naive-indistinguishable from e.
        assert_eq!(inst.indistinguishable_from_max(dn), un);
        // All non-e elements are mutually indistinguishable: max spread is
        // (1.5 + 0.05) - (0.8 - 0.05) = 0.8·δn < δn.
        for i in 1..n as u32 {
            for j in (i + 1)..n as u32 {
                assert!(
                    inst.distance(ElementId(i), ElementId(j)) <= dn,
                    "non-e pair ({i}, {j}) is distinguishable"
                );
            }
        }
    }

    #[test]
    fn lemma7_rings_are_distinct_values() {
        let inst = lemma7_instance(30, 5, 2.0);
        let mut vals: Vec<f64> = inst.values().to_vec();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in vals.windows(2) {
            assert!(w[1] > w[0], "values must be pairwise distinct");
        }
    }

    #[test]
    fn descending_chain_shape() {
        let c = descending_chain(5, 100.0, 2.0);
        assert_eq!(c.values(), &[100.0, 98.0, 96.0, 94.0, 92.0]);
        assert_eq!(c.max_element(), ElementId(0));
    }

    #[test]
    fn adversarial_oracle_is_truthful_above_threshold() {
        let inst = Instance::new(vec![0.0, 100.0]);
        let mut o = AdversarialOracle::new(inst, 1.0);
        for _ in 0..5 {
            assert_eq!(
                o.compare(WorkerClass::Naive, ElementId(0), ElementId(1)),
                ElementId(1)
            );
        }
    }

    #[test]
    fn adversarial_oracle_dethrones_the_leader() {
        // Three mutually indistinguishable elements: whoever accumulates
        // wins starts losing.
        let inst = Instance::new(vec![1.0, 1.1, 1.2]);
        let mut o = AdversarialOracle::new(inst, 1.0);
        let w1 = o.compare(WorkerClass::Naive, ElementId(0), ElementId(1));
        // w1 now has 1 win; against a 0-win element it must lose.
        let other = if w1 == ElementId(0) {
            ElementId(1)
        } else {
            ElementId(0)
        };
        let w2 = o.compare(WorkerClass::Naive, w1, ElementId(2));
        assert_eq!(w2, ElementId(2), "the leader must lose below threshold");
        let w3 = o.compare(WorkerClass::Naive, w1, other);
        assert_eq!(w3, other);
    }

    #[test]
    fn adversary_costs_more_than_random_ties_for_two_maxfind() {
        // The adversarial responder should force 2-MaxFind to do at least
        // as many comparisons as benign uniform-random ties, while staying
        // within the 2·s^{3/2} bound.
        let n = 200;
        let inst = descending_chain(n, 1000.0, 0.4); // all within δ = 100
        let mut adv = AdversarialOracle::new(inst.clone(), 100.0);
        let adv_out = two_max_find(&mut adv, WorkerClass::Naive, &inst.ids());

        let model = ExpertModel::exact(100.0, 100.0, TiePolicy::UniformRandom);
        let mut rnd = SimulatedOracle::new(inst.clone(), model, StdRng::seed_from_u64(1));
        let rnd_out = two_max_find(&mut rnd, WorkerClass::Naive, &inst.ids());

        assert!(
            adv_out.comparisons.naive >= rnd_out.comparisons.naive,
            "adversary ({}) did not outcost random ({})",
            adv_out.comparisons.naive,
            rnd_out.comparisons.naive
        );
        assert!(adv_out.comparisons.naive <= two_max_find_comparison_bound(n));
    }

    #[test]
    #[should_panic(expected = "1 <= un <= n")]
    fn lemma7_rejects_zero_un() {
        lemma7_instance(10, 0, 1.0);
    }
}
