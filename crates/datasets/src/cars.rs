//! The CARS dataset (paper Section 3.1).
//!
//! The paper scraped ~5000 new cars from cars.com, then curated 110 cars
//! with prices between $14K and $130K such that every pair differs by at
//! least $500, avoiding repeated models per brand/year. The task "select
//! the most expensive car" requires *acquired* knowledge: Figure 2(b) shows
//! that for relative price differences up to 20% the crowd's accuracy
//! plateaus at 0.6–0.7 no matter how many workers vote — the behaviour that
//! motivates the threshold model and the introduction of experts.
//!
//! [`CarsCatalog`] generates a synthetic catalog with the same structural
//! constraints, and [`CarsWorkerModel`] reproduces the plateau: the crowd
//! shares a *perceived price* per car — the true price distorted by a
//! persistent multiplicative bias ("the bigger German sedan must cost
//! more") — and below the 20% threshold workers mostly rank by perceived
//! price. Majority voting therefore converges to the *perceived* order,
//! not the true one: accuracy plateaus, and when the perceived order of
//! the top cluster is wrong the crowd is systematically wrong (the paper's
//! Table 2 and its 0/14 naive-only runs).

use crowd_core::element::{ElementId, Instance, Value};
use crowd_core::model::{true_loser, true_winner, ErrorModel};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Car body styles, as shown to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BodyStyle {
    /// Four-door sedan.
    Sedan,
    /// Sport-utility vehicle.
    Suv,
    /// Two-door coupe.
    Coupe,
    /// Convertible / roadster.
    Convertible,
    /// Hatchback.
    Hatchback,
    /// Pickup truck.
    Pickup,
}

impl BodyStyle {
    /// All styles, for generation.
    pub const ALL: [BodyStyle; 6] = [
        BodyStyle::Sedan,
        BodyStyle::Suv,
        BodyStyle::Coupe,
        BodyStyle::Convertible,
        BodyStyle::Hatchback,
        BodyStyle::Pickup,
    ];
}

/// A car listing: the limited information shown to workers plus the hidden
/// ground-truth price.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Car {
    /// Manufacturer.
    pub make: String,
    /// Model name.
    pub model: String,
    /// Body style.
    pub body: BodyStyle,
    /// Number of doors.
    pub doors: u8,
    /// Listing price in dollars (the hidden value function).
    pub price: f64,
}

/// Synthetic make catalog: `(make, price-band low, price-band high)` in
/// dollars — premium brands get premium bands, so the generated data has
/// the same "brand hints at price but does not determine it" structure that
/// makes CARS hard.
const MAKES: &[(&str, f64, f64)] = &[
    ("Kiara", 14_000.0, 35_000.0),
    ("Fordley", 16_000.0, 55_000.0),
    ("Chevron", 16_000.0, 75_000.0),
    ("Toyosan", 17_000.0, 50_000.0),
    ("Hondara", 18_000.0, 45_000.0),
    ("Volkswerk", 20_000.0, 60_000.0),
    ("Audette", 35_000.0, 120_000.0),
    ("Bavaria", 35_000.0, 125_000.0),
    ("Mercatus", 38_000.0, 130_000.0),
    ("Lexion", 36_000.0, 95_000.0),
    ("Porschia", 55_000.0, 130_000.0),
    ("Jaguarro", 45_000.0, 110_000.0),
];

const MODEL_SYLLABLES: &[&str] = &[
    "Ax", "Bel", "Cor", "Dex", "El", "Fal", "Gran", "Hy", "Ion", "Jet",
];

/// A schedule of `count` ascending price targets from `lo` to (at most)
/// `hi`: each step is the larger of a geometric growth factor and
/// `min_gap`, with the growth factor solved by bisection so the last target
/// lands on `hi`. The result is the right-skewed shape of real car markets:
/// dense at the affordable end, sparse at the top.
fn price_ladder(count: usize, lo: f64, hi: f64, min_gap: f64) -> Vec<f64> {
    assert!(count >= 2, "a ladder needs at least two rungs");
    let end_for = |g: f64| {
        let mut t = lo;
        for _ in 1..count {
            t = (t * g).max(t + min_gap);
        }
        t
    };
    let (mut g_lo, mut g_hi) = (1.0f64, 2.0f64);
    for _ in 0..64 {
        let mid = (g_lo + g_hi) / 2.0;
        if end_for(mid) > hi {
            g_hi = mid;
        } else {
            g_lo = mid;
        }
    }
    let g = g_lo;
    let mut ladder = Vec::with_capacity(count);
    let mut t = lo;
    ladder.push(t);
    for _ in 1..count {
        t = (t * g).max(t + min_gap);
        ladder.push(t);
    }
    ladder
}

/// A curated car catalog satisfying the paper's constraints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CarsCatalog {
    cars: Vec<Car>,
}

impl CarsCatalog {
    /// Generates a catalog with the paper's constraints: `count` cars,
    /// prices in `[14_000, 130_000]`, every pair at least `min_gap` apart
    /// (paper: $500), one model per make/price-neighbourhood.
    ///
    /// Mirrors the paper's pipeline: oversample a large raw set (~5000),
    /// then greedily curate to `count` listings respecting the gap.
    ///
    /// # Panics
    ///
    /// Panics if `count` cars cannot fit in the price range with the
    /// requested gap (needs `count · min_gap <= 116_000`).
    pub fn generate<R: RngCore>(count: usize, min_gap: f64, rng: &mut R) -> Self {
        assert!(
            (count as f64 - 1.0) * min_gap <= 110_000.0,
            "cannot fit {count} cars at ${min_gap} spacing into $14K-$130K"
        );
        // Raw scrape: ~20000 listings (the paper scraped ~5000; we
        // oversample more to keep the greedy curation's per-pick overshoot
        // negligible even for dense gap-dominated ladders).
        let mut raw: Vec<Car> = (0..20_000)
            .map(|i| {
                let (make, lo, hi) = MAKES[rng.gen_range(0..MAKES.len())];
                let body = BodyStyle::ALL[rng.gen_range(0..BodyStyle::ALL.len())];
                let price = rng.gen_range(lo..hi);
                let model = format!(
                    "{}{} {}",
                    MODEL_SYLLABLES[rng.gen_range(0..MODEL_SYLLABLES.len())],
                    MODEL_SYLLABLES[rng.gen_range(0..MODEL_SYLLABLES.len())].to_lowercase(),
                    100 + (i % 9) * 100
                );
                Car {
                    make: make.to_string(),
                    model,
                    body,
                    doors: if matches!(body, BodyStyle::Coupe | BodyStyle::Convertible) {
                        2
                    } else {
                        4
                    },
                    price,
                }
            })
            .collect();

        // Curate: sort by price and greedily keep listings at least
        // `min_gap` apart, at geometrically spaced price targets. Real car
        // markets are right-skewed — many affordable cars, few expensive
        // ones — and the paper's own Table 2 shows the same shape (only ~5
        // cars within 20% of the $124K top car). Geometric spacing
        // reproduces that: roughly 10% of the catalog sits within 20% of
        // the maximum.
        raw.retain(|c| (14_000.0..=130_000.0).contains(&c.price));
        raw.sort_by(|a, b| a.price.partial_cmp(&b.price).expect("finite prices"));
        let ladder = price_ladder(count, 14_000.0, 127_000.0, min_gap);
        let mut curated: Vec<Car> = Vec::with_capacity(count);
        for car in raw {
            let far_enough = curated
                .last()
                .is_none_or(|prev: &Car| car.price - prev.price >= min_gap);
            if far_enough && car.price >= ladder[curated.len()] {
                curated.push(car);
                if curated.len() == count {
                    break;
                }
            }
        }
        assert_eq!(
            curated.len(),
            count,
            "raw sample too small to curate {count} cars — increase oversampling"
        );
        CarsCatalog { cars: curated }
    }

    /// The paper's configuration: 110 cars, $500 minimum gap.
    pub fn paper_default<R: RngCore>(rng: &mut R) -> Self {
        Self::generate(110, 500.0, rng)
    }

    /// The cars, in increasing price order.
    pub fn cars(&self) -> &[Car] {
        &self.cars
    }

    /// Number of cars.
    pub fn len(&self) -> usize {
        self.cars.len()
    }

    /// True if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.cars.is_empty()
    }

    /// Downsamples `count` cars uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the catalog size.
    pub fn downsample<R: RngCore>(&self, count: usize, rng: &mut R) -> Self {
        use rand::seq::SliceRandom;
        assert!(
            count <= self.cars.len(),
            "cannot downsample beyond the catalog"
        );
        let mut cars = self.cars.clone();
        cars.shuffle(rng);
        cars.truncate(count);
        CarsCatalog { cars }
    }

    /// The max-finding instance: value = price; the maximum element is the
    /// most expensive car.
    pub fn to_instance(&self) -> Instance {
        Instance::new(self.cars.iter().map(|c| c.price).collect())
    }

    /// The car behind an element id of [`to_instance`](Self::to_instance).
    pub fn car_of(&self, e: ElementId) -> &Car {
        &self.cars[e.index()]
    }
}

/// A worker model calibrated to the paper's Figure 2(b).
///
/// * Above `threshold` (default 20%) relative price difference: a
///   probabilistic error decaying in the difference — the crowd converges
///   with more votes, as in the paper's `(0.2, 0.5]` and `(0.5, ∞)` curves.
/// * At or below the threshold: the crowd ranks by *perceived price* — the
///   true price times a persistent per-car bias factor drawn once from
///   `[1 − noise, 1 + noise]` (one crowd, one shared belief per car). Each
///   worker follows the perceived order with probability `conformity` and
///   flips a coin otherwise. Majority voting converges to the perceived
///   order, so accuracy plateaus — and when the shared belief misranks the
///   top cars, the whole crowd is systematically wrong, reproducing the
///   paper's Table 2 misrankings and 0/14 naive-only failure rate.
///
/// One model instance represents one crowd judging one catalog: the bias
/// factors are keyed by element id.
#[derive(Debug, Clone)]
pub struct CarsWorkerModel {
    threshold: f64,
    conformity: f64,
    noise: f64,
    /// The crowd's shared bias factor per car, sampled on first sight.
    bias: HashMap<ElementId, f64>,
}

impl CarsWorkerModel {
    /// The calibration used in our Figure 2(b) reproduction: 20% threshold,
    /// 80% conformity, ±45% perceived-price noise. At those settings the
    /// plateau sits near 0.55 for near-equal prices and ~0.65-0.7 close to
    /// the threshold — the paper's 0.6/0.7 bands — and the crowd's shared
    /// misperception of the top cluster makes naive-only 2-MaxFind fail
    /// almost always, as in the paper's 0/14 runs.
    pub fn calibrated() -> Self {
        CarsWorkerModel {
            threshold: 0.2,
            conformity: 0.8,
            noise: 0.45,
            bias: HashMap::new(),
        }
    }

    /// The relative-difference threshold below which expertise is required.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Error probability above the threshold, decaying with distance.
    pub fn error_probability_above(&self, r: f64) -> f64 {
        debug_assert!(r > self.threshold);
        (0.35 * (-4.0 * (r - self.threshold)).exp()).min(0.499)
    }

    /// The crowd's perceived value of a car (sampling the shared bias on
    /// first sight).
    fn perceived(&mut self, e: ElementId, value: Value, rng: &mut dyn RngCore) -> f64 {
        let noise = self.noise;
        let factor = *self
            .bias
            .entry(e)
            .or_insert_with(|| 1.0 + rng.gen_range(-noise..noise));
        value * factor
    }
}

impl Default for CarsWorkerModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

impl ErrorModel for CarsWorkerModel {
    fn compare(
        &mut self,
        k: ElementId,
        vk: Value,
        j: ElementId,
        vj: Value,
        rng: &mut dyn RngCore,
    ) -> ElementId {
        let r = crate::dots::relative_difference(vk, vj);
        let correct = true_winner(k, vk, j, vj);
        let wrong = true_loser(k, vk, j, vj);
        if r > self.threshold {
            // Wisdom-of-crowds regime.
            return if rng.gen_bool(self.error_probability_above(r)) {
                wrong
            } else {
                correct
            };
        }
        // Expertise-required regime: follow the crowd's perceived order or
        // flip a coin.
        let (pk, pj) = (self.perceived(k, vk, rng), self.perceived(j, vj, rng));
        if rng.gen_bool(self.conformity) {
            true_winner(k, pk, j, pj)
        } else if rng.gen_bool(0.5) {
            correct
        } else {
            wrong
        }
    }

    fn delta(&self) -> f64 {
        self.threshold // in *relative* units; callers bucket by rel. diff
    }

    fn epsilon(&self) -> f64 {
        0.35
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd_core::algorithms::majority_compare;
    use crowd_core::model::{ProbabilisticModel, WorkerClass};
    use crowd_core::oracle::ModelOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_catalog_satisfies_constraints() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = CarsCatalog::paper_default(&mut rng);
        assert_eq!(c.len(), 110);
        for car in c.cars() {
            assert!(
                (14_000.0..=130_000.0).contains(&car.price),
                "price {}",
                car.price
            );
        }
        for w in c.cars().windows(2) {
            assert!(
                w[1].price - w[0].price >= 500.0,
                "gap violated: {} vs {}",
                w[0].price,
                w[1].price
            );
        }
    }

    #[test]
    fn instance_maximum_is_most_expensive() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = CarsCatalog::paper_default(&mut rng);
        let inst = c.to_instance();
        let m = inst.max_element();
        let top = c.car_of(m);
        assert!(c.cars().iter().all(|car| car.price <= top.price));
    }

    #[test]
    fn downsample_preserves_membership() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = CarsCatalog::paper_default(&mut rng);
        let s = c.downsample(50, &mut rng);
        assert_eq!(s.len(), 50);
        for car in s.cars() {
            assert!(c.cars().contains(car));
        }
    }

    #[test]
    fn far_pairs_converge_with_votes() {
        // 30_000 vs 100_000: r ≈ 0.7, deep in the convergent regime.
        let inst = Instance::new(vec![30_000.0, 100_000.0]);
        let mut o = ModelOracle::new(
            inst,
            CarsWorkerModel::calibrated(),
            ProbabilisticModel::perfect(),
            StdRng::seed_from_u64(4),
        );
        let trials = 300;
        let ok = (0..trials)
            .filter(|_| {
                majority_compare(&mut o, WorkerClass::Naive, ElementId(0), ElementId(1), 21)
                    == ElementId(1)
            })
            .count();
        assert!(ok as f64 / trials as f64 > 0.95);
    }

    #[test]
    fn close_pairs_plateau_despite_votes() {
        // $100K vs $114K: r ≈ 0.12, below the 20% threshold. Accuracy over
        // many *independent crowds* plateaus near prior_accuracy, not 1.
        let trials = 400;
        let mut ok = 0;
        for seed in 0..trials {
            let inst = Instance::new(vec![100_000.0, 114_000.0]);
            // A fresh model per trial = a fresh crowd prior.
            let mut o = ModelOracle::new(
                inst,
                CarsWorkerModel::calibrated(),
                ProbabilisticModel::perfect(),
                StdRng::seed_from_u64(1000 + seed),
            );
            if majority_compare(&mut o, WorkerClass::Naive, ElementId(0), ElementId(1), 21)
                == ElementId(1)
            {
                ok += 1;
            }
        }
        let acc = ok as f64 / trials as f64;
        assert!(
            (0.5..0.8).contains(&acc),
            "plateau accuracy {acc} should sit in the paper's 0.6-0.7 band"
        );
    }

    #[test]
    fn more_votes_do_not_break_the_plateau() {
        // The defining CARS property: 21 votes are no better than 7 beyond
        // noise, because the crowd shares the prior.
        let acc_with = |votes: u32| {
            let trials = 300;
            let mut ok = 0;
            for seed in 0..trials {
                let inst = Instance::new(vec![100_000.0, 110_000.0]);
                let mut o = ModelOracle::new(
                    inst,
                    CarsWorkerModel::calibrated(),
                    ProbabilisticModel::perfect(),
                    StdRng::seed_from_u64(5000 + seed),
                );
                if majority_compare(
                    &mut o,
                    WorkerClass::Naive,
                    ElementId(0),
                    ElementId(1),
                    votes,
                ) == ElementId(1)
                {
                    ok += 1;
                }
            }
            ok as f64 / trials as f64
        };
        let a7 = acc_with(7);
        let a21 = acc_with(21);
        assert!(
            (a21 - a7).abs() < 0.12,
            "plateau should be flat: acc(7) = {a7}, acc(21) = {a21}"
        );
        assert!(a21 < 0.85, "no convergence to 1 below the threshold: {a21}");
    }

    #[test]
    fn price_ladder_is_right_skewed_and_respects_the_gap() {
        let ladder = super::price_ladder(110, 14_000.0, 127_000.0, 500.0);
        assert_eq!(ladder.len(), 110);
        for w in ladder.windows(2) {
            assert!(
                w[1] - w[0] >= 500.0 - 1e-6,
                "gap violated: {} -> {}",
                w[0],
                w[1]
            );
        }
        assert!(*ladder.last().unwrap() <= 127_000.0 + 1.0);
        // Right-skew: within 20% of the top there are far fewer rungs than
        // a uniform spread would put there (uniform would give ~22).
        let top = *ladder.last().unwrap();
        let near_top = ladder.iter().filter(|&&p| p >= 0.8 * top).count();
        assert!((3..=16).contains(&near_top), "near-top rungs: {near_top}");
    }

    #[test]
    fn catalog_has_paperlike_un_at_twenty_percent() {
        let mut rng = StdRng::seed_from_u64(77);
        let c = CarsCatalog::paper_default(&mut rng);
        let inst = c.to_instance();
        let max = inst.max_value();
        let un = inst
            .values()
            .iter()
            .filter(|&&p| (max - p) / max <= 0.2)
            .count();
        // The paper's Table 2 shows ~5-6 cars within 20% of the top price.
        assert!((3..=16).contains(&un), "un at 20% = {un}");
    }

    #[test]
    fn perceived_bias_is_persistent_per_car() {
        // The crowd's belief about a car does not change between questions:
        // a conforming crowd answers the same hard pair the same way.
        let mut m = CarsWorkerModel::calibrated();
        // Force full conformity so the perceived order fully decides.
        m_set_conformity(&mut m);
        let mut rng = StdRng::seed_from_u64(9);
        let first = m.compare(ElementId(0), 100_000.0, ElementId(1), 104_000.0, &mut rng);
        for _ in 0..50 {
            assert_eq!(
                m.compare(ElementId(0), 100_000.0, ElementId(1), 104_000.0, &mut rng),
                first
            );
        }
        assert_eq!(m.threshold(), 0.2);
    }

    fn m_set_conformity(m: &mut CarsWorkerModel) {
        // Test-only knob: rebuild with conformity ~ 1 via the public parts.
        *m = CarsWorkerModel {
            conformity: 0.999_999,
            ..m.clone()
        };
    }

    #[test]
    fn crowd_can_be_systematically_wrong_on_the_top_cluster() {
        // Across many independent crowds, the perceived maximum of a tight
        // top cluster frequently is not the true maximum — the Table 2
        // phenomenon. (With 5 cars a few percent apart and ±30% bias, the
        // true top is perceived on top only ~1/5 of the time.)
        let mut wrong_crowds = 0;
        let trials = 100;
        for seed in 0..trials {
            let mut m = CarsWorkerModel::calibrated();
            m_set_conformity(&mut m);
            let mut rng = StdRng::seed_from_u64(40_000 + seed);
            // Top cluster: 5 cars within 8% of each other.
            let prices = [120_000.0, 118_000.0, 116_000.0, 114_000.0, 112_000.0];
            // The true max is element 0; it is "perceived on top" iff it
            // beats every rival in the crowd's eyes.
            let beats_all = (1..5).all(|i| {
                m.compare(
                    ElementId(0),
                    prices[0],
                    ElementId(i as u32),
                    prices[i],
                    &mut rng,
                ) == ElementId(0)
            });
            if !beats_all {
                wrong_crowds += 1;
            }
        }
        assert!(
            wrong_crowds > trials / 2,
            "the crowd should usually misrank a tight cluster: {wrong_crowds}/{trials}"
        );
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn impossible_gap_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        CarsCatalog::generate(1000, 500.0, &mut rng);
    }
}
