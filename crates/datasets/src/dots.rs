//! The DOTS dataset (paper Section 3.1).
//!
//! "A collection of images containing randomly placed dots. The number of
//! dots in each picture ranges from 100 to 1500, with steps of 20." The
//! golden set used for gold comparisons has 200 to 800 dots with step 20.
//! The task is to select the image with *fewer* dots, so in the max-finding
//! framing an image's value is the *negated* dot count.
//!
//! Counting dots is a wisdom-of-crowds task: the paper's Figure 2(a) shows
//! single-worker accuracy rising with the relative count difference and
//! majority accuracy approaching 1 as more workers vote, for every
//! difference bucket. [`DotsWorkerModel`] reproduces that behaviour: a
//! probabilistic error whose rate decays exponentially with the relative
//! difference (a Weber–Fechner-style psychometric curve), always strictly
//! below 1/2 for distinct counts so that voting always converges.

use crowd_core::element::{ElementId, Instance, Value};
use crowd_core::model::ErrorModel;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// One dot image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DotsImage {
    /// Number of dots in the image.
    pub dots: u32,
}

/// The DOTS dataset: a list of dot images.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DotsDataset {
    images: Vec<DotsImage>,
}

impl DotsDataset {
    /// The paper's main grid: 100 to 1500 dots in steps of 20 (71 images).
    pub fn paper_grid() -> Self {
        DotsDataset {
            images: (100..=1500)
                .step_by(20)
                .map(|dots| DotsImage { dots })
                .collect(),
        }
    }

    /// The paper's golden set: 200 to 800 dots in steps of 20 (31 images).
    pub fn golden_grid() -> Self {
        DotsDataset {
            images: (200..=800)
                .step_by(20)
                .map(|dots| DotsImage { dots })
                .collect(),
        }
    }

    /// A custom grid.
    ///
    /// # Panics
    ///
    /// Panics on an empty grid or a zero step.
    pub fn grid(from: u32, to: u32, step: u32) -> Self {
        assert!(step > 0, "step must be positive");
        assert!(from <= to, "empty grid");
        DotsDataset {
            images: (from..=to)
                .step_by(step as usize)
                .map(|dots| DotsImage { dots })
                .collect(),
        }
    }

    /// The images.
    pub fn images(&self) -> &[DotsImage] {
        &self.images
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// True if the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Downsamples `count` images uniformly at random (the paper uses
    /// n = 50 for the CrowdFlower experiments).
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the dataset size.
    pub fn downsample<R: RngCore>(&self, count: usize, rng: &mut R) -> Self {
        use rand::seq::SliceRandom;
        assert!(
            count <= self.images.len(),
            "cannot downsample beyond the dataset"
        );
        let mut images = self.images.clone();
        images.shuffle(rng);
        images.truncate(count);
        DotsDataset { images }
    }

    /// The max-finding instance: the task is "select the image with the
    /// minimum number of dots", so value = −dots and the maximum element is
    /// the sparsest image.
    pub fn to_instance(&self) -> Instance {
        Instance::new(self.images.iter().map(|im| -(im.dots as f64)).collect())
    }

    /// Dot count of the image behind an element id of
    /// [`to_instance`](Self::to_instance).
    pub fn dots_of(&self, e: ElementId) -> u32 {
        self.images[e.index()].dots
    }
}

/// Relative difference between two dot counts (or any two magnitudes):
/// `|a − b| / max(a, b)` — the bucketing quantity of Figure 2.
pub fn relative_difference(a: f64, b: f64) -> f64 {
    let (a, b) = (a.abs(), b.abs());
    let m = a.max(b);
    if m == 0.0 {
        0.0
    } else {
        (a - b).abs() / m
    }
}

/// A worker model calibrated to the paper's Figure 2(a).
///
/// The error probability for a pair at relative difference `r` is
/// `p(r) = p0 · exp(−decay · r)`: roughly 0.4 for near-identical counts
/// (the red `[0, 0.1]` curve starts near 0.55–0.6 accuracy), dropping
/// below 0.1 for differences above 30%. Because `p(r) < 1/2` whenever the
/// counts differ, majority voting converges to perfect accuracy — the
/// defining property of the wisdom-of-crowds regime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DotsWorkerModel {
    /// Error probability at zero relative difference (must be `< 1/2` for
    /// distinct counts to remain learnable... the default keeps it at 0.45).
    pub p0: f64,
    /// Exponential decay rate of the error in the relative difference.
    pub decay: f64,
}

impl DotsWorkerModel {
    /// The calibration used in our Figure 2(a) reproduction.
    pub fn calibrated() -> Self {
        DotsWorkerModel {
            p0: 0.45,
            decay: 8.0,
        }
    }

    /// Error probability at relative difference `r`.
    pub fn error_probability(&self, r: f64) -> f64 {
        (self.p0 * (-self.decay * r).exp()).min(0.499)
    }
}

impl Default for DotsWorkerModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

impl ErrorModel for DotsWorkerModel {
    fn compare(
        &mut self,
        k: ElementId,
        vk: Value,
        j: ElementId,
        vj: Value,
        rng: &mut dyn RngCore,
    ) -> ElementId {
        let r = relative_difference(vk, vj);
        let p = if vk == vj {
            0.5
        } else {
            self.error_probability(r)
        };
        let correct = crowd_core::model::true_winner(k, vk, j, vj);
        let wrong = if correct == k { j } else { k };
        if rng.gen_bool(p) {
            wrong
        } else {
            correct
        }
    }

    fn delta(&self) -> f64 {
        0.0 // probabilistic regime: no hard threshold
    }

    fn epsilon(&self) -> f64 {
        self.p0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_grids_have_the_right_shape() {
        let main = DotsDataset::paper_grid();
        assert_eq!(main.len(), 71);
        assert_eq!(main.images()[0].dots, 100);
        assert_eq!(main.images()[70].dots, 1500);
        let gold = DotsDataset::golden_grid();
        assert_eq!(gold.len(), 31);
        assert_eq!(gold.images()[0].dots, 200);
        assert_eq!(gold.images()[30].dots, 800);
    }

    #[test]
    fn instance_maximum_is_the_sparsest_image() {
        let d = DotsDataset::paper_grid();
        let inst = d.to_instance();
        let m = inst.max_element();
        assert_eq!(d.dots_of(m), 100);
        assert_eq!(inst.max_value(), -100.0);
    }

    #[test]
    fn downsample_keeps_count_and_membership() {
        let d = DotsDataset::paper_grid();
        let mut rng = StdRng::seed_from_u64(1);
        let s = d.downsample(50, &mut rng);
        assert_eq!(s.len(), 50);
        for im in s.images() {
            assert!(d.images().contains(im));
        }
    }

    #[test]
    fn relative_difference_examples() {
        assert_eq!(relative_difference(180.0, 200.0), 0.1);
        assert_eq!(relative_difference(200.0, 180.0), 0.1);
        assert_eq!(relative_difference(0.0, 0.0), 0.0);
        assert!((relative_difference(-100.0, -150.0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn error_probability_decays_and_stays_below_half() {
        let m = DotsWorkerModel::calibrated();
        assert!(m.error_probability(0.0) < 0.5);
        assert!(m.error_probability(0.05) > m.error_probability(0.2));
        assert!(m.error_probability(0.2) > m.error_probability(0.5));
        assert!(m.error_probability(1.0) < 0.01);
    }

    #[test]
    fn majority_voting_converges_on_dots() {
        // The wisdom-of-crowds property: 21 votes beat 1 vote on the
        // hardest bucket.
        use crowd_core::algorithms::majority_compare;
        use crowd_core::model::{ProbabilisticModel, WorkerClass};
        use crowd_core::oracle::{ComparisonOracle, ModelOracle};

        // 180 vs 200 dots → values −180, −200; rel diff 0.1.
        let inst = Instance::new(vec![-180.0, -200.0]);
        let mut o = ModelOracle::new(
            inst,
            DotsWorkerModel::calibrated(),
            ProbabilisticModel::perfect(),
            StdRng::seed_from_u64(2),
        );
        let trials = 300;
        let single = (0..trials)
            .filter(|_| o.compare(WorkerClass::Naive, ElementId(0), ElementId(1)) == ElementId(0))
            .count();
        let majority = (0..trials)
            .filter(|_| {
                majority_compare(&mut o, WorkerClass::Naive, ElementId(0), ElementId(1), 21)
                    == ElementId(0)
            })
            .count();
        assert!(majority > single, "majority {majority} <= single {single}");
        assert!(majority as f64 / trials as f64 > 0.9);
    }

    #[test]
    #[should_panic(expected = "beyond the dataset")]
    fn oversized_downsample_panics() {
        let d = DotsDataset::golden_grid();
        let mut rng = StdRng::seed_from_u64(3);
        d.downsample(1000, &mut rng);
    }
}
