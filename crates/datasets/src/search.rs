//! The search-result evaluation scenario (paper Section 5.3).
//!
//! The paper's most realistic application: for the queries *"asymmetric tsp
//! best approximation"* and *"steiner tree best approximation"*, 50 Google
//! results were sampled uniformly from the top-100 positions. Each query
//! has a clear best result (the paper/link with the recently published best
//! approximation bound) that only domain experts (algorithms researchers)
//! reliably recognize; crowd workers can weed out obviously irrelevant
//! pages but cannot separate the several plausible-looking survey pages,
//! lecture notes and older papers near the top.
//!
//! [`SearchResultSet`] synthesizes result lists with exactly that
//! structure: a planted best result, a cluster of near-misses whose
//! relevance differences fall below the naïve threshold, and a long tail of
//! decreasingly relevant pages.

use crowd_core::element::{ElementId, Instance};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// One search result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    /// Rank position in the engine's top-100 (1-based).
    pub position: u32,
    /// Display title.
    pub title: String,
    /// Hidden ground-truth relevance in `[0, 100]` (the value function:
    /// expert judges would converge on this).
    pub relevance: f64,
}

/// A synthesized result list for one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchResultSet {
    query: String,
    results: Vec<SearchResult>,
    /// Relevance separation below which crowd workers cannot rank two
    /// results (the naïve threshold in relevance units).
    naive_delta: f64,
    /// Separation below which even experts disagree (judge
    /// inter-agreement "is not perfect").
    expert_delta: f64,
}

impl SearchResultSet {
    /// Synthesizes a result set following the paper's protocol: `count`
    /// results at positions sampled uniformly from the top-100, one planted
    /// clear best (relevance 100), a near cluster of `near_misses` results
    /// within the naïve threshold of each other (old papers, surveys,
    /// lecture notes), and a tail whose relevance decays with position.
    ///
    /// # Panics
    ///
    /// Panics unless `count >= near_misses + 1` and `count <= 100`.
    pub fn synthesize<R: RngCore>(
        query: &str,
        count: usize,
        near_misses: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            count > near_misses,
            "need room for the best result and its rivals"
        );
        assert!(count <= 100, "results are sampled from the top-100");
        let naive_delta = 12.0;
        let expert_delta = 1.0;

        // Sample distinct positions from 1..=100.
        let mut positions: Vec<u32> = (1..=100).collect();
        use rand::seq::SliceRandom;
        positions.shuffle(rng);
        positions.truncate(count);
        positions.sort_unstable();

        let mut results = Vec::with_capacity(count);
        // The planted best: the recent paper with the current best bound.
        results.push(SearchResult {
            position: positions[0],
            title: format!("[PDF] An improved approximation for {query} (new)"),
            relevance: 100.0,
        });
        // Near misses: within the naïve threshold of the best, but more
        // than the expert threshold below it.
        for (i, &pos) in positions[1..=near_misses].iter().enumerate() {
            let gap = rng.gen_range(2.0 * expert_delta..naive_delta * 0.9);
            results.push(SearchResult {
                position: pos,
                title: format!("Survey of {query} techniques, part {}", i + 1),
                relevance: 100.0 - gap,
            });
        }
        // The tail: relevance decays with position, well below the cluster.
        for &pos in &positions[near_misses + 1..] {
            let base = 70.0 - 0.55 * pos as f64;
            let relevance = (base + rng.gen_range(-5.0..5.0)).clamp(0.0, 75.0);
            results.push(SearchResult {
                position: pos,
                title: format!("Blog post about {query} at rank {pos}"),
                relevance,
            });
        }

        results.shuffle(rng);
        SearchResultSet {
            query: query.to_string(),
            results,
            naive_delta,
            expert_delta,
        }
    }

    /// The paper's two queries, at its parameters (50 results each).
    pub fn paper_queries<R: RngCore>(rng: &mut R) -> [SearchResultSet; 2] {
        [
            Self::synthesize("asymmetric tsp best approximation", 50, 8, rng),
            Self::synthesize("steiner tree best approximation", 50, 8, rng),
        ]
    }

    /// The query string.
    pub fn query(&self) -> &str {
        &self.query
    }

    /// The results, in presentation order.
    pub fn results(&self) -> &[SearchResult] {
        &self.results
    }

    /// Number of results.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// The naïve threshold `δn` in relevance units.
    pub fn naive_delta(&self) -> f64 {
        self.naive_delta
    }

    /// The expert threshold `δe` in relevance units.
    pub fn expert_delta(&self) -> f64 {
        self.expert_delta
    }

    /// The max-finding instance (value = hidden relevance).
    pub fn to_instance(&self) -> Instance {
        Instance::new(self.results.iter().map(|r| r.relevance).collect())
    }

    /// The result behind an element id of [`to_instance`](Self::to_instance).
    pub fn result_of(&self, e: ElementId) -> &SearchResult {
        &self.results[e.index()]
    }

    /// The true `un(n)` of this result set at its naïve threshold.
    pub fn true_un(&self) -> usize {
        self.to_instance()
            .indistinguishable_from_max(self.naive_delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn synthesis_matches_paper_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = SearchResultSet::synthesize("steiner tree best approximation", 50, 8, &mut rng);
        assert_eq!(s.len(), 50);
        let inst = s.to_instance();
        // One clear best at relevance 100.
        assert_eq!(inst.max_value(), 100.0);
        // The near cluster keeps un(n) in the paper's experimented range.
        let un = s.true_un();
        assert!((2..=12).contains(&un), "un = {un}");
        // Experts can single out the best: ue = 1.
        assert_eq!(inst.indistinguishable_from_max(s.expert_delta()), 1);
    }

    #[test]
    fn positions_are_distinct_and_top_100() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = SearchResultSet::synthesize("asymmetric tsp", 50, 5, &mut rng);
        let mut positions: Vec<u32> = s.results().iter().map(|r| r.position).collect();
        positions.sort_unstable();
        positions.dedup();
        assert_eq!(positions.len(), 50);
        assert!(positions.iter().all(|&p| (1..=100).contains(&p)));
    }

    #[test]
    fn paper_queries_build_both_sets() {
        let mut rng = StdRng::seed_from_u64(3);
        let [a, b] = SearchResultSet::paper_queries(&mut rng);
        assert!(a.query().contains("asymmetric tsp"));
        assert!(b.query().contains("steiner tree"));
        assert_eq!(a.len(), 50);
        assert_eq!(b.len(), 50);
    }

    #[test]
    fn best_result_is_findable_through_instance() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = SearchResultSet::synthesize("q", 30, 4, &mut rng);
        let inst = s.to_instance();
        let best = s.result_of(inst.max_element());
        assert!(best.title.contains("improved approximation"));
    }

    #[test]
    fn tail_is_well_separated_from_cluster() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = SearchResultSet::synthesize("q", 50, 8, &mut rng);
        let mut rel: Vec<f64> = s.results().iter().map(|r| r.relevance).collect();
        rel.sort_by(|a, b| b.partial_cmp(a).unwrap());
        // Cluster occupies the top 9 (best + 8 near misses); the tail sits
        // at least one naive threshold below the best.
        assert!(rel[9] < 100.0 - s.naive_delta());
    }

    #[test]
    #[should_panic(expected = "room for the best result")]
    fn too_many_near_misses_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        SearchResultSet::synthesize("q", 5, 5, &mut rng);
    }
}
